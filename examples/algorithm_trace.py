"""Trace the cost-distance algorithm iteration by iteration (paper Figure 3).

Shows, for a small 5-sink net, which components merge in each iteration of
Algorithm 1, where the new Steiner vertex is placed, and when the root
connection happens.

Run with::

    python examples/algorithm_trace.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.figures import figure2_split_tradeoff, figure3_algorithm_trace


def main() -> None:
    trace = figure3_algorithm_trace(num_sinks=5, seed=3)
    print("Course of the cost-distance algorithm (Figure 3 analogue)")
    print(trace.ascii_art)
    print()
    print(f"sink-sink merges: {trace.num_sink_merges}, root merges: {trace.num_root_merges}")
    print()

    split = figure2_split_tradeoff(weight_heavy=2.0, weight_light=0.5)
    print("Bifurcation penalty split trade-off (Figure 2 analogue)")
    print(f"dbif = {split.dbif:.3f} ps")
    for lam, value in split.split_samples:
        print(f"  lambda_heavy = {lam:.2f} -> weighted penalty {value:.3f}")
    print(f"optimal lambda_heavy = {split.optimal_lambda_heavy:.2f} "
          f"(penalty {split.optimal_penalty:.3f} vs even split {split.even_split_penalty:.3f})")


if __name__ == "__main__":
    main()
