"""Compare all four Steiner tree methods on identical instances.

This reproduces the apples-to-apples experiment behind paper Tables I/II on a
small set of generated cost-distance instances: every method is evaluated
with the same objective and compared against the best of the four.

Run with::

    python examples/single_net_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import build_grid_graph, generate_steiner_instances
from repro.analysis.experiments import run_instance_comparison
from repro.analysis.tables import format_instance_comparison
from repro.timing.delay import LinearDelayModel


def main() -> None:
    graph = build_grid_graph(14, 14, num_layers=6)
    dbif = LinearDelayModel(graph.stack).bifurcation_penalty()

    for label, penalty in (("dbif = 0", 0.0), (f"dbif = {dbif:.2f} ps", dbif)):
        instances = generate_steiner_instances(
            graph, num_instances=16, dbif=penalty, seed=7
        )
        rows = run_instance_comparison(instances)
        print(format_instance_comparison(
            rows, title=f"Average cost increase vs best of four ({label})"
        ))
        print()


if __name__ == "__main__":
    main()
