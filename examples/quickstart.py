"""Quickstart: build a routing graph, solve one cost-distance Steiner tree.

Run with::

    python examples/quickstart.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    BifurcationModel,
    CostDistanceSolver,
    SteinerInstance,
    build_grid_graph,
    evaluate_tree,
)


def main() -> None:
    # A 16x16 global routing grid with 8 metal layers (5nm-class RC scaling).
    graph = build_grid_graph(16, 16, num_layers=8)
    print(f"routing graph: {graph}")

    # One net: a root (driver) and four sinks with delay weights.  Weights
    # come from the timing criticality of each sink (Lagrangean multipliers
    # in the full router); here sink 0 is the critical one.
    root = graph.node_index(2, 2, 0)
    sinks = [
        graph.node_index(13, 3, 0),
        graph.node_index(5, 12, 0),
        graph.node_index(11, 11, 0),
        graph.node_index(3, 7, 0),
    ]
    weights = [2.0, 0.2, 0.4, 0.1]

    # The bifurcation penalty dbif is derived from the repeater-chain model.
    dbif = graph.delay_model.bifurcation_penalty()
    instance = SteinerInstance(
        graph,
        root,
        sinks,
        weights,
        cost=graph.base_cost_array(),
        delay=graph.delay_array(),
        bifurcation=BifurcationModel(dbif=dbif, eta=0.25),
        name="quickstart-net",
    )

    solver = CostDistanceSolver()
    tree = solver.build(instance, random.Random(0))
    tree.validate()

    result = evaluate_tree(instance, tree)
    print(f"objective          : {result.total:.2f}")
    print(f"  connection cost  : {result.connection_cost:.2f}")
    print(f"  weighted delay   : {result.weighted_delay_cost:.2f}")
    print(f"wire length        : {result.wire_length:.1f} tiles")
    print(f"vias               : {result.via_count}")
    print(f"bifurcations       : {result.num_bifurcations}")
    for i, delay in enumerate(result.sink_delays):
        print(f"  sink {i}: delay {delay:.2f} ps (weight {weights[i]})")


if __name__ == "__main__":
    main()
