"""Timing-constrained global routing of a synthetic chip.

Routes one chip of the suite with two different Steiner oracles (the L1
baseline and the cost-distance algorithm) and prints the Table IV style
metrics: worst slack, total negative slack, ACE4 congestion, wire length,
via count and walltime.

Run with::

    python examples/global_routing_flow.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import CostDistanceSolver, GlobalRouter, GlobalRouterConfig, RectilinearSteinerOracle
from repro.analysis.tables import format_routing_results
from repro.instances.chips import CHIP_SUITE, build_chip


def main() -> None:
    spec = CHIP_SUITE[0].scaled(0.6)
    graph, netlist = build_chip(spec)
    print(f"chip {spec.name}: {netlist.num_nets} nets on {graph}")
    print(f"net sizes: {netlist.net_size_histogram()}")
    print(f"clock period: {netlist.clock_period:.1f} ps")
    print()

    results = []
    for oracle in (RectilinearSteinerOracle(), CostDistanceSolver()):
        config = GlobalRouterConfig(num_rounds=2, dbif=None)  # dbif from repeater model
        router = GlobalRouter(graph, netlist, oracle, config)
        results.append(router.run())

    print(format_routing_results(results, title=f"Global routing of {spec.name}"))


if __name__ == "__main__":
    main()
