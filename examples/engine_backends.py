"""Batch-routing engine backends: serial vs. process vs. cached.

Routes one chip of the synthetic suite three times through the engine --
with the in-process serial backend, with the multiprocessing backend, and
with the incremental re-route cache -- and shows that all three reproduce
identical metrics while their walltimes differ.

Run with::

    python examples/engine_backends.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    CostDistanceSolver,
    EngineConfig,
    GlobalRouter,
    GlobalRouterConfig,
)
from repro.instances.chips import CHIP_SUITE, build_chip
from repro.router.metrics import format_result_row


def main() -> None:
    spec = CHIP_SUITE[0].scaled(0.6)
    modes = (
        ("serial", EngineConfig(backend="serial")),
        ("process", EngineConfig(backend="process")),
        # Default "bbox" cache scope: signatures digest costs over each
        # net's bounding region, so nets far from any price change still
        # hit.  (cache_scope="global" instead *guarantees* serial parity,
        # at the price of invalidating every net on any cost change.)
        ("cached", EngineConfig(backend="serial", reroute_cache=True)),
    )

    print(f"chip {spec.name} ({spec.num_nets} nets), 3 resource-sharing rounds\n")
    for mode, engine in modes:
        graph, netlist = build_chip(spec)
        router = GlobalRouter(
            graph,
            netlist,
            CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=3, engine=engine),
        )
        result = router.run()
        print(f"{mode:>8}: {format_result_row(result)}")
        if router.engine.cache is not None:
            stats = router.engine.cache.stats
            print(f"{'':>8}  cache hits {stats.hits}/{stats.lookups} "
                  f"({100.0 * stats.hit_rate:.1f}%)")
        batches = router.engine.round_reports[0].num_batches
        print(f"{'':>8}  {batches} batches/round via "
              f"{router.engine.config.scheduling!r} scheduling")
    print("\nSerial and process backends are bit-identical by construction:")
    print("a net's tree depends only on its instance and its private RNG stream.")
    print("The bbox-scope cache is a heuristic that matches them in practice;")
    print("cache_scope='global' (see benchmarks/test_engine_scaling.py) makes")
    print("the match a guarantee.")


if __name__ == "__main__":
    main()
