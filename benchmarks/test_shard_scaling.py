"""Shard scaling: multi-region divide-and-conquer vs the single-region flow.

Routes the large synthetic chip (48x48 tiles, 15 layers, mostly-small
clustered nets -- see :func:`repro.instances.chips.large_chip`) through the
classic single-region flow, through the shard coordinator at K=4, and
through the region-parallel shard backend (K=4 on a 2-worker process pool),
and records

* the wall-clock ratio of the sharded flow (best of three runs per mode,
  so a noisy neighbour cannot manufacture or hide a regression),
* the *stacked* speedup of the region pool over the serial shard loop --
  the regions of one round are independent, so on a multi-core machine the
  pool overlaps them,
* the quality deltas the decomposition costs: wire length, overflow and
  ACE4 against the 1-shard baseline (the seam stitching keeps these small),
* the interior/seam split of the partition.

Sharding is a *large-design* feature: the per-region subgraphs amortise the
per-net full-graph costs, which only dominates past a minimum design size.
The net-count scale therefore floors ``REPRO_BENCH_SCALE`` at 0.8 -- scaling
the large chip down to smoke size would benchmark the wrong workload class.
Historically the serial shard loop beat the single-region flow ~1.6x on
wall clock, because every net paid O(full-graph-edges) conversions that the
subgraphs shrank; the vectorized routing-state kernel now amortises those
costs at batch level for *every* flow, so serial shards run at parity with
the base flow and the region pool is the remaining wall-clock lever.

Two parity checks assert the shard machinery itself is lossless: the
region-parallel run must equal the serial shard run bit for bit on every
metric (always -- that is the backend contract), and at K=4 in parity mode
the sharded flow must reproduce the unsharded metrics bit for bit.  The
pool *speedup* is only asserted on multi-core hosts with a live pool; on a
single core the pool can only add overhead, and in sandboxes without
process pools the backend degrades to the serial loop by design.
"""

import os
import time

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.instances.chips import large_chip
from repro.router.metrics import PARITY_FIELDS, format_result_row
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.shard.executor import ProcessRegionExecutor

from benchmarks.conftest import bench_scale, write_result

#: Regions of the sharded mode under test (the acceptance configuration).
NUM_SHARDS = 4
#: Region-pool workers of the parallel mode under test.
NUM_WORKERS = 2
#: Resource-sharing rounds per flow.
NUM_ROUNDS = 3
#: Minimum net-count scale (see module docstring).
MIN_SCALE = 0.8
#: Timed runs per mode; the best wall time of each mode is recorded (the
#: minimum is the standard noise-robust estimator for CPU-bound code).
REPEATS = 3
#: Regression floor of the stacked region-pool speedup on multi-core hosts.
#: The issue-level target is 1.3x at 4 regions / 2 workers; 1.2 is the
#: regression floor that still fails if the pool path stops overlapping.
POOL_SPEEDUP_FLOOR = 1.2


def shard_scale() -> float:
    return max(MIN_SCALE, bench_scale())


def route_large_chip(graph, netlist, **config):
    started = time.perf_counter()
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(),
        GlobalRouterConfig(num_rounds=NUM_ROUNDS, **config),
    )
    result = router.run()
    return router, result, time.perf_counter() - started


@pytest.mark.benchmark(group="shard_scaling")
def test_shard_scaling_and_seam_quality(benchmark):
    graph, netlist = large_chip(shard_scale())

    def run_all():
        best = {}
        # Modes interleave across repeats so machine noise hits all evenly.
        for _ in range(REPEATS):
            for mode, config in (
                ("1-shard", {}),
                (f"{NUM_SHARDS}-shard", {"shards": NUM_SHARDS}),
                (
                    f"{NUM_SHARDS}-shard-{NUM_WORKERS}w",
                    {"shards": NUM_SHARDS, "shard_workers": NUM_WORKERS},
                ),
            ):
                router, result, walltime = route_large_chip(graph, netlist, **config)
                if mode not in best or walltime < best[mode][2]:
                    best[mode] = (router, result, walltime)
        return best

    best = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base_router, base, base_time = best["1-shard"]
    shard_router, sharded, shard_time = best[f"{NUM_SHARDS}-shard"]
    pool_router, pooled, pool_time = best[f"{NUM_SHARDS}-shard-{NUM_WORKERS}w"]
    speedup = base_time / shard_time
    pool_speedup = shard_time / pool_time
    stacked_speedup = base_time / pool_time
    stats = shard_router.engine.stats
    pool_executor = pool_router.engine.region_executor
    pool_live = (
        isinstance(pool_executor, ProcessRegionExecutor) and pool_executor.pool_used
    )
    cores = os.cpu_count() or 1

    lines = [
        f"Shard scaling on the large synthetic chip "
        f"({graph.nx}x{graph.ny}x{graph.num_layers}, {netlist.num_nets} nets, "
        f"net scale {shard_scale()}, {NUM_ROUNDS} rounds, best of {REPEATS})",
        "",
        f"  1-shard:    {format_result_row(base)}  wall={base_time:6.2f}s",
        f"  {NUM_SHARDS}-shard:    {format_result_row(sharded)}  wall={shard_time:6.2f}s",
        f"  {NUM_SHARDS}-shard-{NUM_WORKERS}w: {format_result_row(pooled)}  wall={pool_time:6.2f}s",
        "",
        f"  speedup:        {speedup:.2f}x wall-clock at {NUM_SHARDS} shards (serial regions)",
        f"  region pool:    {pool_speedup:.2f}x over serial shards, "
        f"{stacked_speedup:.2f}x stacked over 1-shard "
        f"({NUM_WORKERS} workers, {cores} cores, "
        f"{'process pool' if pool_live else 'degraded to serial loop'})",
        f"  partition:      interior {list(stats.interior_nets)}, "
        f"seam {stats.seam_nets} ({stats.scoped_seam_nets} scoped to "
        f"super-regions, {stats.global_seam_nets} global)",
        f"  seam deltas:    WL {sharded.wire_length - base.wire_length:+.1f} "
        f"({100.0 * (sharded.wire_length - base.wire_length) / base.wire_length:+.2f}%), "
        f"overflow {sharded.overflow - base.overflow:+.2f}, "
        f"ACE4 {sharded.ace4 - base.ace4:+.2f}",
    ]
    if cores < 2:
        lines.append(
            "  note:           single-core host; the region pool cannot "
            "overlap work here (the >=1.3x target applies at 2+ cores)"
        )
    write_result("shard_scaling", "\n".join(lines))
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["pool_speedup"] = round(pool_speedup, 3)
    benchmark.extra_info["stacked_speedup"] = round(stacked_speedup, 3)
    benchmark.extra_info["base_walltime"] = round(base_time, 3)
    benchmark.extra_info["shard_walltime"] = round(shard_time, 3)
    benchmark.extra_info["pool_walltime"] = round(pool_time, 3)
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["pool_live"] = pool_live
    benchmark.extra_info["seam_wl_delta"] = sharded.wire_length - base.wire_length
    benchmark.extra_info["seam_overflow_delta"] = sharded.overflow - base.overflow

    # Every net is routed and the decomposition covers the netlist.
    assert all(tree is not None for tree in shard_router.trees)
    assert stats.total_interior + stats.seam_nets == netlist.num_nets
    # The region-parallel backend is bit-identical to the serial shard loop
    # on every metric -- this holds on any host, pool or no pool.
    for field in PARITY_FIELDS:
        assert getattr(pooled, field) == getattr(sharded, field), field
    # The seam stitching keeps the quality close to the unsharded flow.
    assert abs(sharded.wire_length - base.wire_length) <= 0.02 * base.wire_length
    assert sharded.overflow <= base.overflow + 0.05 * max(base.overflow, 1.0)
    # Serial shards must stay at wall-clock parity with the base flow.  The
    # historical ~1.6x serial-shard win came from amortising per-net
    # full-graph conversions that the vectorized routing-state kernel now
    # removes from every flow; the measured best-of-three ratio is ~0.95-1.1x
    # on an idle machine, and 0.85 is the regression floor that still fails
    # if the subgraph path starts actively costing time.
    assert speedup >= 0.85, f"shard walltime regressed vs base: {speedup:.2f}x"
    # The region pool must stack on top of that -- but only where it can:
    # a live pool on a multi-core host.
    if pool_live and cores >= 2:
        assert pool_speedup >= POOL_SPEEDUP_FLOOR, (
            f"region-pool speedup collapsed: {pool_speedup:.2f}x "
            f"({NUM_WORKERS} workers on {cores} cores)"
        )


def test_shard_parity_on_large_chip():
    """K=4 parity mode reproduces the unsharded router bit for bit."""
    graph, netlist = large_chip(0.25)  # parity is scale-independent
    _, base, _ = route_large_chip(graph, netlist, cost_refresh_interval=10**9)
    _, sharded, _ = route_large_chip(
        graph, netlist, cost_refresh_interval=10**9,
        shards=NUM_SHARDS, shard_parity=True,
    )
    for field in PARITY_FIELDS:
        assert getattr(sharded, field) == getattr(base, field), field


def test_region_pool_parity_on_large_chip():
    """The region pool reproduces the serial shard loop bit for bit on the
    large chip -- the per-tree determinism check behind the speedup numbers
    (scale-independent, so it runs small)."""
    graph, netlist = large_chip(0.25)
    serial_router, serial, _ = route_large_chip(graph, netlist, shards=NUM_SHARDS)
    pool_router, pooled, _ = route_large_chip(
        graph, netlist, shards=NUM_SHARDS, shard_workers=NUM_WORKERS
    )
    for field in PARITY_FIELDS:
        assert getattr(pooled, field) == getattr(serial, field), field
    assert [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges))
        for t in pool_router.trees
    ] == [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges))
        for t in serial_router.trees
    ]
