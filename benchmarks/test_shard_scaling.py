"""Shard scaling: multi-region divide-and-conquer vs the single-region flow.

Routes the large synthetic chip (48x48 tiles, 15 layers, mostly-small
clustered nets -- see :func:`repro.instances.chips.large_chip`) through the
classic single-region flow and through the shard coordinator at K=4, and
records

* the wall-clock speedup of the sharded flow (best of two runs per mode, so
  a noisy neighbour cannot manufacture or hide a regression),
* the quality deltas the decomposition costs: wire length, overflow and
  ACE4 against the 1-shard baseline (the seam stitching keeps these small),
* the interior/seam split of the partition.

Sharding is a *large-design* feature: the per-region subgraphs amortise the
per-net full-graph costs, which only dominates past a minimum design size.
The net-count scale therefore floors ``REPRO_BENCH_SCALE`` at 0.8 -- scaling
the large chip down to smoke size would benchmark the wrong workload class.

A parity check asserts the shard machinery itself is lossless: at K=4 in
parity mode the sharded flow must reproduce the unsharded metrics bit for
bit (the engine-level guarantee behind the speedup numbers).
"""

import time

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.instances.chips import large_chip
from repro.router.metrics import format_result_row
from repro.router.router import GlobalRouter, GlobalRouterConfig

from benchmarks.conftest import bench_scale, write_result

#: Regions of the sharded mode under test (the acceptance configuration).
NUM_SHARDS = 4
#: Resource-sharing rounds per flow.
NUM_ROUNDS = 3
#: Minimum net-count scale (see module docstring).
MIN_SCALE = 0.8
#: Timed runs per mode; the best wall time of each mode is recorded (the
#: minimum is the standard noise-robust estimator for CPU-bound code).
REPEATS = 3

PARITY_FIELDS = (
    "worst_slack",
    "total_negative_slack",
    "ace4",
    "wire_length",
    "via_count",
    "overflow",
    "objective",
)


def shard_scale() -> float:
    return max(MIN_SCALE, bench_scale())


def route_large_chip(graph, netlist, **config):
    started = time.perf_counter()
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(),
        GlobalRouterConfig(num_rounds=NUM_ROUNDS, **config),
    )
    result = router.run()
    return router, result, time.perf_counter() - started


@pytest.mark.benchmark(group="shard_scaling")
def test_shard_scaling_and_seam_quality(benchmark):
    graph, netlist = large_chip(shard_scale())

    def run_all():
        best = {}
        # Modes interleave across repeats so machine noise hits both evenly.
        for _ in range(REPEATS):
            for mode, config in (
                ("1-shard", {}),
                (f"{NUM_SHARDS}-shard", {"shards": NUM_SHARDS}),
            ):
                router, result, walltime = route_large_chip(graph, netlist, **config)
                if mode not in best or walltime < best[mode][2]:
                    best[mode] = (router, result, walltime)
        return best

    best = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base_router, base, base_time = best["1-shard"]
    shard_router, sharded, shard_time = best[f"{NUM_SHARDS}-shard"]
    speedup = base_time / shard_time
    stats = shard_router.engine.stats

    lines = [
        f"Shard scaling on the large synthetic chip "
        f"({graph.nx}x{graph.ny}x{graph.num_layers}, {netlist.num_nets} nets, "
        f"net scale {shard_scale()}, {NUM_ROUNDS} rounds, best of {REPEATS})",
        "",
        f"  1-shard: {format_result_row(base)}  wall={base_time:6.2f}s",
        f"  {NUM_SHARDS}-shard: {format_result_row(sharded)}  wall={shard_time:6.2f}s",
        "",
        f"  speedup:        {speedup:.2f}x wall-clock at {NUM_SHARDS} shards",
        f"  partition:      interior {list(stats.interior_nets)}, "
        f"seam {stats.seam_nets} ({stats.scoped_seam_nets} scoped to "
        f"super-regions, {stats.global_seam_nets} global)",
        f"  seam deltas:    WL {sharded.wire_length - base.wire_length:+.1f} "
        f"({100.0 * (sharded.wire_length - base.wire_length) / base.wire_length:+.2f}%), "
        f"overflow {sharded.overflow - base.overflow:+.2f}, "
        f"ACE4 {sharded.ace4 - base.ace4:+.2f}",
    ]
    write_result("shard_scaling", "\n".join(lines))
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["base_walltime"] = round(base_time, 3)
    benchmark.extra_info["shard_walltime"] = round(shard_time, 3)
    benchmark.extra_info["seam_wl_delta"] = sharded.wire_length - base.wire_length
    benchmark.extra_info["seam_overflow_delta"] = sharded.overflow - base.overflow

    # Every net is routed and the decomposition covers the netlist.
    assert all(tree is not None for tree in shard_router.trees)
    assert stats.total_interior + stats.seam_nets == netlist.num_nets
    # The seam stitching keeps the quality close to the unsharded flow.
    assert abs(sharded.wire_length - base.wire_length) <= 0.02 * base.wire_length
    assert sharded.overflow <= base.overflow + 0.05 * max(base.overflow, 1.0)
    # Divide-and-conquer must actually pay on the large-design class.  The
    # measured best-of-two ratio is ~1.55-1.75x on an idle machine; 1.25 is
    # the regression floor that still fails if the subgraph path breaks.
    assert speedup >= 1.25, f"shard speedup collapsed: {speedup:.2f}x"


def test_shard_parity_on_large_chip():
    """K=4 parity mode reproduces the unsharded router bit for bit."""
    graph, netlist = large_chip(0.25)  # parity is scale-independent
    _, base, _ = route_large_chip(graph, netlist, cost_refresh_interval=10**9)
    _, sharded, _ = route_large_chip(
        graph, netlist, cost_refresh_interval=10**9,
        shards=NUM_SHARDS, shard_parity=True,
    )
    for field in PARITY_FIELDS:
        assert getattr(sharded, field) == getattr(base, field), field
