"""Benchmark trajectory: machine-readable metrics for the CI pipeline.

Runs a fixed set of benchmark scenarios and emits one JSON document
(``BENCH_pr.json``) holding, per scenario, two metric groups:

* ``metrics`` -- everything measured, including wall-clock numbers and
  throughput.  Informational: CI machines differ, so time is recorded but
  never gated.
* ``tracked`` -- the deterministic quality metrics the tier-1 suite also
  guards (wire length, overflow, ACE4, via count).  These are pure
  functions of the code, so any drift is a real behaviour change; the CI
  ``bench-trajectory`` job fails when a tracked metric regresses by more
  than 20% against the committed baseline
  (``benchmarks/results/BENCH_baseline.json``).

Usage::

    python benchmarks/trajectory.py --output BENCH_pr.json
    python benchmarks/trajectory.py --output BENCH_pr.json \
        --baseline benchmarks/results/BENCH_baseline.json --check
    python benchmarks/trajectory.py --update-baseline   # refresh the baseline

``REPRO_BENCH_SCALE`` scales the workloads exactly like the pytest
benchmark suite (the committed baseline is recorded at the CI scale 0.3).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.conftest import bench_scale  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_baseline.json"
)
#: Allowed relative regression of a tracked metric before CI fails.
TOLERANCE = 0.20
#: Tracked metrics are lower-is-better; values this close to zero are
#: compared absolutely instead of relatively.
EPSILON = 1e-9


def _result_metrics(result) -> Dict[str, float]:
    return {
        "wire_length": result.wire_length,
        "via_count": float(result.via_count),
        "overflow": result.overflow,
        "ace4": result.ace4,
    }


def scenario_engine_modes() -> List[Dict[str, object]]:
    """Serial vs cached routing of the smoke chip (determinism tripwire)."""
    from repro.core.cost_distance import CostDistanceSolver
    from repro.engine.engine import EngineConfig
    from repro.instances.chips import build_chip, smoke_chip
    from repro.router.router import GlobalRouter, GlobalRouterConfig

    graph, netlist = build_chip(smoke_chip(bench_scale()))
    records = []
    for name, engine in (
        ("engine_serial", EngineConfig()),
        ("engine_cached", EngineConfig(reroute_cache=True, cache_scope="global")),
    ):
        started = time.perf_counter()
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=3, engine=engine),
        )
        result = router.run()
        walltime = time.perf_counter() - started
        metrics: Dict[str, float] = {"walltime_seconds": round(walltime, 4)}
        if router.engine.cache is not None:
            metrics["cache_hit_rate"] = round(router.engine.cache.stats.hit_rate, 4)
        records.append(
            {"name": name, "metrics": metrics, "tracked": _result_metrics(result)}
        )
    return records


def scenario_serve_throughput() -> List[Dict[str, object]]:
    """Jobs/second through an in-process daemon (informational only)."""
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ServeDaemon

    num_jobs = 4
    daemon = ServeDaemon(port=0, job_workers=2)
    host, port = daemon.start()
    try:
        client = ServeClient(host, port)
        client.wait_until_up()
        started = time.perf_counter()
        job_ids = [
            client.submit_route(chip="c1", net_scale=0.2, rounds=1, seed=seed)
            for seed in range(num_jobs)
        ]
        for job_id in job_ids:
            record = client.wait(job_id, timeout=600)
            if record["status"] != "done":
                raise RuntimeError(f"serve job failed: {record}")
        elapsed = time.perf_counter() - started
    finally:
        daemon.shutdown()
    return [
        {
            "name": "serve_throughput",
            "metrics": {
                "jobs": num_jobs,
                "jobs_per_second": round(num_jobs / elapsed, 3),
                "walltime_seconds": round(elapsed, 4),
            },
            "tracked": {},
        }
    ]


def scenario_shard_scaling() -> List[Dict[str, object]]:
    """1-shard vs 4-shard vs region-pooled routing of the large chip.

    The pooled mode (4 regions on a 2-worker process pool) is bit-identical
    to the serial shard loop, so its tracked metrics duplicate the shard
    ones by construction -- recording them keeps that invariant gated.  Its
    wall-clock speedup over serial shards is informational like every other
    time: it depends on the host's core count (>= 1.3x is the target at 2+
    cores; a single-core runner records ~1.0 or below).
    """
    import os

    from repro.core.cost_distance import CostDistanceSolver
    from repro.instances.chips import large_chip
    from repro.router.router import GlobalRouter, GlobalRouterConfig

    # Sharding is a large-design feature; the scale is floored like in
    # benchmarks/test_shard_scaling.py.
    graph, netlist = large_chip(max(0.8, bench_scale()))

    def best_run(**config):
        best = None
        for _ in range(2):
            started = time.perf_counter()
            router = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=3, **config),
            )
            result = router.run()
            walltime = time.perf_counter() - started
            if best is None or walltime < best[1]:
                best = (result, walltime)
        return best

    base, base_time = best_run()
    sharded, shard_time = best_run(shards=4)
    pooled, pool_time = best_run(shards=4, shard_workers=2)
    speedup = base_time / shard_time
    tracked = {f"base_{k}": v for k, v in _result_metrics(base).items()}
    tracked.update({f"shard_{k}": v for k, v in _result_metrics(sharded).items()})
    tracked.update({f"pool_{k}": v for k, v in _result_metrics(pooled).items()})
    return [
        {
            "name": "shard_scaling",
            "metrics": {
                "shards": 4,
                "shard_workers": 2,
                "cores": os.cpu_count() or 1,
                "nets": netlist.num_nets,
                "base_walltime_seconds": round(base_time, 4),
                "shard_walltime_seconds": round(shard_time, 4),
                "pool_walltime_seconds": round(pool_time, 4),
                "shard_speedup": round(speedup, 3),
                "pool_speedup_vs_serial_shards": round(shard_time / pool_time, 3),
                "pool_speedup_stacked": round(base_time / pool_time, 3),
                "seam_wl_delta": sharded.wire_length - base.wire_length,
                "seam_overflow_delta": sharded.overflow - base.overflow,
            },
            "tracked": tracked,
        }
    ]


def scenario_session_eco() -> List[Dict[str, object]]:
    """Sharded-ECO-replay vs cold-sharded re-route on the smoke chip.

    The session replays its memo log through the shard coordinator, so the
    incremental walltime should beat the cold sharded re-route while the
    metrics stay bit-identical (asserted here; the replay's tracked metrics
    are recorded so any drift also trips the CI gate).  Walltimes and the
    speedup are informational -- machines differ.
    """
    from repro.core.cost_distance import CostDistanceSolver
    from repro.instances.chips import build_chip, smoke_chip
    from repro.instances.eco import MovePin
    from repro.router.metrics import PARITY_FIELDS
    from repro.router.router import GlobalRouter, GlobalRouterConfig
    from repro.serve.session import RoutingSession

    shards = 2
    graph, netlist = build_chip(smoke_chip(bench_scale()))
    target = netlist.nets[0]
    sink = target.sinks[0]
    op = MovePin(
        target.name, sink.name,
        (sink.position.x + 1) % graph.nx, sink.position.y, sink.position.layer,
    )
    config = GlobalRouterConfig(num_rounds=3, shards=shards)
    session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
    session.route()
    started = time.perf_counter()
    report = session.apply_eco([op])
    eco_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cold = GlobalRouter(graph, session.netlist, CostDistanceSolver(), session.config)
    cold_result = cold.run()
    cold_seconds = time.perf_counter() - started
    for field in PARITY_FIELDS:
        if getattr(report.result, field) != getattr(cold_result, field):
            raise RuntimeError(
                f"sharded ECO replay diverged from the cold sharded "
                f"re-route on {field}"
            )
    total = 3 * session.num_nets
    return [
        {
            "name": "session_eco_sharded",
            "metrics": {
                "shards": shards,
                "eco_walltime_seconds": round(eco_seconds, 4),
                "cold_walltime_seconds": round(cold_seconds, 4),
                "eco_speedup": round(
                    cold_seconds / eco_seconds if eco_seconds > 0 else float("inf"), 3
                ),
                "nets_rerouted": report.nets_rerouted,
                "nets_reused": report.nets_reused,
                "reuse_fraction": round(report.nets_reused / total, 4),
            },
            "tracked": _result_metrics(report.result),
        }
    ]


def scenario_obs_overhead() -> List[Dict[str, object]]:
    """Tracing-off vs tracing-on routing of the smoke chip.

    Tracing disabled must stay the zero-cost default: the traced and
    untraced runs are asserted bit-identical, and the traced/untraced
    walltime ratio is *tracked* so a regression past the shared +20%
    tolerance trips the CI gate -- the ratio is measured on one machine
    within one job, so unlike absolute walltimes it transfers across
    hosts.  The ratio is floored at 1.0 before tracking so a lucky traced
    run cannot tighten the gate below "within 20% of untraced".
    """
    import tempfile

    from repro import obs
    from repro.core.cost_distance import CostDistanceSolver
    from repro.instances.chips import build_chip, smoke_chip
    from repro.obs.summary import load_trace, summarize
    from repro.router.metrics import PARITY_FIELDS
    from repro.router.router import GlobalRouter, GlobalRouterConfig

    graph, netlist = build_chip(smoke_chip(bench_scale()))

    def best_run(trace_path=None):
        best = None
        for _ in range(2):
            if trace_path is not None:
                obs.configure_tracing(trace_path)
            started = time.perf_counter()
            router = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=3, shards=2),
            )
            result = router.run()
            walltime = time.perf_counter() - started
            if trace_path is not None:
                obs.close_tracing(obs.active_registry().snapshot())
            if best is None or walltime < best[1]:
                best = (result, walltime)
        return best

    plain, plain_time = best_run()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "bench_trace.jsonl")
        traced, traced_time = best_run(trace_path)
        summary = summarize(load_trace(trace_path))
    for field in PARITY_FIELDS:
        if getattr(plain, field) != getattr(traced, field):
            raise RuntimeError(f"tracing changed the routing result on {field}")
    if not summary["complete"]:
        raise RuntimeError("benchmark trace file is truncated (no trace_end)")
    overhead = traced_time / plain_time if plain_time > 0 else 1.0
    tracked = _result_metrics(plain)
    tracked["trace_overhead_ratio"] = round(max(1.0, overhead), 3)
    return [
        {
            "name": "obs_overhead",
            "metrics": {
                "plain_walltime_seconds": round(plain_time, 4),
                "traced_walltime_seconds": round(traced_time, 4),
                "trace_overhead_ratio_raw": round(overhead, 3),
                "trace_spans": summary["spans"],
                "trace_events": summary["events"],
            },
            "tracked": tracked,
        }
    ]


def scenario_obs_stream_overhead() -> List[Dict[str, object]]:
    """Watched vs unwatched daemon route jobs.

    Submits the same sharded route job twice through an in-process daemon;
    one run streams its live events to a ``watch`` subscriber consuming on
    a second connection, the other runs unobserved.  The two results must
    be bit-identical (events observe, never feed back), and the
    watched/unwatched walltime ratio is *tracked* under the shared +20%
    gate -- like ``trace_overhead_ratio`` it is a one-machine ratio, so it
    transfers across hosts.  Floored at 1.0 so a lucky watched run cannot
    tighten the gate.
    """
    import threading

    from repro.router.metrics import PARITY_FIELDS, RoutingResult
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ServeDaemon

    params = dict(chip="c1", net_scale=0.4, rounds=3, shards=2)
    daemon = ServeDaemon(port=0, job_workers=1)
    host, port = daemon.start()
    try:
        client = ServeClient(host, port)
        client.wait_until_up()

        def best_run(watched):
            best = None
            for _ in range(2):
                started = time.perf_counter()
                job_id = client.submit_route(**params)
                events = []
                if watched:
                    watcher = threading.Thread(
                        target=lambda: events.extend(client.watch(job_id, timeout=600))
                    )
                    watcher.start()
                record = client.wait(job_id, timeout=600)
                if watched:
                    watcher.join(timeout=600)
                walltime = time.perf_counter() - started
                if record["status"] != "done":
                    raise RuntimeError(f"benchmark job failed: {record}")
                if watched and not any(e.get("event") == "round" for e in events):
                    raise RuntimeError("watch stream carried no round events")
                if best is None or walltime < best[1]:
                    best = (record, walltime)
            return best

        plain_record, plain_time = best_run(watched=False)
        watched_record, watched_time = best_run(watched=True)
    finally:
        daemon.shutdown()
    plain = RoutingResult.from_dict(plain_record["result"]["result"])
    watched = RoutingResult.from_dict(watched_record["result"]["result"])
    for field in PARITY_FIELDS:
        if getattr(plain, field) != getattr(watched, field):
            raise RuntimeError(f"watching changed the routing result on {field}")
    ratio = watched_time / plain_time if plain_time > 0 else 1.0
    tracked = _result_metrics(plain)
    tracked["obs_stream_overhead_ratio"] = round(max(1.0, ratio), 3)
    return [
        {
            "name": "obs_stream_overhead",
            "metrics": {
                "plain_walltime_seconds": round(plain_time, 4),
                "watched_walltime_seconds": round(watched_time, 4),
                "obs_stream_overhead_ratio_raw": round(ratio, 3),
            },
            "tracked": tracked,
        }
    ]


def scenario_soak_recovery() -> List[Dict[str, object]]:
    """Faulted + crashed + resumed routing vs the clean pooled run.

    The chaos leg routes the smoke chip on a region-worker pool with a
    worker killed in round 2, auto-checkpoints every round, "crashes"
    after round 2, and resumes a fresh router from the checkpoint.  The
    recovery contract is asserted in-scenario: the resumed result must be
    bit-identical to the straight-through run on every parity field.  The
    recovery/clean walltime ratio is *tracked* (floored at 1.0, one
    machine, one job -- it transfers across hosts like the obs ratios);
    it bounds the total cost of a kill + in-process retry + checkpoint
    cadence + crash + resume cycle relative to an undisturbed run.
    """
    import tempfile

    from repro import faults
    from repro.core.cost_distance import CostDistanceSolver
    from repro.instances.chips import build_chip, smoke_chip
    from repro.router.metrics import PARITY_FIELDS
    from repro.router.router import GlobalRouter, GlobalRouterConfig
    from repro.serve.checkpoint import checkpoint_every_hook, try_resume_router

    graph, netlist = build_chip(smoke_chip(bench_scale()))
    config = dict(num_rounds=3, shards=2, shard_workers=2)

    class _SimulatedCrash(BaseException):
        pass

    def make_router():
        return GlobalRouter(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
        )

    def clean_run():
        started = time.perf_counter()
        result = make_router().run()
        return result, time.perf_counter() - started

    def recovery_run(path):
        save = checkpoint_every_hook(path, 1)

        def crashing_hook(router, round_index):
            save(router, round_index)
            if round_index == 1:
                raise _SimulatedCrash

        faults.install_plan("kill-region-worker:round=2")
        started = time.perf_counter()
        try:
            interrupted = make_router()
            try:
                interrupted.run(on_round_end=crashing_hook)
                raise RuntimeError("simulated crash never fired")
            except _SimulatedCrash:
                pass
            interrupted.engine.close()
        finally:
            faults.clear_plan()
        resumed = make_router()
        if not try_resume_router(resumed, path):
            raise RuntimeError("auto-checkpoint did not resume")
        resumed_from = resumed.rounds_completed
        result = resumed.run(on_round_end=save)
        return result, time.perf_counter() - started, resumed_from

    # Best-of-2 on both legs, like the other ratio scenarios: the ratio is
    # gated, so per-run pool-forking noise must not masquerade as drift.
    clean, clean_time = min((clean_run() for _ in range(2)), key=lambda r: r[1])
    with tempfile.TemporaryDirectory() as tmp:
        legs = [
            recovery_run(os.path.join(tmp, f"soak_recovery_{attempt}.ckpt"))
            for attempt in range(2)
        ]
    result, recovery_time, resumed_from = min(legs, key=lambda r: r[1])

    for field in PARITY_FIELDS:
        if getattr(clean, field) != getattr(result, field):
            raise RuntimeError(
                f"kill + crash + resume changed the routing result on {field}"
            )
    ratio = recovery_time / clean_time if clean_time > 0 else 1.0
    tracked = _result_metrics(result)
    tracked["recovery_overhead_ratio"] = round(max(1.0, ratio), 3)
    return [
        {
            "name": "soak_recovery",
            "metrics": {
                "clean_walltime_seconds": round(clean_time, 4),
                "recovery_walltime_seconds": round(recovery_time, 4),
                "recovery_overhead_ratio_raw": round(ratio, 3),
                "resumed_from_round": resumed_from,
            },
            "tracked": tracked,
        }
    ]


def scenario_kernel_speedup() -> List[Dict[str, object]]:
    """Vectorized routing-state kernel vs the retained scalar reference.

    Routes the large chip's unsharded batch path twice: once as shipped
    (numpy congestion kernels, batch-level oracle cost context, incremental
    cost digests) and once with the scalar reference paths from
    :mod:`repro.grid.reference` patched in.  The two runs must be
    bit-identical on every parity field -- that is the vectorization's
    acceptance bar, asserted here in-scenario.  The speedup compares the
    summed engine *round* walltimes (best of 2 per leg), excluding the
    shared chip/netlist construction both legs pay identically.

    ``kernel_time_ratio`` (vectorized/reference round time) is *tracked*
    under the shared +20% gate; like the obs ratios it is measured on one
    machine within one job, so it transfers across hosts.  It is floored
    at 0.5, so the gate asserts "the vectorized kernel stays at least
    ~1.7x faster than the scalar reference" without letting an unusually
    fast run tighten the gate further.
    """
    from repro.core.cost_distance import CostDistanceSolver
    from repro.grid.reference import install_reference_kernel
    from repro.instances.chips import large_chip
    from repro.router.metrics import PARITY_FIELDS
    from repro.router.router import GlobalRouter, GlobalRouterConfig

    # Same workload floor as the shard-scaling scenario: the kernel's wins
    # scale with edge count, so the speedup target is a large-design claim.
    graph, netlist = large_chip(max(0.8, bench_scale()))

    def best_run():
        best = None
        for _ in range(2):
            started = time.perf_counter()
            router = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=3),
            )
            result = router.run()
            walltime = time.perf_counter() - started
            round_time = sum(r.walltime_seconds for r in router.engine.round_reports)
            if best is None or round_time < best[1]:
                best = (result, round_time, walltime)
        return best

    vec, vec_rounds, vec_total = best_run()
    with install_reference_kernel():
        ref, ref_rounds, ref_total = best_run()
    for field in PARITY_FIELDS:
        if getattr(vec, field) != getattr(ref, field):
            raise RuntimeError(
                f"vectorized kernel diverged from the scalar reference on {field}"
            )
    ratio = vec_rounds / ref_rounds if ref_rounds > 0 else 1.0
    tracked = _result_metrics(vec)
    tracked["kernel_time_ratio"] = round(max(0.5, ratio), 3)
    return [
        {
            "name": "kernel_speedup",
            "metrics": {
                "nets": netlist.num_nets,
                "edges": graph.num_edges,
                "vector_round_seconds": round(vec_rounds, 4),
                "reference_round_seconds": round(ref_rounds, 4),
                "vector_walltime_seconds": round(vec_total, 4),
                "reference_walltime_seconds": round(ref_total, 4),
                "kernel_speedup": round(
                    ref_rounds / vec_rounds if vec_rounds > 0 else float("inf"), 3
                ),
                "kernel_time_ratio_raw": round(ratio, 3),
            },
            "tracked": tracked,
        }
    ]


def run_trajectory() -> Dict[str, object]:
    records: List[Dict[str, object]] = []
    records.extend(scenario_engine_modes())
    records.extend(scenario_serve_throughput())
    records.extend(scenario_shard_scaling())
    records.extend(scenario_session_eco())
    records.extend(scenario_obs_overhead())
    records.extend(scenario_obs_stream_overhead())
    records.extend(scenario_soak_recovery())
    records.extend(scenario_kernel_speedup())
    return {
        "schema": SCHEMA_VERSION,
        "bench_scale": bench_scale(),
        "benchmarks": records,
    }


def compare(current: Dict[str, object], baseline: Dict[str, object]) -> List[str]:
    """Tracked-metric regressions of ``current`` against ``baseline``.

    All tracked metrics are lower-is-better.  Returns human-readable
    failure lines (empty = pass).  Scenarios or metrics absent from the
    baseline are skipped, so adding benchmarks never breaks CI; a metric
    that *disappears* from the current run fails, so coverage cannot
    silently shrink.
    """
    failures: List[str] = []
    if baseline.get("bench_scale") != current.get("bench_scale"):
        failures.append(
            f"bench scale mismatch: baseline {baseline.get('bench_scale')} "
            f"vs current {current.get('bench_scale')} (set REPRO_BENCH_SCALE)"
        )
        return failures
    current_by_name = {b["name"]: b for b in current["benchmarks"]}  # type: ignore[index]
    for base_bench in baseline.get("benchmarks", []):  # type: ignore[union-attr]
        name = base_bench["name"]
        tracked_base = base_bench.get("tracked", {})
        if not tracked_base:
            continue
        current_bench = current_by_name.get(name)
        if current_bench is None:
            failures.append(f"{name}: benchmark disappeared from the trajectory")
            continue
        tracked_now = current_bench.get("tracked", {})
        for metric, base_value in tracked_base.items():
            if metric not in tracked_now:
                failures.append(f"{name}.{metric}: metric disappeared")
                continue
            now = float(tracked_now[metric])
            base_value = float(base_value)
            limit = base_value * (1.0 + TOLERANCE) + EPSILON
            if now > limit:
                failures.append(
                    f"{name}.{metric}: {now:.4f} regressed past "
                    f"{limit:.4f} (baseline {base_value:.4f}, +{TOLERANCE:.0%})"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr.json", help="trajectory output path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="baseline JSON path")
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when tracked metrics regress vs the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured trajectory to the baseline path as well",
    )
    args = parser.parse_args(argv)

    document = run_trajectory()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"trajectory written to {args.output}", file=sys.stderr)
    for bench in document["benchmarks"]:  # type: ignore[union-attr]
        print(f"  {bench['name']}: {json.dumps(bench['metrics'])}", file=sys.stderr)

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated at {args.baseline}", file=sys.stderr)
        return 0

    if args.check:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"error: no baseline at {args.baseline}", file=sys.stderr)
            return 1
        failures = compare(document, baseline)
        if failures:
            print("tracked metric regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("tracked metrics within tolerance of the baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
