"""Ablation of the practical enhancements (paper Section III).

Runs the cost-distance solver with each enhancement disabled in turn on a
common set of instances, reporting the average objective and the number of
Dijkstra labels (a proxy for running time) relative to the full configuration.
"""

import random

import pytest

from repro.core.cost_distance import CostDistanceConfig, CostDistanceSolver
from repro.core.objective import evaluate_tree
from repro.instances.generator import generate_steiner_instances
from repro.timing.delay import LinearDelayModel

from benchmarks.conftest import write_result

CONFIGS = {
    "full": CostDistanceConfig(),
    "no-component-discount (III-A off)": CostDistanceConfig(discount_components=False),
    "no-two-level-heap (III-B off)": CostDistanceConfig(use_two_level_heap=False),
    "no-future-costs (III-C off)": CostDistanceConfig(use_future_costs=False),
    "no-improved-placement (III-D off)": CostDistanceConfig(improved_steiner_placement=False),
    "no-root-encouragement (III-E off)": CostDistanceConfig(encourage_root_connections=False),
    "plain (Section II only)": CostDistanceConfig.plain(),
}


@pytest.mark.benchmark(group="ablation")
def test_ablation_of_practical_enhancements(benchmark, instance_graph):
    dbif = LinearDelayModel(instance_graph.stack).bifurcation_penalty()
    instances = generate_steiner_instances(
        instance_graph, num_instances=12, dbif=dbif, seed=404,
        size_distribution=((6, 14, 0.5), (15, 29, 0.3), (30, 45, 0.2)),
    )

    def run():
        summary = {}
        for name, config in CONFIGS.items():
            total = 0.0
            labels = 0
            for index, instance in enumerate(instances):
                solver = CostDistanceSolver(config)
                details = solver.solve_with_details(instance, random.Random(index))
                total += evaluate_tree(instance, details.tree).total
                labels += details.num_labels
            summary[name] = (total / len(instances), labels)
        return summary

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    base_obj, base_labels = summary["full"]
    lines = ["Ablation of Section III enhancements (12 instances, dbif > 0)"]
    lines.append(f"{'configuration':>38} {'avg objective':>14} {'labels':>10}")
    for name, (objective, labels) in summary.items():
        lines.append(f"{name:>38} {objective:14.2f} {labels:10d}")
    write_result("ablation_enhancements", "\n".join(lines))
    for name, (objective, labels) in summary.items():
        benchmark.extra_info[name] = round(objective, 2)
    # The full configuration should not be worse than the plain algorithm on
    # average, and future costs should not increase the label count.
    assert base_obj <= summary["plain (Section II only)"][0] * 1.1
    assert base_labels <= summary["no-future-costs (III-C off)"][1]
