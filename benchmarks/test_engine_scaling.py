"""Engine scaling: serial vs. parallel vs. cached batch routing.

Routes the smoke chip (``c1``) of the synthetic suite through the
:class:`repro.engine.engine.RoutingEngine` in three modes -- the ``serial``
backend, the ``process`` backend, and ``serial`` with the incremental
re-route cache -- and records the walltime of each.  Walltimes are reported
for inspection only (no regression gating: pure-Python multiprocessing
break-even depends on the machine and on net count); what *is* asserted is
the engine's determinism contract: all three modes must reproduce identical
``RoutingResult`` metrics bit for bit at ``seed=0``.
"""

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.engine.engine import EngineConfig
from repro.instances.chips import CHIP_SUITE, build_chip, smoke_chip
from repro.router.metrics import format_result_row
from repro.router.router import GlobalRouter, GlobalRouterConfig

from benchmarks.conftest import bench_scale, write_result

#: Engine modes recorded by the scaling benchmark.  The cached mode uses the
#: exact (full-cost-digest) cache scope: parity with the serial baseline is
#: *guaranteed* under it, whereas the default ``bbox`` scope is a (very good)
#: heuristic that is not contractually bit-exact.
ENGINE_MODES = (
    ("serial", EngineConfig(backend="serial")),
    ("parallel", EngineConfig(backend="process")),
    ("cached", EngineConfig(backend="serial", reroute_cache=True, cache_scope="global")),
)

#: Metric fields that must agree bit for bit across engine modes.
PARITY_FIELDS = (
    "worst_slack",
    "total_negative_slack",
    "ace4",
    "wire_length",
    "via_count",
    "overflow",
    "objective",
)


def route_smoke_chip(engine_config, num_rounds=3, seed=0):
    spec = smoke_chip(bench_scale())
    graph, netlist = build_chip(spec)
    router = GlobalRouter(
        graph,
        netlist,
        CostDistanceSolver(),
        GlobalRouterConfig(num_rounds=num_rounds, seed=seed, engine=engine_config),
    )
    return router, router.run()


@pytest.mark.benchmark(group="engine_scaling")
def test_engine_scaling_and_parity(benchmark):
    def run_all():
        rows = {}
        for mode, engine_config in ENGINE_MODES:
            rows[mode] = route_smoke_chip(engine_config)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"Engine scaling on {CHIP_SUITE[0].name} "
        f"(net scale {bench_scale()}, 3 rounds, seed 0)",
        "",
    ]
    for mode, (router, result) in rows.items():
        lines.append(f"{mode:>9}: {format_result_row(result)}")
        benchmark.extra_info[f"{mode}_walltime"] = round(result.walltime_seconds, 4)
        if router.engine.cache is not None:
            stats = router.engine.cache.stats
            lines.append(
                f"{'':>9}  re-route cache: {stats.hits}/{stats.lookups} hits "
                f"({100.0 * stats.hit_rate:.1f}%)"
            )
            benchmark.extra_info["cache_hits"] = stats.hits
            benchmark.extra_info["cache_lookups"] = stats.lookups
    write_result("engine_scaling", "\n".join(lines))

    # Determinism contract: every mode reproduces the serial metrics exactly.
    _, serial = rows["serial"]
    for mode in ("parallel", "cached"):
        _, other = rows[mode]
        for field in PARITY_FIELDS:
            assert getattr(other, field) == getattr(serial, field), (
                f"{mode} backend diverged from serial on {field}"
            )

    # The cache must actually fire in later rip-up rounds.
    cached_router, _ = rows["cached"][0], rows["cached"][1]
    assert cached_router.engine.cache.stats.hits > 0
