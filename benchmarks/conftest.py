"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Because the
full industrial-scale evaluation is far beyond a pure-Python laptop run, the
workload sizes are scaled; set the environment variable ``REPRO_BENCH_SCALE``
(default ``0.3``) to scale the number of routed nets in the global-routing
benchmarks, e.g. ``REPRO_BENCH_SCALE=1.0`` for the full synthetic suite.

Formatted result tables are written to ``benchmarks/results/`` so they can be
inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_scale() -> float:
    """Net-count scale factor for the global routing benchmarks."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
    except ValueError:
        return 0.3


def write_result(name: str, text: str) -> None:
    """Persist a formatted table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture(scope="session")
def instance_graph():
    """Graph used by the instance-level comparisons (Tables I/II)."""
    from repro.grid.graph import build_grid_graph

    return build_grid_graph(14, 14, 6)
