"""Paper Table IV: timing-constrained global routing results with dbif = 0.

Routes every chip of the synthetic suite with each Steiner oracle and reports
WS, TNS, ACE4, wire length, via count and walltime.  The chip sizes are
scaled by ``REPRO_BENCH_SCALE`` (default 0.3) to keep the pure-Python run in
the minutes range.
"""

import pytest

from repro.analysis.experiments import default_oracles, run_global_routing
from repro.analysis.tables import format_routing_results
from repro.instances.chips import CHIP_SUITE
from repro.router.router import GlobalRouterConfig

from benchmarks.conftest import bench_scale, write_result


@pytest.mark.benchmark(group="table4")
def test_table4_global_routing_dbif_zero(benchmark):
    scale = bench_scale()
    chips = [spec.scaled(scale) for spec in CHIP_SUITE]
    config = GlobalRouterConfig(num_rounds=2, dbif=0.0)

    def run():
        return run_global_routing(chips, default_oracles(), config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_routing_results(
        results,
        title=f"Table IV analogue: global routing, dbif = 0 (net scale {scale})",
    )
    write_result("table4_global_routing", text)

    methods = ("L1", "SL", "PD", "CD")
    per_method = {m: [r for r in results if r.method == m] for m in methods}
    for method, rows in per_method.items():
        benchmark.extra_info[f"{method}_vias"] = sum(r.via_count for r in rows)
        benchmark.extra_info[f"{method}_wl"] = round(sum(r.wire_length for r in rows), 1)
        benchmark.extra_info[f"{method}_tns"] = round(
            sum(r.total_negative_slack for r in rows), 1
        )
    # Reproduced shape: the cost-distance trees use the fewest vias and the
    # cost-distance runs are not slower than the baselines overall.
    cd_vias = benchmark.extra_info["CD_vias"]
    assert cd_vias <= min(
        benchmark.extra_info[f"{m}_vias"] for m in ("L1", "SL", "PD")
    )
    cd_time = sum(r.walltime_seconds for r in per_method["CD"])
    other_time = min(
        sum(r.walltime_seconds for r in per_method[m]) for m in ("L1", "SL", "PD")
    )
    assert cd_time <= other_time * 1.5
