"""Paper Table III: instance parameters of the (synthetic) chip suite."""

import pytest

from repro.analysis.tables import format_chip_table
from repro.instances.chips import CHIP_SUITE, build_chip, chip_table

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="table3")
def test_table3_instance_parameters(benchmark):
    def run():
        rows = chip_table()
        # Building the smallest and largest chips exercises generation.
        build_chip(CHIP_SUITE[0])
        build_chip(CHIP_SUITE[-1])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_chip_table(rows)
    write_result("table3_instance_parameters", text)
    assert len(rows) == 8
    layers = [row["layers"] for row in rows]
    assert min(layers) == 7 and max(layers) == 15
