"""Paper Figures 1-3: bifurcation comparison, branch-split trade-off, and the
iteration-by-iteration algorithm trace."""

import pytest

from repro.analysis.figures import (
    figure1_bifurcation_comparison,
    figure2_split_tradeoff,
    figure3_algorithm_trace,
)
from repro.grid.graph import build_grid_graph

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="figure1")
def test_figure1_bifurcation_comparison(benchmark):
    graph = build_grid_graph(16, 16, 6)

    def run():
        return figure1_bifurcation_comparison(graph, num_sinks=12, dbif=4.0, seed=7)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Figure 1 analogue: bifurcations on the critical root-sink path\n"
        f"  without penalties: {result.critical_bifurcations_without} bifurcations, "
        f"critical delay {result.critical_delay_without:.2f} ps\n"
        f"  with penalties:    {result.critical_bifurcations_with} bifurcations, "
        f"critical delay {result.critical_delay_with:.2f} ps\n"
        f"  objective without/with: {result.objective_without:.2f} / {result.objective_with:.2f}"
    )
    write_result("figure1_bifurcations", text)
    benchmark.extra_info["bifurcations_without"] = result.critical_bifurcations_without
    benchmark.extra_info["bifurcations_with"] = result.critical_bifurcations_with
    # Shape: penalties do not add bifurcations on the critical path (a small
    # tolerance absorbs the randomised tie-breaking of the construction).
    assert result.critical_bifurcations_with <= result.critical_bifurcations_without + 1
    assert result.critical_delay_with <= result.critical_delay_without * 2.0


@pytest.mark.benchmark(group="figure2")
def test_figure2_split_tradeoff(benchmark):
    def run():
        return figure2_split_tradeoff(weight_heavy=2.0, weight_light=0.5, eta=0.25)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Figure 2 analogue: weighted penalty vs. split of dbif"]
    for lam, value in result.split_samples:
        lines.append(f"  lambda_heavy = {lam:.2f}: weighted penalty {value:.3f} ps")
    lines.append(f"  even split:    {result.even_split_penalty:.3f} ps")
    lines.append(
        f"  optimal split: lambda_heavy = {result.optimal_lambda_heavy:.2f}, "
        f"penalty {result.optimal_penalty:.3f} ps"
    )
    write_result("figure2_split_tradeoff", "\n".join(lines))
    assert result.optimal_penalty <= result.even_split_penalty


@pytest.mark.benchmark(group="figure3")
def test_figure3_algorithm_trace(benchmark):
    def run():
        return figure3_algorithm_trace(num_sinks=5, seed=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("figure3_algorithm_trace", "Figure 3 analogue:\n" + result.ascii_art)
    benchmark.extra_info["iterations"] = len(result.merges)
    assert 1 <= len(result.merges) <= 5
    assert result.merges[-1].is_root_merge
