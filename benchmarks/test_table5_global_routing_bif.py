"""Paper Table V: timing-constrained global routing with bifurcation
penalties (``dbif`` derived from the repeater-chain model)."""

import pytest

from repro.analysis.experiments import default_oracles, run_global_routing
from repro.analysis.tables import format_routing_results
from repro.instances.chips import CHIP_SUITE
from repro.router.router import GlobalRouterConfig

from benchmarks.conftest import bench_scale, write_result


@pytest.mark.benchmark(group="table5")
def test_table5_global_routing_with_penalties(benchmark):
    scale = bench_scale()
    chips = [spec.scaled(scale) for spec in CHIP_SUITE]
    # dbif=None derives the penalty from the repeater-chain model per chip.
    config = GlobalRouterConfig(num_rounds=2, dbif=None)

    def run():
        return run_global_routing(chips, default_oracles(), config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_routing_results(
        results,
        title=f"Table V analogue: global routing, dbif > 0 (net scale {scale})",
    )
    write_result("table5_global_routing_bif", text)

    methods = ("L1", "SL", "PD", "CD")
    per_method = {m: [r for r in results if r.method == m] for m in methods}
    for method, rows in per_method.items():
        benchmark.extra_info[f"{method}_vias"] = sum(r.via_count for r in rows)
        benchmark.extra_info[f"{method}_ws"] = round(min(r.worst_slack for r in rows), 1)
        benchmark.extra_info[f"{method}_tns"] = round(
            sum(r.total_negative_slack for r in rows), 1
        )
    # Reproduced shape: with penalties enabled the cost-distance trees keep
    # the lowest via count among the four methods.
    cd_vias = benchmark.extra_info["CD_vias"]
    assert cd_vias <= min(
        benchmark.extra_info[f"{m}_vias"] for m in ("L1", "SL", "PD")
    )
