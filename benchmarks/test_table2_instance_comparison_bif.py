"""Paper Table II: average cost increase vs. the best of {L1, SL, PD, CD}
with bifurcation penalties enabled (``dbif > 0``)."""

import pytest

from repro.analysis.experiments import run_instance_comparison
from repro.analysis.tables import format_instance_comparison
from repro.instances.generator import generate_steiner_instances
from repro.timing.delay import LinearDelayModel

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="table2")
def test_table2_instance_comparison_with_penalties(benchmark, instance_graph):
    dbif = LinearDelayModel(instance_graph.stack).bifurcation_penalty()
    instances = generate_steiner_instances(
        instance_graph, num_instances=28, dbif=dbif, seed=202
    )

    def run():
        return run_instance_comparison(instances, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_instance_comparison(
        rows,
        title=f"Table II analogue: average cost increase vs best, dbif = {dbif:.2f} ps",
    )
    write_result("table2_instance_comparison_bif", text)
    all_row = rows[-1]
    for method, value in all_row.average_increase.items():
        benchmark.extra_info[f"avg_increase_{method}"] = round(value, 3)
    # Paper shape (Table II): with penalties the cost-distance algorithm
    # dominates the baselines overall.
    cd = all_row.average_increase["CD"]
    others = [all_row.average_increase[m] for m in ("L1", "SL", "PD")]
    assert cd <= min(others) + 1.0
