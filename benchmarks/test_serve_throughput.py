"""Serve-layer throughput: daemon jobs/sec and ECO-vs-cold speedups.

Three measurements on the smoke chip (``c1``), recorded under
``benchmarks/results/serve_throughput.txt``:

* **daemon throughput** -- a batch of small route jobs is pushed through a
  :class:`repro.serve.daemon.ServeDaemon` worker pool and the sustained
  jobs/sec is reported (walltimes are machine-dependent, so no regression
  gate),
* **ECO incrementality** -- one pin of a routed session is moved and the
  incremental re-route is timed against a cold full re-route of the edited
  netlist, and
* **sharded ECO incrementality** -- the same delta against a *sharded*
  session (``shards=2``): the replay memos travel through the shard
  coordinator, so clean regions replay without oracle calls and the
  incremental re-route is timed against a cold *sharded* re-route.

What *is* asserted is the serve determinism contract: each ECO result must
equal its cold counterpart bit for bit while touching only a subset of the
nets (the dirty closure).
"""

import time

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.instances.chips import build_chip, smoke_chip
from repro.instances.eco import MovePin
from repro.router.metrics import PARITY_FIELDS
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.session import RoutingSession

from benchmarks.conftest import bench_scale, write_result

#: Route jobs pushed through the daemon for the throughput figure.
NUM_JOBS = 4
ROUNDS = 3
#: Regions of the sharded session measurement.
SHARDS = 2


def daemon_throughput():
    """Route NUM_JOBS small jobs through the daemon; returns (jobs/sec, s)."""
    with ServeDaemon(port=0, job_workers=2) as daemon:
        host, port = daemon.start()
        client = ServeClient(host, port, timeout=60.0)
        client.wait_until_up()
        started = time.perf_counter()
        job_ids = [
            client.submit_route(
                chip="c1", net_scale=bench_scale(), rounds=1, seed=seed
            )
            for seed in range(NUM_JOBS)
        ]
        jobs = [client.wait(job_id, timeout=600.0) for job_id in job_ids]
        elapsed = time.perf_counter() - started
    assert all(job["status"] == "done" for job in jobs)
    return NUM_JOBS / elapsed, elapsed


def eco_vs_cold(shards=1):
    """Move one pin of a routed session; time ECO vs. cold re-route.

    ``shards > 1`` measures the sharded session path: the replay memos run
    through the shard coordinator and the cold reference is a cold *sharded*
    re-route of the edited netlist under the same configuration.
    """
    spec = smoke_chip(bench_scale())
    graph, netlist = build_chip(spec)
    # A legal in-grid move of the first sink of the first net.
    target = netlist.nets[0]
    sink = target.sinks[0]
    new_x = (sink.position.x + 1) % graph.nx
    op = MovePin(target.name, sink.name, new_x, sink.position.y, sink.position.layer)

    config = GlobalRouterConfig(num_rounds=ROUNDS, shards=shards)
    session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
    session.route()
    started = time.perf_counter()
    report = session.apply_eco([op])
    eco_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cold_router = GlobalRouter(
        graph, session.netlist, CostDistanceSolver(), session.config
    )
    cold_result = cold_router.run()
    cold_seconds = time.perf_counter() - started

    for field in PARITY_FIELDS:
        assert getattr(report.result, field) == getattr(cold_result, field), (
            f"ECO replay diverged from the cold re-route on {field}"
        )
    total = ROUNDS * session.num_nets
    assert report.nets_reused > 0, "ECO replay reused nothing"
    assert report.nets_rerouted < total, "ECO replay re-routed every net"
    return report, eco_seconds, cold_seconds


@pytest.mark.benchmark(group="serve_throughput")
def test_serve_throughput(benchmark):
    def run_all():
        return daemon_throughput(), eco_vs_cold(), eco_vs_cold(shards=SHARDS)

    (
        (jobs_per_sec, batch_seconds),
        (report, eco_seconds, cold_seconds),
        (shard_report, shard_eco_seconds, shard_cold_seconds),
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = cold_seconds / eco_seconds if eco_seconds > 0 else float("inf")
    shard_speedup = (
        shard_cold_seconds / shard_eco_seconds
        if shard_eco_seconds > 0
        else float("inf")
    )

    lines = [
        f"Serve throughput on c1 (net scale {bench_scale()}, seed 0)",
        "",
        f"daemon: {NUM_JOBS} route jobs in {batch_seconds:.2f}s "
        f"-> {jobs_per_sec:.2f} jobs/sec (2 workers, 1 round each)",
        f"ECO ({ROUNDS} rounds): re-routed {report.nets_rerouted} net-rounds, "
        f"reused {report.nets_reused} "
        f"({100.0 * report.nets_reused / (report.nets_reused + report.nets_rerouted):.1f}% amortised)",
        f"ECO walltime {eco_seconds:.3f}s vs cold re-route {cold_seconds:.3f}s "
        f"-> speedup {speedup:.2f}x (metrics bit-identical)",
        f"sharded ECO (K={SHARDS}, {ROUNDS} rounds): re-routed "
        f"{shard_report.nets_rerouted} net-rounds, reused {shard_report.nets_reused} "
        f"({100.0 * shard_report.nets_reused / (shard_report.nets_reused + shard_report.nets_rerouted):.1f}% amortised)",
        f"sharded ECO walltime {shard_eco_seconds:.3f}s vs cold sharded "
        f"re-route {shard_cold_seconds:.3f}s -> speedup {shard_speedup:.2f}x "
        f"(metrics bit-identical)",
    ]
    benchmark.extra_info["jobs_per_sec"] = round(jobs_per_sec, 3)
    benchmark.extra_info["eco_seconds"] = round(eco_seconds, 4)
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["eco_speedup"] = round(speedup, 3)
    benchmark.extra_info["nets_rerouted"] = report.nets_rerouted
    benchmark.extra_info["nets_reused"] = report.nets_reused
    benchmark.extra_info["shard_eco_seconds"] = round(shard_eco_seconds, 4)
    benchmark.extra_info["shard_cold_seconds"] = round(shard_cold_seconds, 4)
    benchmark.extra_info["shard_eco_speedup"] = round(shard_speedup, 3)
    benchmark.extra_info["shard_nets_rerouted"] = shard_report.nets_rerouted
    benchmark.extra_info["shard_nets_reused"] = shard_report.nets_reused
    write_result("serve_throughput", "\n".join(lines))
