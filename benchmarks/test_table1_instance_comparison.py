"""Paper Table I: average cost increase vs. the best of {L1, SL, PD, CD},
on identical cost-distance Steiner instances with ``dbif = 0``."""

import pytest

from repro.analysis.experiments import run_instance_comparison
from repro.analysis.tables import format_instance_comparison
from repro.instances.generator import generate_steiner_instances

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="table1")
def test_table1_instance_comparison(benchmark, instance_graph):
    instances = generate_steiner_instances(
        instance_graph, num_instances=28, dbif=0.0, seed=101
    )

    def run():
        return run_instance_comparison(instances, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_instance_comparison(
        rows, title="Table I analogue: average cost increase vs best, dbif = 0"
    )
    write_result("table1_instance_comparison", text)
    all_row = rows[-1]
    for method, value in all_row.average_increase.items():
        benchmark.extra_info[f"avg_increase_{method}"] = round(value, 3)
    # Reproduced shape: CD is competitive overall (within 1.5 percentage
    # points of the best method's average increase).
    cd = all_row.average_increase["CD"]
    best = min(all_row.average_increase.values())
    assert cd <= best + 1.5
