"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without network access to build-time dependencies
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cost-distance Steiner trees for timing-constrained global routing "
        "(reproduction of Held & Perner, DAC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
