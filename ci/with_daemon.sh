#!/usr/bin/env bash
# Run a command against a live repro daemon.
#
#   ci/with_daemon.sh [serve args] -- command [args...]
#
# Starts `python -m repro serve` with the given arguments (which must
# include --port), polls the health endpoint until the daemon answers,
# runs the command, and always tears the daemon down on exit: graceful
# `shutdown` first, SIGKILL when the daemon stops responding.  The
# command's exit status is the script's exit status.
set -euo pipefail

SERVE_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --) shift; break ;;
    *) SERVE_ARGS+=("$1"); shift ;;
  esac
done
if [ $# -eq 0 ]; then
  echo "usage: ci/with_daemon.sh [serve args] -- command [args...]" >&2
  exit 2
fi

PORT=""
for ((i = 0; i < ${#SERVE_ARGS[@]}; i++)); do
  if [ "${SERVE_ARGS[i]}" = "--port" ]; then
    PORT="${SERVE_ARGS[i + 1]:-}"
  fi
done
if [ -z "$PORT" ]; then
  echo "ci/with_daemon.sh: serve args must include --port PORT" >&2
  exit 2
fi

export PYTHONPATH="${PYTHONPATH:-src}"
python -m repro serve "${SERVE_ARGS[@]}" &
SERVE_PID=$!

cleanup() {
  status=$?
  trap - EXIT
  if kill -0 "$SERVE_PID" 2>/dev/null; then
    python -m repro shutdown --port "$PORT" >/dev/null 2>&1 || \
      kill -9 "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  exit "$status"
}
trap cleanup EXIT

READY=""
for _ in $(seq 1 100); do
  if python -m repro health --port "$PORT" >/dev/null 2>&1; then
    READY=1
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "ci/with_daemon.sh: daemon exited before answering health checks" >&2
    exit 1
  fi
  sleep 0.2
done
if [ -z "$READY" ]; then
  echo "ci/with_daemon.sh: daemon not healthy on port $PORT after 20s" >&2
  exit 1
fi

"$@"
