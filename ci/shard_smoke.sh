#!/usr/bin/env bash
# Shard smoke: one --shards 4 --shard-workers 2 job; validate the merged
# result schema.  Usage: ci/shard_smoke.sh PORT  (under ci/with_daemon.sh)
set -euo pipefail
PORT="$1"

python -m repro submit --port "$PORT" --chip c1 --net-scale 0.4 --rounds 2 \
  --shards 4 --shard-workers 2 --wait --timeout 600 > shard_job.json
python - <<'EOF'
import json
from repro.router.metrics import RoutingResult

job = json.load(open("shard_job.json"))
assert job["status"] == "done", job
payload = job["result"]
merged = RoutingResult.from_dict(payload["result"])
assert merged.num_nets == payload["seam_nets"] + sum(payload["interior_nets"])
assert payload["shards"] == 4 and payload["subjobs"], payload
assert payload["shard_workers"] == 2, payload
# Ubuntu runners have working fork pools; the thread fallback is for
# sandboxes without them.
assert payload["region_backend"] == "process", payload
print("merged shard result parses:", merged)
EOF
