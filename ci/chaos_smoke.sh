#!/usr/bin/env bash
# Chaos smoke: a route with a region worker killed mid-round, an
# auto-checkpoint every round, and a hard crash (crash-run exits the
# process) must -- after a --resume leg -- land bit-identical to the
# undisturbed run.  This is the recovery contract end to end, through
# the public CLI only.  Usage: ci/chaos_smoke.sh [workdir]
set -euo pipefail
cd "${1:-.}"
export PYTHONPATH="${PYTHONPATH:-src}"

ROUTE_ARGS=(--chip c1 --net-scale 0.3 --rounds 3 --shards 2)

python -m repro "${ROUTE_ARGS[@]}" --json > clean.json

# Leg 1: worker pool + kill fault + crash after round 2's checkpoint.
# crash-run calls os._exit(13) *after* the round hooks, so the rename
# that publishes the checkpoint has already happened.
set +e
python -m repro "${ROUTE_ARGS[@]}" --shard-workers 2 \
  --checkpoint chaos.ckpt --checkpoint-every 1 \
  --inject 'kill-region-worker:round=2;crash-run:round=2' --json > /dev/null
CRASH_STATUS=$?
set -e
if [ "$CRASH_STATUS" -ne 13 ]; then
  echo "chaos_smoke: expected crash-run exit 13, got $CRASH_STATUS" >&2
  exit 1
fi
if [ ! -f chaos.ckpt ]; then
  echo "chaos_smoke: crash left no checkpoint behind" >&2
  exit 1
fi

# Leg 2: resume from the auto-checkpoint and finish the remaining round.
python -m repro "${ROUTE_ARGS[@]}" --shard-workers 2 \
  --checkpoint chaos.ckpt --resume --json > chaos.json

python - <<'EOF'
import json
from repro.router.metrics import PARITY_FIELDS, RoutingResult

clean = RoutingResult.from_dict(json.load(open("clean.json")))
chaos = RoutingResult.from_dict(json.load(open("chaos.json")))
for field in PARITY_FIELDS:
    want, got = getattr(clean, field), getattr(chaos, field)
    assert want == got, f"{field}: clean {want!r} != killed+crashed+resumed {got!r}"
print("kill + crash + resume bit-identical to the clean run on", PARITY_FIELDS)
EOF
