#!/usr/bin/env bash
# Serve smoke: submit, poll, fetch, and ECO-replay against a live daemon.
# Usage: ci/serve_smoke.sh PORT   (run under ci/with_daemon.sh)
set -euo pipefail
PORT="$1"

JOB_ID=$(python -m repro submit --port "$PORT" --chip c1 --net-scale 0.3 --rounds 2 \
  --session smoke | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')
echo "submitted $JOB_ID"
python -m repro result --port "$PORT" "$JOB_ID" --wait --timeout 600
python -m repro eco --port "$PORT" --session smoke --wait \
  --ops '[{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 1, "y": 1}]'
# Sharded ECO replay: re-point the session at 2 regions on a 2-worker
# pool; the memo log runs through the shard coordinator.
python -m repro eco --port "$PORT" --session smoke --wait \
  --shards 2 --shard-workers 2 \
  --ops '[{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 2, "y": 2}]' > eco_shard.json
python - <<'EOF'
import json
payload = json.load(open("eco_shard.json"))
assert payload["status"] == "done", payload
assert payload["result"]["nets_reused"] > 0, payload  # clean scopes replayed
EOF
# A session opened *sharded* accepts ECOs that replay through it.
JOB2=$(python -m repro submit --port "$PORT" --chip c1 --net-scale 0.3 --rounds 2 \
  --session smoke-sharded --shards 2 --shard-workers 2 \
  | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')
python -m repro result --port "$PORT" "$JOB2" --wait --timeout 600
python -m repro eco --port "$PORT" --session smoke-sharded --wait \
  --ops '[{"op": "move_pin", "net": "n1", "pin": "n1:s0", "x": 3, "y": 1}]'
python -m repro status --port "$PORT" --all
