#!/usr/bin/env bash
# Obs smoke, daemon leg: watch a sharded job live, check round history,
# scrape Prometheus metrics.  Usage: ci/obs_smoke.sh PORT  (run under
# ci/with_daemon.sh with --job-workers 1: a blocker job holds the single
# worker so the watched job stays queued until the watcher has attached).
set -euo pipefail
PORT="$1"

BLOCKER=$(python -m repro submit --port "$PORT" --chip c1 --net-scale 1.0 --rounds 4 \
  | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')
echo "blocker $BLOCKER holds the worker"
# --session routes through the in-process shard coordinator, so the job
# publishes region_done/seam_done/round events itself.
JOB_ID=$(python -m repro submit --port "$PORT" --chip c1 --net-scale 0.3 --rounds 3 \
  --shards 2 --session watch-smoke \
  | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')
# A second client watches the stream until the terminal job_state.
python -m repro watch --port "$PORT" "$JOB_ID" > events.jsonl
python - <<'EOF'
import json
events = [json.loads(line) for line in open("events.jsonl")]
rounds = [e for e in events if e["event"] == "round"]
assert [e["round"] for e in rounds] == [1, 2, 3], rounds
remaining = [e["rounds_remaining"] for e in rounds]
assert remaining == sorted(remaining, reverse=True), remaining
assert any(e["event"] == "region_done" for e in events)
assert events[-1]["event"] == "job_state"
assert events[-1]["status"] == "done", events[-1]
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs), "events out of order"
print(f"watch stream valid: {len(events)} events, {len(rounds)} rounds")
EOF
python -m repro history --port "$PORT" "$JOB_ID" | python -c '
import json, sys
history = json.load(sys.stdin)
assert [s["round"] for s in history] == [1, 2, 3], history
print("history op valid")'
python -m repro metrics --port "$PORT" --format prometheus > metrics.prom
python - <<'EOF'
import re
lines = open("metrics.prom").read().rstrip("\n").splitlines()
assert lines, "empty prometheus scrape"
sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$")
for line in lines:
    assert line.startswith("#") or sample.match(line), line
body = "\n".join(lines)
assert "repro_serve_rounds_total" in body, body[:400]
print(f"prometheus scrape valid: {len(lines)} lines")
EOF
python -m repro health --port "$PORT"
