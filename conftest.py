"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
resolve its build dependencies).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
