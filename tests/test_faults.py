"""Tests for the fault-injection subsystem (``repro.faults``)."""

import os

import pytest

from repro import faults
from repro.faults import (
    ENV_VAR,
    FaultError,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)


@pytest.fixture(autouse=True)
def clean_plan():
    """Every test starts and ends without an installed plan."""
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestParsing:
    def test_single_spec(self):
        plan = parse_fault_plan("kill-region-worker:round=2")
        assert plan.specs == [FaultSpec(kind="kill-region-worker", round=2)]

    def test_round_is_optional(self):
        plan = parse_fault_plan("kill-pool-worker")
        assert plan.specs == [FaultSpec(kind="kill-pool-worker", round=None)]

    def test_multiple_specs_semicolon_and_whitespace(self):
        plan = parse_fault_plan("drop-outcome:round=1; slow-oracle:ms=5")
        assert [s.kind for s in plan.specs] == ["drop-outcome", "slow-oracle"]
        assert plan.specs[1].ms == 5.0

    def test_describe_round_trips(self):
        text = "kill-region-worker:round=2;slow-oracle:ms=7.5;crash-run"
        assert parse_fault_plan(text).describe() == text

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault"):
            parse_fault_plan("explode-everything")

    def test_unknown_argument_rejected(self):
        with pytest.raises(FaultError, match="does not take"):
            parse_fault_plan("kill-pool-worker:ms=5")

    def test_malformed_argument_rejected(self):
        with pytest.raises(FaultError, match="malformed"):
            parse_fault_plan("kill-pool-worker:round")

    def test_rounds_are_one_based(self):
        with pytest.raises(FaultError, match="1-based"):
            parse_fault_plan("kill-pool-worker:round=0")

    def test_slow_oracle_requires_ms(self):
        with pytest.raises(FaultError, match="requires ms"):
            parse_fault_plan("slow-oracle")
        with pytest.raises(FaultError, match="non-negative"):
            parse_fault_plan("slow-oracle:ms=-1")

    def test_empty_plan_rejected(self):
        with pytest.raises(FaultError, match="empty"):
            parse_fault_plan("  ;  ")


class TestShould:
    def test_round_scoped_fault_fires_only_in_its_round(self):
        plan = parse_fault_plan("kill-region-worker:round=2")
        assert not plan.should("kill-region-worker", round_index=0)
        assert plan.should("kill-region-worker", round_index=1)  # 0-based 1 == round 2

    def test_one_shot_latch(self):
        plan = parse_fault_plan("kill-region-worker:round=1")
        assert plan.should("kill-region-worker", round_index=0)
        assert not plan.should("kill-region-worker", round_index=0)

    def test_unscoped_fault_fires_at_first_opportunity(self):
        plan = parse_fault_plan("kill-pool-worker")
        assert plan.should("kill-pool-worker", round_index=None)
        assert not plan.should("kill-pool-worker", round_index=None)

    def test_kind_mismatch_never_fires(self):
        plan = parse_fault_plan("kill-pool-worker")
        assert not plan.should("kill-region-worker", round_index=0)

    def test_firing_increments_counters(self):
        from repro import obs

        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            plan = parse_fault_plan("drop-outcome")
            assert plan.should("drop-outcome", round_index=0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["fault.injected"] == 1
        assert snapshot["counters"]["fault.injected.drop-outcome"] == 1


class TestDelay:
    def test_delay_ms(self):
        plan = parse_fault_plan("slow-oracle:ms=3")
        assert plan.delay_ms("slow-oracle") == 3.0
        assert plan.delay_ms("slow-oracle") == 3.0  # continuous, never latches

    def test_delay_defaults_to_zero(self):
        plan = parse_fault_plan("kill-pool-worker")
        assert plan.delay_ms("slow-oracle") == 0.0
        plan.sleep("slow-oracle")  # no-op, no error

    def test_delay_counted_once(self):
        from repro import obs

        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            plan = parse_fault_plan("slow-oracle:ms=0")
            for _ in range(5):
                plan.sleep("slow-oracle")
        assert registry.snapshot()["counters"]["fault.injected.slow-oracle"] == 1


class TestInstallation:
    def test_disabled_by_default(self):
        assert faults.get_plan() is None

    def test_install_plan_from_text(self):
        plan = faults.install_plan("kill-pool-worker:round=1")
        assert faults.get_plan() is plan
        assert os.environ[ENV_VAR] == "kill-pool-worker:round=1"

    def test_install_plan_object(self):
        plan = FaultPlan([FaultSpec(kind="drop-outcome", round=3)])
        assert faults.install_plan(plan) is plan
        assert os.environ[ENV_VAR] == "drop-outcome:round=3"

    def test_clear_plan_removes_env_mirror(self):
        faults.install_plan("kill-pool-worker")
        faults.clear_plan()
        assert faults.get_plan() is None
        assert ENV_VAR not in os.environ

    def test_env_round_trip(self, monkeypatch):
        """A fresh process (simulated by resetting the module globals)
        re-parses the plan from the environment -- the worker path."""
        faults.install_plan("slow-oracle:ms=4;kill-region-worker:round=2")
        monkeypatch.setattr(faults, "_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        plan = faults.get_plan()
        assert plan is not None
        assert plan.describe() == "slow-oracle:ms=4;kill-region-worker:round=2"

    def test_round_tracking(self):
        assert faults.current_round() is None
        faults.set_round(3)
        assert faults.current_round() == 3
        faults.clear_plan()
        assert faults.current_round() is None


class TestKillPoolWorker:
    def test_no_live_workers_is_a_noop(self):
        class FakeProcess:
            exitcode = 1
            pid = 12345

        class FakePool:
            _pool = [FakeProcess()]

        assert faults.kill_pool_worker(FakePool()) is None
        assert faults.kill_pool_worker(object()) is None  # no _pool at all
