"""Tests for the synthetic netlist / instance generators and the chip suite."""

import pytest

from repro.grid.graph import build_grid_graph
from repro.instances.chips import CHIP_SUITE, build_chip, chip_table
from repro.instances.generator import (
    DEFAULT_SIZE_DISTRIBUTION,
    NetlistGeneratorConfig,
    generate_netlist,
    generate_steiner_instances,
)


class TestNetlistGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetlistGeneratorConfig(num_nets=0)
        with pytest.raises(ValueError):
            NetlistGeneratorConfig(size_distribution=((1, 2, 0.5),))
        with pytest.raises(ValueError):
            NetlistGeneratorConfig(stage_probability=1.5)

    def test_generates_requested_nets(self, small_graph):
        netlist = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=25), seed=1)
        assert netlist.num_nets == 25
        netlist.validate_on_graph(small_graph)

    def test_deterministic_given_seed(self, small_graph):
        a = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=15), seed=3)
        b = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=15), seed=3)
        assert [n.num_sinks for n in a.nets] == [n.num_sinks for n in b.nets]
        assert a.clock_period == pytest.approx(b.clock_period)
        c = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=15), seed=4)
        assert [n.num_sinks for n in a.nets] != [n.num_sinks for n in c.nets]

    def test_stages_form_dag(self, small_graph):
        netlist = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=30), seed=2)
        for stage in netlist.stages:
            assert stage.to_net > stage.from_net
        netlist.timing_graph().topological_order()

    def test_clock_period_positive_and_overridable(self, small_graph):
        netlist = generate_netlist(small_graph, NetlistGeneratorConfig(num_nets=10), seed=5)
        assert netlist.clock_period > 0
        fixed = generate_netlist(
            small_graph,
            NetlistGeneratorConfig(num_nets=10, clock_period=123.0),
            seed=5,
        )
        assert fixed.clock_period == 123.0

    def test_size_distribution_respected(self):
        graph = build_grid_graph(12, 12, 4)
        config = NetlistGeneratorConfig(
            num_nets=200, size_distribution=((7, 7, 1.0),)
        )
        netlist = generate_netlist(graph, config, seed=1)
        assert all(net.num_sinks == 7 for net in netlist.nets)

    def test_default_distribution_sums_to_one(self):
        assert sum(p for _, _, p in DEFAULT_SIZE_DISTRIBUTION) == pytest.approx(1.0)


class TestSteinerInstanceGenerator:
    def test_counts_and_validity(self, small_graph):
        instances = generate_steiner_instances(small_graph, 12, dbif=1.0, seed=2)
        assert len(instances) == 12
        for inst in instances:
            assert inst.num_sinks >= 3
            assert len(inst.weights) == inst.num_sinks
            assert inst.bifurcation.dbif == 1.0

    def test_dbif_zero(self, small_graph):
        instances = generate_steiner_instances(small_graph, 3, dbif=0.0, seed=1)
        assert all(not inst.bifurcation.enabled for inst in instances)

    def test_costs_at_least_base(self, small_graph):
        instances = generate_steiner_instances(small_graph, 5, seed=3)
        base = small_graph.base_cost_array()
        for inst in instances:
            assert (inst.cost >= base - 1e-12).all()

    def test_deterministic(self, small_graph):
        a = generate_steiner_instances(small_graph, 6, seed=9)
        b = generate_steiner_instances(small_graph, 6, seed=9)
        assert [i.sinks for i in a] == [i.sinks for i in b]
        assert [i.weights for i in a] == [i.weights for i in b]


class TestChipSuite:
    def test_suite_matches_paper_structure(self):
        assert len(CHIP_SUITE) == 8
        assert [spec.name for spec in CHIP_SUITE] == [f"c{i}" for i in range(1, 9)]
        # Layer counts follow paper Table III: between 7 and 15.
        for spec in CHIP_SUITE:
            assert 7 <= spec.num_layers <= 15
        # Net counts increase from c1 to c8.
        nets = [spec.num_nets for spec in CHIP_SUITE]
        assert nets == sorted(nets)

    def test_build_chip(self):
        graph, netlist = build_chip(CHIP_SUITE[0])
        assert graph.num_layers == CHIP_SUITE[0].num_layers
        assert netlist.num_nets == CHIP_SUITE[0].num_nets
        netlist.validate_on_graph(graph)

    def test_scaled(self):
        spec = CHIP_SUITE[3].scaled(0.5)
        assert spec.num_nets == round(CHIP_SUITE[3].num_nets * 0.5)
        assert spec.scaled(0.0).num_nets == 10

    def test_chip_table_rows(self):
        rows = chip_table()
        assert len(rows) == 8
        assert rows[0]["chip"] == "c1"
        assert all({"chip", "nets", "layers", "grid"} <= set(row) for row in rows)
