"""Tests for the bifurcation penalty model (paper Eq. (2) and beta)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bifurcation import BifurcationModel


class TestValidation:
    def test_negative_dbif_rejected(self):
        with pytest.raises(ValueError):
            BifurcationModel(dbif=-1.0)

    def test_eta_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BifurcationModel(dbif=1.0, eta=0.7)
        with pytest.raises(ValueError):
            BifurcationModel(dbif=1.0, eta=-0.1)

    def test_disabled(self):
        model = BifurcationModel.disabled()
        assert not model.enabled
        assert model.beta(3.0, 4.0) == 0.0

    def test_with_dbif(self):
        model = BifurcationModel(dbif=1.0, eta=0.3).with_dbif(2.0)
        assert model.dbif == 2.0
        assert model.eta == 0.3


class TestSplit:
    def test_heavier_branch_gets_eta(self):
        model = BifurcationModel(dbif=1.0, eta=0.2)
        lx, ly = model.split(5.0, 1.0)
        assert lx == pytest.approx(0.2)
        assert ly == pytest.approx(0.8)

    def test_lighter_branch_gets_one_minus_eta(self):
        model = BifurcationModel(dbif=1.0, eta=0.2)
        lx, ly = model.split(1.0, 5.0)
        assert lx == pytest.approx(0.8)
        assert ly == pytest.approx(0.2)

    def test_tie_gets_even_split(self):
        model = BifurcationModel(dbif=1.0, eta=0.2)
        assert model.split(2.0, 2.0) == (0.5, 0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BifurcationModel(dbif=1.0).split(-1.0, 2.0)

    @given(st.floats(0, 100), st.floats(0, 100), st.floats(0, 0.5))
    def test_split_sums_to_one(self, wx, wy, eta):
        model = BifurcationModel(dbif=1.0, eta=eta)
        lx, ly = model.split(wx, wy)
        assert lx + ly == pytest.approx(1.0)
        assert min(lx, ly) >= eta - 1e-12

    @given(st.floats(0, 100), st.floats(0, 100), st.floats(0, 0.5))
    def test_split_is_optimal_for_weighted_objective(self, wx, wy, eta):
        """Eq. (2): the chosen split minimises wx*lx + wy*ly over the range."""
        model = BifurcationModel(dbif=1.0, eta=eta)
        lx, ly = model.split(wx, wy)
        chosen = wx * lx + wy * ly
        for candidate in (eta, 0.25, 0.5, 0.75, 1.0 - eta):
            if not eta <= candidate <= 1.0 - eta:
                continue
            assert chosen <= wx * candidate + wy * (1.0 - candidate) + 1e-9


class TestBeta:
    def test_beta_formula(self):
        model = BifurcationModel(dbif=2.0, eta=0.25)
        assert model.beta(4.0, 1.0) == pytest.approx(2.0 * (0.25 * 4.0 + 0.75 * 1.0))

    def test_beta_symmetric(self):
        model = BifurcationModel(dbif=2.0, eta=0.25)
        assert model.beta(3.0, 7.0) == pytest.approx(model.beta(7.0, 3.0))

    @given(st.floats(0, 50), st.floats(0, 50))
    def test_beta_equals_minimum_weighted_penalty(self, wa, wb):
        model = BifurcationModel(dbif=3.0, eta=0.3)
        la, lb = model.split(wa, wb)
        assert model.beta(wa, wb) == pytest.approx(
            model.dbif * (wa * la + wb * lb), rel=1e-9, abs=1e-9
        )

    def test_beta_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BifurcationModel(dbif=1.0).beta(-0.5, 1.0)


class TestBranchPenalties:
    def test_single_branch_no_penalty(self):
        model = BifurcationModel(dbif=2.0, eta=0.25)
        assert model.branch_penalties([3.0]) == [0.0]

    def test_disabled_model_all_zero(self):
        model = BifurcationModel.disabled()
        assert model.branch_penalties([1.0, 2.0, 3.0]) == [0.0, 0.0, 0.0]

    def test_two_branches_follow_split(self):
        model = BifurcationModel(dbif=4.0, eta=0.25)
        penalties = model.branch_penalties([5.0, 1.0])
        assert penalties[0] == pytest.approx(0.25 * 4.0)
        assert penalties[1] == pytest.approx(0.75 * 4.0)

    def test_three_branches_total_penalty(self):
        model = BifurcationModel(dbif=1.0, eta=0.5)
        penalties = model.branch_penalties([1.0, 1.0, 1.0])
        # Two stacked bifurcations with even splits: the first two merged
        # branches carry 0.5 + 0.5, the third 0.5.
        assert sum(penalties) == pytest.approx(2.5)
        assert len(penalties) == 3

    @given(st.lists(st.floats(0.0, 20.0), min_size=2, max_size=6))
    def test_every_branch_carries_at_least_eta(self, weights):
        model = BifurcationModel(dbif=2.0, eta=0.25)
        penalties = model.branch_penalties(weights)
        assert len(penalties) == len(weights)
        for p in penalties:
            assert p >= model.eta * model.dbif - 1e-9

    @given(st.lists(st.floats(0.0, 20.0), min_size=2, max_size=6))
    def test_total_penalty_counts_k_minus_one_bifurcations(self, weights):
        model = BifurcationModel(dbif=2.0, eta=0.5)
        penalties = model.branch_penalties(weights)
        # With eta = 0.5 every bifurcation splits evenly, so the sum of the
        # per-branch penalties equals (k - 1) * dbif only when counted with
        # multiplicity along the stacking; it is at least dbif * (k - 1) / 2.
        assert sum(penalties) >= model.dbif * (len(weights) - 1) / 2 - 1e-9
