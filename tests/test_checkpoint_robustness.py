"""Checkpoint robustness: corruption matrix, atomic-write crash simulation.

The loader's contract (see DESIGN.md, "Recovery contract"): a checkpoint
that cannot be restored -- truncated, corrupt, empty, wrong format, wrong
version -- always surfaces as :class:`CheckpointError` naming the path,
never as a raw ``JSONDecodeError``/``KeyError``/``ValueError`` out of the
decoding internals.  ``try_resume_router`` additionally degrades any such
error to a warned fresh start, which is what lets a restarted daemon
re-adopt a job whose checkpoint died with the machine.
"""

import json
import os

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.grid.graph import build_grid_graph
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_every_hook,
    load_checkpoint,
    resume_router,
    save_checkpoint,
    try_resume_router,
)


def make_router(num_rounds=2, seed=31):
    graph = build_grid_graph(10, 10, 3)
    netlist = generate_netlist(
        graph, NetlistGeneratorConfig(num_nets=10), seed=seed, name=f"ckpt{seed}"
    )
    return GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(num_rounds=num_rounds)
    )


@pytest.fixture
def checkpoint_path(tmp_path):
    router = make_router()
    router.run()
    path = str(tmp_path / "run.ckpt")
    save_checkpoint(router, path)
    return path


class TestCorruptionMatrix:
    """Every way a checkpoint file can be broken maps to CheckpointError."""

    def _assert_clear_error(self, path):
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert path in str(excinfo.value)

    def test_truncated_json(self, checkpoint_path):
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(checkpoint_path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        self._assert_clear_error(checkpoint_path)

    def test_truncated_state(self, checkpoint_path):
        """Valid JSON, valid header, missing state keys -- the case a raw
        KeyError used to leak from."""
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        del document["state"]["edge_prices"]
        with open(checkpoint_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        self._assert_clear_error(checkpoint_path)

    def test_mangled_array_encoding(self, checkpoint_path):
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["state"]["edge_prices"] = {"dtype": "float64", "shape": "oops"}
        with open(checkpoint_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        self._assert_clear_error(checkpoint_path)

    def test_garbage_bytes(self, tmp_path):
        path = str(tmp_path / "garbage.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"\x00\xff\xfe not json at all \x13\x37")
        self._assert_clear_error(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.ckpt")
        open(path, "w").close()
        self._assert_clear_error(path)

    def test_non_dict_document(self, tmp_path):
        path = str(tmp_path / "list.ckpt")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([1, 2, 3], handle)
        self._assert_clear_error(path)

    def test_wrong_format(self, tmp_path):
        path = str(tmp_path / "other.ckpt")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else", "version": 1}, handle)
        self._assert_clear_error(path)

    def test_wrong_version(self, checkpoint_path):
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["version"] = CHECKPOINT_VERSION + 1
        with open(checkpoint_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        self._assert_clear_error(checkpoint_path)

    def test_missing_file_is_not_an_error_on_resume(self, tmp_path):
        router = make_router()
        assert resume_router(router, str(tmp_path / "never-written.ckpt")) is False

    def test_intact_checkpoint_still_loads(self, checkpoint_path):
        checkpoint = load_checkpoint(checkpoint_path)
        assert checkpoint.rounds_completed == 2
        assert checkpoint.fingerprint["num_rounds"] == 2


class TestTryResume:
    """try_resume_router: corrupt -> warned fresh start, usable -> resume."""

    def test_corrupt_checkpoint_degrades_to_fresh_start(self, tmp_path, caplog):
        import logging

        path = str(tmp_path / "bad.ckpt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        router = make_router()
        with caplog.at_level(logging.WARNING, logger="repro.serve.checkpoint"):
            assert try_resume_router(router, path) is False
        assert router.rounds_completed == 0
        messages = [rec.getMessage() for rec in caplog.records]
        assert any("ignoring unusable checkpoint" in m for m in messages)

    def test_missing_checkpoint_is_silent(self, tmp_path, caplog):
        import logging

        router = make_router()
        with caplog.at_level(logging.WARNING, logger="repro.serve.checkpoint"):
            assert try_resume_router(router, str(tmp_path / "missing.ckpt")) is False
        assert caplog.records == []

    def test_usable_checkpoint_resumes(self, checkpoint_path):
        router = make_router()
        assert try_resume_router(router, checkpoint_path) is True
        assert router.rounds_completed == 2


class TestAtomicWriteCrash:
    """A crash between tmp write and rename leaves only the tmp file; the
    loader never looks at tmp files, so the run restarts (or resumes from
    the previous intact checkpoint)."""

    def test_orphaned_tmp_file_is_ignored(self, tmp_path):
        # Simulate the crash window: tmp present, final path absent.
        tmp_file = tmp_path / ".checkpoint-abc123"
        tmp_file.write_text('{"format": "repro-checkpoint", "version": 2, "trunc')
        final = str(tmp_path / "run.ckpt")
        router = make_router()
        assert resume_router(router, final) is False
        assert router.rounds_completed == 0

    def test_failed_save_leaves_previous_checkpoint_intact(
        self, checkpoint_path, monkeypatch
    ):
        """os.replace is the commit point: when the write before it fails,
        the previous checkpoint file is untouched and still loads."""
        before = load_checkpoint(checkpoint_path)
        router = make_router()
        router.run()

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(router, checkpoint_path)
        monkeypatch.undo()
        after = load_checkpoint(checkpoint_path)
        assert after.fingerprint == before.fingerprint
        assert after.rounds_completed == before.rounds_completed
        # ...and the aborted write left no tmp litter behind.
        directory = os.path.dirname(checkpoint_path)
        assert [f for f in os.listdir(directory) if f.startswith(".checkpoint-")] == []


class TestCheckpointEveryHook:
    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            checkpoint_every_hook(str(tmp_path / "x.ckpt"), 0)

    @pytest.mark.parametrize("every,expected_saves", [(1, 3), (2, 2), (3, 1), (5, 1)])
    def test_save_cadence(self, tmp_path, every, expected_saves):
        """Every N rounds, plus always the final round."""
        saves = []
        path = str(tmp_path / "cadence.ckpt")
        hook = checkpoint_every_hook(path, every)
        router = make_router(num_rounds=3)

        def counting_hook(router, round_index):
            hook(router, round_index)
            if os.path.exists(path):
                saves.append(load_checkpoint(path).rounds_completed)
                os.unlink(path)

        router.run(on_round_end=counting_hook)
        assert len(saves) == expected_saves
        assert saves[-1] == 3  # the final round is always checkpointed

    def test_document_format_is_versioned(self, checkpoint_path):
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["format"] == CHECKPOINT_FORMAT
        assert document["version"] == CHECKPOINT_VERSION
