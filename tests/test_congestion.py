"""Tests for congestion tracking and the ACE / ACE4 metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid.congestion import CongestionMap, ace, ace4


class TestAceMetric:
    def test_ace_of_uniform_congestion(self):
        values = [0.5] * 200
        assert ace(values, 1.0) == pytest.approx(50.0)
        assert ace4(values) == pytest.approx(50.0)

    def test_ace_picks_worst_edges(self):
        values = [0.1] * 99 + [1.0]
        assert ace(values, 1.0) == pytest.approx(100.0)
        assert ace(values, 100.0) == pytest.approx((99 * 0.1 + 1.0) / 100 * 100)

    def test_ace_empty(self):
        assert ace([], 1.0) == 0.0
        assert ace4([]) == 0.0

    def test_ace_invalid_percent(self):
        with pytest.raises(ValueError):
            ace([0.5], 0.0)
        with pytest.raises(ValueError):
            ace([0.5], 150.0)

    def test_ace4_is_average_of_four(self):
        values = list(np.linspace(0, 1, 1000))
        expected = np.mean([ace(values, p) for p in (0.5, 1.0, 2.0, 5.0)])
        assert ace4(values) == pytest.approx(expected)

    @given(st.lists(st.floats(0, 2), min_size=1, max_size=300))
    def test_ace_monotone_in_percentile(self, values):
        # A smaller (more critical) percentile can never have lower average
        # congestion than a larger one.
        assert ace(values, 0.5) >= ace(values, 5.0) - 1e-9


class TestCongestionMap:
    def test_usage_add_remove_roundtrip(self, small_graph):
        cmap = CongestionMap(small_graph)
        edges = [0, 1, 2, 2]
        cmap.add_usage(edges)
        assert cmap.usage[2] == pytest.approx(2 * small_graph.edge_base_cost[2])
        cmap.remove_usage(edges)
        assert np.all(cmap.usage == 0)

    def test_remove_more_than_added_raises(self, small_graph):
        cmap = CongestionMap(small_graph)
        cmap.add_usage([0])
        with pytest.raises(ValueError):
            cmap.remove_usage([0, 0])

    def test_explicit_amount(self, small_graph):
        cmap = CongestionMap(small_graph)
        cmap.add_usage([5], amount=3.0)
        assert cmap.usage[5] == pytest.approx(3.0)

    def test_reset(self, small_graph):
        cmap = CongestionMap(small_graph)
        cmap.add_usage(range(10))
        cmap.reset()
        assert np.all(cmap.usage == 0)

    def test_overflow(self, small_graph):
        cmap = CongestionMap(small_graph)
        assert cmap.overflow() == 0.0
        capacity = small_graph.edge_capacity[0]
        cmap.add_usage([0], amount=capacity + 2.5)
        assert cmap.overflow() == pytest.approx(2.5)

    def test_edge_costs_grow_with_congestion(self, small_graph):
        cmap = CongestionMap(small_graph)
        base = cmap.edge_costs()
        assert np.allclose(base, small_graph.edge_base_cost)
        cmap.add_usage([0], amount=small_graph.edge_capacity[0])
        priced = cmap.edge_costs()
        assert priced[0] > base[0]
        assert priced[1] == pytest.approx(base[1])

    def test_edge_costs_with_prices(self, small_graph):
        cmap = CongestionMap(small_graph)
        prices = np.ones(small_graph.num_edges)
        prices[3] = 5.0
        priced = cmap.edge_costs(prices)
        assert priced[3] == pytest.approx(5.0 * small_graph.edge_base_cost[3])

    def test_edge_costs_wrong_shape(self, small_graph):
        cmap = CongestionMap(small_graph)
        with pytest.raises(ValueError):
            cmap.edge_costs(np.ones(3))

    def test_wire_congestion_excludes_vias(self, small_graph):
        cmap = CongestionMap(small_graph)
        assert len(cmap.wire_congestion()) == int(np.sum(~small_graph.edge_is_via))

    def test_ace4_on_map(self, small_graph):
        cmap = CongestionMap(small_graph)
        assert cmap.ace4() == 0.0
        routing_edges = np.where(~small_graph.edge_is_via)[0][:50]
        for e in routing_edges:
            cmap.add_usage([e], amount=small_graph.edge_capacity[e])
        assert cmap.ace4() > 0.0
        assert cmap.ace(0.5) >= cmap.ace(5.0)
