"""Tests for the shard layer: coordinator parity, fast path, serve fan-out."""

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.engine.engine import EngineConfig
from repro.engine.rng import (
    derive_net_rng_for_name,
    net_name_key,
    net_stream_seed_for_name,
)
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.instances.chips import CHIP_SUITE, build_chip
from repro.router.metrics import PARITY_FIELDS, RoutingResult
from repro.router.netlist import Net, Netlist, Pin
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.session import RoutingSession
from repro.shard.coordinator import ShardCoordinator


def smoke_design(scale=0.5):
    return build_chip(CHIP_SUITE[0].scaled(scale))


def run_router(graph, netlist, **config):
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
    )
    return router, router.run()


def tree_key(trees):
    return [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges))
        for t in trees
    ]


class TestNameKeyedRng:
    def test_name_key_is_stable(self):
        assert net_name_key("n0") == net_name_key("n0")
        assert net_name_key("n0") != net_name_key("n1")

    def test_streams_differ_across_seeds_and_names(self):
        assert net_stream_seed_for_name(0, "a") != net_stream_seed_for_name(1, "a")
        a = derive_net_rng_for_name(0, "a").random()
        b = derive_net_rng_for_name(0, "b").random()
        assert a != b
        assert derive_net_rng_for_name(3, "x").random() == derive_net_rng_for_name(3, "x").random()

    def test_net_keeps_stream_inside_a_sub_netlist(self):
        """The property the shard layer and ECO memos rely on: a net's tree
        does not depend on which netlist slice it is routed in."""
        graph, netlist = smoke_design(0.4)
        full, _ = run_router(graph, netlist, num_rounds=1)
        sub_netlist = netlist.subset(list(range(netlist.num_nets - 1, -1, -1)))
        sub, _ = run_router(graph, sub_netlist, num_rounds=1)
        # Reversed subset: net i of `netlist` is net (N-1-i) of `sub_netlist`.
        full_tree = full.route_single_net(0)
        sub_tree = sub.route_single_net(netlist.num_nets - 1)
        assert (full_tree.root, full_tree.sinks, full_tree.edges) == (
            sub_tree.root, sub_tree.sinks, sub_tree.edges,
        )

    def test_duplicate_net_names_rejected(self):
        nets = [
            Net("dup", Pin("a:d", GridPoint(0, 0, 0)), [Pin("a:s", GridPoint(1, 1, 0))]),
            Net("dup", Pin("b:d", GridPoint(2, 2, 0)), [Pin("b:s", GridPoint(3, 3, 0))]),
        ]
        with pytest.raises(ValueError, match="duplicate net name"):
            Netlist("bad", nets)


class TestShardParity:
    def test_k4_parity_reproduces_unsharded_bit_for_bit(self):
        """The acceptance criterion: sharded K=4 parity routing equals the
        unsharded router exactly on every metric and every tree."""
        graph, netlist = smoke_design(0.5)
        plain_router, plain = run_router(
            graph, netlist, num_rounds=3, cost_refresh_interval=10**9
        )
        shard_router, sharded = run_router(
            graph, netlist, num_rounds=3, cost_refresh_interval=10**9,
            shards=4, shard_parity=True,
        )
        for field in PARITY_FIELDS:
            assert getattr(sharded, field) == getattr(plain, field), field
        assert tree_key(shard_router.trees) == tree_key(plain_router.trees)

    def test_parity_holds_for_strip_partitions(self):
        graph, netlist = smoke_design(0.4)
        _, plain = run_router(
            graph, netlist, num_rounds=2, cost_refresh_interval=10**9
        )
        _, sharded = run_router(
            graph, netlist, num_rounds=2, cost_refresh_interval=10**9,
            shards=2, shard_parity=True,
        )
        for field in PARITY_FIELDS:
            assert getattr(sharded, field) == getattr(plain, field), field


class TestShardFastPath:
    def test_fast_path_routes_every_net(self):
        graph, netlist = smoke_design(0.5)
        router, result = run_router(graph, netlist, num_rounds=2, shards=4)
        assert isinstance(router.engine, ShardCoordinator)
        assert all(tree is not None for tree in router.trees)
        assert result.num_nets == netlist.num_nets
        assert result.wire_length > 0
        stats = router.engine.stats
        assert stats.num_regions == 4
        assert stats.total_interior + stats.seam_nets == netlist.num_nets

    def test_fast_path_is_deterministic(self):
        graph, netlist = smoke_design(0.4)
        router_a, a = run_router(graph, netlist, num_rounds=2, shards=4)
        router_b, b = run_router(graph, netlist, num_rounds=2, shards=4)
        for field in PARITY_FIELDS:
            assert getattr(a, field) == getattr(b, field), field
        assert tree_key(router_a.trees) == tree_key(router_b.trees)

    def test_interior_trees_stay_inside_their_region(self):
        graph, netlist = smoke_design(0.5)
        router, _ = run_router(graph, netlist, num_rounds=2, shards=4)
        coordinator = router.engine
        for region_index, interior in enumerate(
            coordinator.classification.interior
        ):
            box = coordinator.partition.regions[region_index].box
            for net_index in interior:
                tree = router.trees[net_index]
                for edge in tree.edges:
                    for node in (int(graph.edge_u[edge]), int(graph.edge_v[edge])):
                        x, y = graph.node_planar(node)
                        assert box.xlo <= x <= box.xhi
                        assert box.ylo <= y <= box.yhi

    def test_all_seam_netlist_degenerates_to_global_routing(self):
        graph = build_grid_graph(16, 16, 4)
        nets = [
            Net(f"n{i}", Pin(f"n{i}:d", GridPoint(0, i, 0)),
                [Pin(f"n{i}:s0", GridPoint(15, i, 0))])
            for i in range(4)
        ]
        netlist = Netlist("spans", nets, [], clock_period=400.0)
        router, result = run_router(graph, netlist, num_rounds=2, shards=4)
        assert router.engine.stats.seam_nets == 4
        assert router.engine.stats.total_interior == 0
        assert all(tree is not None for tree in router.trees)
        _, plain = run_router(graph, netlist, num_rounds=2)
        # With no interior nets the shard flow is the plain flow.
        for field in PARITY_FIELDS:
            assert getattr(result, field) == getattr(plain, field), field

    def test_checkpoint_resume_through_shards(self, tmp_path):
        from repro.serve.checkpoint import resume_router, save_checkpoint

        graph, netlist = smoke_design(0.4)
        path = str(tmp_path / "shard.ckpt")
        uninterrupted, expected = run_router(
            graph, netlist, num_rounds=3, shards=4
        )

        def hook(router, round_index):
            if round_index == 1:
                save_checkpoint(router, path)

        first = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=3, shards=4),
        )
        first.run(on_round_end=hook)
        resumed = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=3, shards=4),
        )
        assert resume_router(resumed, path)
        assert resumed.rounds_completed == 2
        result = resumed.run()
        for field in PARITY_FIELDS:
            assert getattr(result, field) == getattr(expected, field), field
        assert tree_key(resumed.trees) == tree_key(uninterrupted.trees)

    def test_record_log_through_shards_covers_every_net(self):
        """The shard coordinator records replay memos: one per round, with a
        lookup signature and a post-round tree for every net of the design
        (interior, seam-scope, and global-seam alike)."""
        graph, netlist = smoke_design(0.3)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(
                num_rounds=2, shards=2,
                engine=EngineConfig(reroute_cache=True),
            ),
        )
        router.run(record_log=True)
        assert router.replay_log is not None
        assert len(router.replay_log) == 2
        for memo in router.replay_log:
            assert sorted(memo.signatures) == list(range(netlist.num_nets))
            assert sorted(memo.trees) == list(range(netlist.num_nets))

    def test_memo_rounds_without_cache_rejected_through_shards(self):
        graph, netlist = smoke_design(0.3)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=1, shards=2),
        )
        with pytest.raises(ValueError, match="reroute_cache"):
            router.run(record_log=True)
        router.engine.close()

    def test_sharded_session_routes_and_replays(self):
        """Sessions drive sharded engines: the PR-2 shards=1 guard is gone
        (the cross-backend battery lives in tests/test_session_shard.py)."""
        graph, netlist = smoke_design(0.3)
        session = RoutingSession(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=2, shards=2),
        )
        session.route()
        net = netlist.nets[0]
        sink = net.sinks[0]
        report = session.apply_eco(
            [{"op": "move_pin", "net": net.name, "pin": sink.name,
              "x": (sink.position.x + 1) % graph.nx, "y": sink.position.y,
              "layer": sink.position.layer}]
        )
        assert report.nets_reused > 0  # clean scopes replayed their memos
        assert report.nets_rerouted + report.nets_reused == 2 * session.num_nets

    def test_record_instances_covers_every_net(self):
        graph, netlist = smoke_design(0.4)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=2, shards=4, record_instances=True),
        )
        router.run()
        assert len(router.collected_instances) == netlist.num_nets
        recorded = sorted(instance.name for instance in router.collected_instances)
        expected = sorted(
            f"{netlist.name}/{net.name}" for net in netlist.nets
        )
        assert recorded == expected


class TestServeShardJobs:
    @pytest.fixture()
    def daemon(self):
        daemon = ServeDaemon(port=0, job_workers=2)
        daemon.start()
        yield daemon
        daemon.shutdown()

    def test_shard_job_fans_out_and_merges(self, daemon):
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_shard(chip="c1", net_scale=0.4, rounds=2, shards=4)
        record = client.wait(job_id, timeout=300)
        assert record["status"] == "done", record
        payload = record["result"]
        merged = RoutingResult.from_dict(payload["result"])
        assert merged.num_nets == 18  # c1 scaled 0.4
        assert merged.wire_length > 0
        assert payload["shards"] == 4
        assert payload["seam_nets"] + sum(payload["interior_nets"]) == 18
        child_wl = 0.0
        for child_id in payload["subjobs"]:
            child = client.result(child_id)
            assert child["status"] == "done"
            assert child["params"]["parent"] == job_id
            child_result = RoutingResult.from_dict(child["result"]["result"])
            assert child_result.num_nets > 0
            assert len(child["result"]["usage"]) > 0
            child_wl += child_result.wire_length
        # The merged wire length covers the children plus the seam pass.
        assert child_wl <= merged.wire_length

    def test_shard_job_on_worker_pool_matches_thread_path(self, daemon):
        """--shard-workers 2 routes the children on a process pool; the
        merged result is bit-identical to the dedicated-thread fan-out
        (children are pure functions of their params)."""
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        threaded_id = client.submit_shard(chip="c1", net_scale=0.4, rounds=2, shards=4)
        pooled_id = client.submit_shard(
            chip="c1", net_scale=0.4, rounds=2, shards=4, shard_workers=2
        )
        threaded = client.wait(threaded_id, timeout=300)
        pooled = client.wait(pooled_id, timeout=300)
        assert threaded["status"] == "done", threaded
        assert pooled["status"] == "done", pooled
        assert threaded["result"]["region_backend"] == "threads"
        assert pooled["result"]["shard_workers"] == 2
        # In sandboxes that forbid process pools the job degrades to the
        # thread path; either way the merged metrics must be identical.
        assert pooled["result"]["region_backend"] in ("process", "threads")
        a = RoutingResult.from_dict(threaded["result"]["result"])
        b = RoutingResult.from_dict(pooled["result"]["result"])
        for field in PARITY_FIELDS:
            assert getattr(a, field) == getattr(b, field), field
        for child_id in pooled["result"]["subjobs"]:
            child = client.result(child_id)
            assert child["status"] == "done"
            assert child["params"]["parent"] == pooled_id

    def test_shard_job_pool_with_process_backend_degrades_nested_pools(self, daemon):
        """backend=process children inside the region pool cannot start
        their own engine pools (daemonic workers); they must degrade to
        serial engines and the job must still finish."""
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_shard(
            chip="c1", net_scale=0.3, rounds=1, shards=4,
            shard_workers=2, backend="process",
        )
        record = client.wait(job_id, timeout=300)
        assert record["status"] == "done", record
        merged = RoutingResult.from_dict(record["result"]["result"])
        assert merged.wire_length > 0

    def test_shard_job_pool_child_failures_attributed_per_child(self, daemon):
        """A failing child on the pool path records its *own* error while a
        succeeding sibling keeps its real result, like on the thread path."""
        import threading

        base = {"chip": "c1", "net_scale": 0.3, "rounds": 1, "shards": 2,
                "emit_usage": True}
        good = daemon.store.submit("route", {**base, "shard_index": 0})
        bad = daemon.store.submit("route", {**base, "shard_index": 99})
        children = [good.job_id, bad.job_id]
        for child_id in children:
            daemon._cancel_flags[child_id] = threading.Event()
        with pytest.raises(RuntimeError, match="region pool"):
            daemon._run_children_on_pool(
                children, [good.params, bad.params], threading.Event(), 2
            )
        assert daemon.store.get(good.job_id).status == "done"
        failed = daemon.store.get(bad.job_id)
        assert failed.status == "failed"
        assert "IndexError" in (failed.error or "")

    def test_shard_job_rejects_sessions_and_k1(self, daemon):
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_shard(chip="c1", net_scale=0.3, rounds=1, shards=1)
        record = client.wait(job_id, timeout=120)
        assert record["status"] == "failed"
        assert "shards >= 2" in record["error"]

    def test_sharded_session_route_then_eco(self, daemon):
        """A route job may open a *sharded* session; eco jobs against it
        replay their memos through the shard coordinator."""
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_route(
            chip="c1", net_scale=0.3, rounds=2, shards=2, session="s1"
        )
        record = client.wait(job_id, timeout=300)
        assert record["status"] == "done", record
        assert record["result"]["session"] == "s1"
        eco_id = client.submit_eco(
            "s1",
            [{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 1, "y": 1}],
        )
        eco_record = client.wait(eco_id, timeout=300)
        assert eco_record["status"] == "done", eco_record
        payload = eco_record["result"]
        assert payload["touched"] == ["n0"]
        assert payload["nets_reused"] > 0  # clean scopes replayed

    def test_eco_job_reshards_session(self, daemon):
        """eco jobs accept shard overrides: the session's next flows run
        under the new decomposition/worker count."""
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_route(chip="c1", net_scale=0.3, rounds=1, session="s2")
        assert client.wait(job_id, timeout=300)["status"] == "done"
        eco_id = client.submit_eco(
            "s2",
            [{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 1, "y": 1}],
            shards=2, shard_workers=2,
        )
        record = client.wait(eco_id, timeout=300)
        assert record["status"] == "done", record
        with daemon._sessions_guard:
            session = daemon.sessions["s2"]
        assert session.config.shards == 2
        assert session.config.shard_workers == 2

    def test_failed_eco_does_not_reshard_session(self, daemon):
        """A failed ECO leaves the session exactly as it was -- including
        its decomposition: shard overrides of a failing job roll back."""
        host, port = daemon.address
        client = ServeClient(host, port)
        client.wait_until_up()
        job_id = client.submit_route(chip="c1", net_scale=0.3, rounds=1, session="s3")
        assert client.wait(job_id, timeout=300)["status"] == "done"
        eco_id = client.submit_eco(
            "s3",
            [{"op": "move_pin", "net": "no_such_net", "pin": "p", "x": 1, "y": 1}],
            shards=4,
        )
        record = client.wait(eco_id, timeout=300)
        assert record["status"] == "failed"
        assert "unknown net" in record["error"]
        with daemon._sessions_guard:
            session = daemon.sessions["s3"]
        assert session.config.shards == 1  # the override rolled back
