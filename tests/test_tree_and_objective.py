"""Tests for embedded trees, the objective evaluator and instances."""

import numpy as np
import pytest

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree, prune_dangling_branches
from repro.core.shortest_path import dijkstra, shortest_path_edges
from repro.core.tree import EmbeddedTree


def path_between(graph, a, b, lengths=None):
    """Shortest-path edge list between two nodes (test helper)."""
    lengths = lengths if lengths is not None else graph.base_cost_array()
    dist, parent = dijkstra(graph, lengths, {a: 0.0}, targets=[b])
    return shortest_path_edges(graph, parent, {a}, b)


class TestSteinerInstance:
    def test_basic_properties(self, instance_factory):
        inst = instance_factory(5, seed=1)
        assert inst.num_sinks == 5
        assert inst.num_terminals == 6
        assert inst.total_weight == pytest.approx(sum(inst.weights))
        assert len(inst.sink_points()) == 5
        assert inst.terminal_nodes()[0] == inst.root

    def test_mismatched_weights_rejected(self, small_graph):
        with pytest.raises(ValueError):
            SteinerInstance(
                small_graph, 0, [1, 2], [1.0],
                small_graph.base_cost_array(), small_graph.delay_array(),
            )

    def test_wrong_cost_length_rejected(self, small_graph):
        with pytest.raises(ValueError):
            SteinerInstance(
                small_graph, 0, [1], [1.0],
                np.ones(3), small_graph.delay_array(),
            )

    def test_negative_weight_rejected(self, small_graph):
        with pytest.raises(ValueError):
            SteinerInstance(
                small_graph, 0, [1], [-1.0],
                small_graph.base_cost_array(), small_graph.delay_array(),
            )

    def test_out_of_range_terminal_rejected(self, small_graph):
        with pytest.raises(ValueError):
            SteinerInstance(
                small_graph, small_graph.num_nodes, [1], [1.0],
                small_graph.base_cost_array(), small_graph.delay_array(),
            )

    def test_with_bifurcation_and_costs(self, instance_factory):
        inst = instance_factory(3)
        other = inst.with_bifurcation(BifurcationModel(dbif=5.0))
        assert other.bifurcation.dbif == 5.0
        assert other.sinks == inst.sinks
        scaled = inst.with_costs(inst.cost * 2)
        assert np.allclose(scaled.cost, inst.cost * 2)


class TestEmbeddedTree:
    def test_two_terminal_tree(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(4, 0, 0)
        edges = path_between(g, root, sink)
        tree = EmbeddedTree(g, root, (sink,), tuple(edges), "test")
        tree.validate()
        assert tree.wire_length() >= 4
        assert len(tree) == len(edges)
        arb = tree.arborescence()
        assert arb.root == root
        assert set(arb.path_to_root(sink)) == set(edges)

    def test_missing_sink_detected(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(4, 0, 0)
        other = g.node_index(0, 4, 0)
        edges = path_between(g, root, sink)
        tree = EmbeddedTree(g, root, (other,), tuple(edges), "test")
        with pytest.raises(ValueError):
            tree.validate()

    def test_cycle_detected(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        a = g.node_index(2, 0, 0)
        b = g.node_index(2, 2, 0)
        # Two different routes between root and b form a cycle.
        route1 = path_between(g, root, a) + path_between(g, a, b)
        route2 = path_between(g, root, g.node_index(0, 2, 0)) + path_between(
            g, g.node_index(0, 2, 0), b
        )
        tree = EmbeddedTree(g, root, (b,), tuple(set(route1 + route2)), "test")
        with pytest.raises(ValueError):
            tree.validate()

    def test_duplicate_edges_detected(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(1, 0, 0)
        edges = path_between(g, root, sink)
        tree = EmbeddedTree(g, root, (sink,), tuple(edges + edges), "test")
        with pytest.raises(ValueError):
            tree.validate()

    def test_empty_tree_root_only(self, small_graph):
        g = small_graph
        root = g.node_index(3, 3, 0)
        tree = EmbeddedTree(g, root, (root,), (), "test")
        tree.validate()
        assert tree.wire_length() == 0
        assert tree.via_count() == 0

    def test_via_count(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        above = g.node_index(0, 0, 2)
        edges = path_between(g, root, above)
        tree = EmbeddedTree(g, root, (above,), tuple(edges), "test")
        assert tree.via_count() == 2
        assert tree.wire_length() == 0

    def test_with_method(self, small_graph):
        g = small_graph
        tree = EmbeddedTree(g, 0, (0,), (), "A").with_method("B")
        assert tree.method == "B"

    def test_num_branch_nodes(self, small_graph):
        g = small_graph
        root = g.node_index(2, 2, 0)
        s1 = g.node_index(5, 2, 0)
        s2 = g.node_index(0, 2, 0)
        s3 = g.node_index(2, 5, 0)
        edges = (
            set(path_between(g, root, s1))
            | set(path_between(g, root, s2))
            | set(path_between(g, root, s3))
        )
        tree = EmbeddedTree(g, root, (s1, s2, s3), tuple(edges), "test")
        assert tree.num_branch_nodes() >= 1


class TestPruneDangling:
    def test_prunes_stub(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(3, 0, 0)
        stub_end = g.node_index(3, 3, 0)
        edges = path_between(g, root, sink) + path_between(g, sink, stub_end)
        tree = EmbeddedTree(g, root, (sink,), tuple(edges), "test")
        pruned = prune_dangling_branches(tree)
        pruned.validate()
        assert len(pruned) < len(tree)
        assert stub_end not in pruned.node_set()

    def test_keeps_valid_tree_unchanged(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(3, 0, 0)
        edges = path_between(g, root, sink)
        tree = EmbeddedTree(g, root, (sink,), tuple(edges), "test")
        assert prune_dangling_branches(tree) is tree


class TestObjective:
    def _line_instance(self, graph, dbif=0.0):
        root = graph.node_index(0, 0, 0)
        sink = graph.node_index(5, 0, 0)
        return SteinerInstance(
            graph, root, [sink], [2.0],
            graph.base_cost_array(), graph.delay_array(),
            BifurcationModel(dbif=dbif, eta=0.25),
        )

    def test_single_sink_objective(self, small_graph):
        inst = self._line_instance(small_graph)
        edges = path_between(small_graph, inst.root, inst.sinks[0], inst.cost)
        tree = EmbeddedTree(small_graph, inst.root, tuple(inst.sinks), tuple(edges), "t")
        result = evaluate_tree(inst, tree)
        expected_conn = sum(inst.cost[e] for e in edges)
        expected_delay = sum(inst.delay[e] for e in edges)
        assert result.connection_cost == pytest.approx(expected_conn)
        assert result.sink_delays[0] == pytest.approx(expected_delay)
        assert result.weighted_delay_cost == pytest.approx(2.0 * expected_delay)
        assert result.total == pytest.approx(expected_conn + 2.0 * expected_delay)
        assert result.num_bifurcations == 0

    def test_no_penalty_on_single_path(self, small_graph):
        inst = self._line_instance(small_graph, dbif=10.0)
        edges = path_between(small_graph, inst.root, inst.sinks[0], inst.cost)
        tree = EmbeddedTree(small_graph, inst.root, tuple(inst.sinks), tuple(edges), "t")
        result = evaluate_tree(inst, tree)
        # A path has no bifurcation, so dbif must not appear.
        assert result.sink_delays[0] == pytest.approx(
            sum(inst.delay[e] for e in edges)
        )

    def test_bifurcation_penalty_applied(self, small_graph):
        g = small_graph
        root = g.node_index(2, 2, 0)
        heavy = g.node_index(6, 2, 0)
        light = g.node_index(2, 6, 0)
        inst = SteinerInstance(
            g, root, [heavy, light], [3.0, 1.0],
            g.base_cost_array(), g.delay_array(),
            BifurcationModel(dbif=4.0, eta=0.25),
        )
        edges = set(path_between(g, root, heavy)) | set(path_between(g, root, light))
        tree = EmbeddedTree(g, root, (heavy, light), tuple(edges), "t")
        with_pen = evaluate_tree(inst, tree)
        without = evaluate_tree(inst.with_bifurcation(BifurcationModel.disabled()), tree)
        assert with_pen.num_bifurcations == 1
        # The heavy sink receives the small share eta, the light one 1 - eta.
        assert with_pen.sink_delays[0] - without.sink_delays[0] == pytest.approx(0.25 * 4.0)
        assert with_pen.sink_delays[1] - without.sink_delays[1] == pytest.approx(0.75 * 4.0)
        expected_extra = 3.0 * 0.25 * 4.0 + 1.0 * 0.75 * 4.0
        assert with_pen.total - without.total == pytest.approx(expected_extra)

    def test_sink_at_root_has_zero_delay(self, small_graph):
        g = small_graph
        root = g.node_index(1, 1, 0)
        far = g.node_index(5, 1, 0)
        inst = SteinerInstance(
            g, root, [root, far], [1.0, 1.0],
            g.base_cost_array(), g.delay_array(),
        )
        edges = path_between(g, root, far)
        tree = EmbeddedTree(g, root, (root, far), tuple(edges), "t")
        result = evaluate_tree(inst, tree)
        assert result.sink_delays[0] == 0.0
        assert result.sink_delays[1] > 0.0

    def test_unreachable_sink_raises(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(5, 5, 0)
        inst = SteinerInstance(
            g, root, [sink], [1.0], g.base_cost_array(), g.delay_array()
        )
        tree = EmbeddedTree(g, root, (sink,), (), "t")
        with pytest.raises(ValueError):
            evaluate_tree(inst, tree)

    def test_duplicate_sinks_same_node(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(4, 0, 0)
        inst = SteinerInstance(
            g, root, [sink, sink], [1.0, 2.0], g.base_cost_array(), g.delay_array()
        )
        edges = path_between(g, root, sink)
        tree = EmbeddedTree(g, root, (sink, sink), tuple(edges), "t")
        result = evaluate_tree(inst, tree)
        assert result.sink_delays[0] == pytest.approx(result.sink_delays[1])
        assert result.weighted_delay_cost == pytest.approx(3.0 * result.sink_delays[0])
