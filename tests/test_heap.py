"""Tests for the addressable and two-level heaps."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heap import AddressableBinaryHeap, TwoLevelHeap


class TestAddressableBinaryHeap:
    def test_empty_behaviour(self):
        heap = AddressableBinaryHeap()
        assert len(heap) == 0
        assert not heap
        assert heap.min_key() == float("inf")
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_push_pop_order(self):
        heap = AddressableBinaryHeap()
        for item, key in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            heap.push(item, key)
        assert heap.pop() == (1.0, "b")
        assert heap.pop() == (2.0, "c")
        assert heap.pop() == (3.0, "a")

    def test_decrease_key(self):
        heap = AddressableBinaryHeap()
        heap.push("x", 10.0)
        assert heap.push("x", 4.0) is True
        assert heap.key_of("x") == 4.0
        assert len(heap) == 1
        assert heap.pop() == (4.0, "x")

    def test_increase_key_ignored(self):
        heap = AddressableBinaryHeap()
        heap.push("x", 4.0)
        assert heap.push("x", 10.0) is False
        assert heap.key_of("x") == 4.0

    def test_contains_and_remove(self):
        heap = AddressableBinaryHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        assert 1 in heap
        heap.remove(1)
        assert 1 not in heap
        assert heap.pop() == (2.0, 2)
        heap.remove(42)  # removing a missing item is a no-op

    def test_peek_does_not_remove(self):
        heap = AddressableBinaryHeap()
        heap.push("a", 5.0)
        assert heap.peek() == (5.0, "a")
        assert len(heap) == 1

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_heap(self, operations):
        """Pushing with decrease-key then draining yields sorted unique items
        with their minimum keys."""
        heap = AddressableBinaryHeap()
        best = {}
        for item, key in operations:
            heap.push(item, key)
            if item not in best or key < best[item]:
                best[item] = key
        drained = []
        while heap:
            drained.append(heap.pop())
        assert sorted(k for k, _ in drained) == [k for k, _ in drained]
        assert {item: key for key, item in drained} == pytest.approx(best)

    def test_random_stress_against_heapq(self):
        rng = random.Random(7)
        heap = AddressableBinaryHeap()
        alive = {}
        for step in range(500):
            op = rng.random()
            if op < 0.6:
                item = rng.randrange(100)
                key = rng.uniform(0, 100)
                heap.push(item, key)
                if item not in alive or key < alive[item]:
                    alive[item] = key
            elif heap:
                key, item = heap.pop()
                assert key == pytest.approx(min(alive.values()))
                assert alive[item] == pytest.approx(key)
                del alive[item]
        while heap:
            key, item = heap.pop()
            assert alive.pop(item) == pytest.approx(key)
        assert not alive


class TestTwoLevelHeap:
    def test_empty(self):
        heap = TwoLevelHeap()
        assert not heap
        assert heap.min_key() == float("inf")
        with pytest.raises(IndexError):
            heap.pop()

    def test_global_extraction_order(self):
        heap = TwoLevelHeap()
        heap.push("s1", "a", 5.0)
        heap.push("s2", "b", 3.0)
        heap.push("s1", "c", 1.0)
        heap.push("s3", "d", 4.0)
        order = [heap.pop() for _ in range(4)]
        assert [key for key, _, _ in order] == [1.0, 3.0, 4.0, 5.0]
        assert order[0][1:] == ("s1", "c")

    def test_decrease_key_within_search(self):
        heap = TwoLevelHeap()
        heap.push("s", "x", 9.0)
        heap.push("s", "x", 2.0)
        assert len(heap) == 1
        assert heap.pop() == (2.0, "s", "x")

    def test_remove_search_drops_items(self):
        heap = TwoLevelHeap()
        heap.push("s1", "a", 1.0)
        heap.push("s2", "b", 2.0)
        heap.remove_search("s1")
        assert len(heap) == 1
        assert heap.pop() == (2.0, "s2", "b")

    def test_min_key_tracks_minimum(self):
        heap = TwoLevelHeap()
        heap.push("a", 1, 7.0)
        assert heap.min_key() == 7.0
        heap.push("b", 2, 3.0)
        assert heap.min_key() == 3.0
        heap.pop()
        assert heap.min_key() == 7.0

    def test_add_and_remove_unknown_search(self):
        heap = TwoLevelHeap()
        heap.add_search("s")
        heap.remove_search("unknown")
        assert not heap

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 30), st.floats(0, 100)),
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_extraction_matches_flat_heap(self, operations):
        """The two-level heap yields globally non-decreasing keys matching a
        flat decrease-key heap over (search, item) pairs."""
        two_level = TwoLevelHeap()
        flat = AddressableBinaryHeap()
        for search, item, key in operations:
            two_level.push(search, item, key)
            flat.push((search, item), key)
        keys_two_level = []
        while two_level:
            key, _, _ = two_level.pop()
            keys_two_level.append(key)
        keys_flat = []
        while flat:
            key, _ = flat.pop()
            keys_flat.append(key)
        assert keys_two_level == pytest.approx(keys_flat)
