"""Tests for the 3D routing graph."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.grid.layers import default_layer_stack


class TestIndexing:
    def test_node_index_roundtrip(self, small_graph):
        g = small_graph
        for x, y, z in [(0, 0, 0), (9, 9, 3), (3, 7, 2)]:
            idx = g.node_index(x, y, z)
            assert g.node_point(idx) == GridPoint(x, y, z)

    def test_node_index_out_of_range(self, small_graph):
        with pytest.raises(IndexError):
            small_graph.node_index(10, 0, 0)
        with pytest.raises(IndexError):
            small_graph.node_index(0, 0, 4)
        with pytest.raises(IndexError):
            small_graph.node_point(small_graph.num_nodes)

    def test_point_index(self, small_graph):
        p = GridPoint(2, 3, 1)
        assert small_graph.node_point(small_graph.point_index(p)) == p

    def test_node_planar_matches_node_point(self, small_graph):
        for idx in range(0, small_graph.num_nodes, 37):
            point = small_graph.node_point(idx)
            assert small_graph.node_planar(idx) == (point.x, point.y)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_node_count(self, nx, ny, nz):
        g = build_grid_graph(nx, ny, nz)
        assert g.num_nodes == nx * ny * nz


class TestStructure:
    def test_edge_counts(self):
        g = build_grid_graph(4, 5, 3)
        expected_routing = 0
        for layer in g.stack:
            per_wire = (4 - 1) * 5 if layer.direction == "H" else 4 * (5 - 1)
            expected_routing += per_wire * len(layer.wire_types)
        expected_vias = 4 * 5 * (3 - 1)
        assert g.num_edges == expected_routing + expected_vias

    def test_routing_edges_follow_layer_direction(self, small_graph):
        g = small_graph
        for e in range(0, g.num_edges, 13):
            edge = g.edge(e)
            if edge.is_via:
                continue
            pu, pv = g.node_point(edge.u), g.node_point(edge.v)
            assert pu.layer == pv.layer == edge.layer
            direction = g.stack[edge.layer].direction
            if direction == "H":
                assert abs(pu.x - pv.x) == 1 and pu.y == pv.y
            else:
                assert abs(pu.y - pv.y) == 1 and pu.x == pv.x

    def test_via_edges_connect_adjacent_layers(self, small_graph):
        g = small_graph
        for e in range(g.num_edges):
            edge = g.edge(e)
            if not edge.is_via:
                continue
            pu, pv = g.node_point(edge.u), g.node_point(edge.v)
            assert (pu.x, pu.y) == (pv.x, pv.y)
            assert abs(pu.layer - pv.layer) == 1
            assert edge.length == 0.0

    def test_adjacency_is_symmetric(self, small_graph):
        g = small_graph
        for node in range(0, g.num_nodes, 17):
            for edge, other in g.neighbors(node):
                assert g.other_endpoint(edge, node) == other
                assert any(e == edge for e, _ in g.neighbors(other))

    def test_other_endpoint_rejects_non_incident(self, small_graph):
        g = small_graph
        edge = g.edge(0)
        stranger = g.num_nodes - 1
        assert stranger not in (edge.u, edge.v)
        with pytest.raises(ValueError):
            g.other_endpoint(0, stranger)

    def test_graph_is_connected(self):
        g = build_grid_graph(5, 4, 3)
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for _, other in g.neighbors(node):
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        assert len(seen) == g.num_nodes

    def test_positive_delays_and_costs(self, small_graph):
        g = small_graph
        assert np.all(g.edge_delay > 0)
        assert np.all(g.edge_base_cost > 0)
        assert np.all(g.edge_capacity > 0)

    def test_arrays_are_copies(self, small_graph):
        g = small_graph
        costs = g.base_cost_array()
        costs[0] = 1e9
        assert g.edge_base_cost[0] != 1e9
        delays = g.delay_array()
        delays[0] = 1e9
        assert g.edge_delay[0] != 1e9

    def test_path_endpoints(self, small_graph):
        g = small_graph
        # Build a 3-edge path along layer 0 (horizontal).
        n0 = g.node_index(0, 0, 0)
        edges = []
        node = n0
        for _ in range(3):
            for e, other in g.neighbors(node):
                edge = g.edge(e)
                if not edge.is_via and g.node_point(other).x == g.node_point(node).x + 1 \
                        and edge.wire_type == 0 and g.node_point(other).layer == 0:
                    edges.append(e)
                    node = other
                    break
        ends = set(small_graph.path_endpoints(edges))
        assert ends == {n0, node}

    def test_path_endpoints_rejects_non_path(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.path_endpoints([])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            build_grid_graph(0, 5, 3)

    def test_custom_stack(self):
        stack = default_layer_stack(5)
        g = build_grid_graph(3, 3, stack=stack)
        assert g.num_layers == 5

    def test_parallel_edges_per_wire_type(self):
        g = build_grid_graph(4, 4, 6)
        # Layer 4 (index 4) is an intermediate layer with two wire types.
        u = g.node_index(0, 0, 4)
        layer_dir = g.stack[4].direction
        v = g.node_index(1, 0, 4) if layer_dir == "H" else g.node_index(0, 1, 4)
        connecting = [e for e, other in g.neighbors(u) if other == v]
        assert len(connecting) == len(g.stack[4].wire_types)
