"""Tests for the ECO stream generator and the soak endurance harness."""

import json
import os

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.grid.graph import build_grid_graph
from repro.instances.eco import parse_ops
from repro.instances.eco_stream import EcoStreamConfig, generate_eco_stream
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.router import GlobalRouterConfig
from repro.serve.session import RoutingSession
from repro.serve.soak import build_parser, run_soak

SWEEP = os.environ.get("REPRO_TEST_SWEEP") == "1"
SEEDS = (0, 1, 7) if SWEEP else (0,)


def make_design(seed=5, num_nets=12):
    graph = build_grid_graph(12, 12, 3)
    netlist = generate_netlist(
        graph, NetlistGeneratorConfig(num_nets=num_nets), seed=seed, name=f"eco{seed}"
    )
    return graph, netlist


class TestConfig:
    def test_rejects_nonpositive_ops(self):
        with pytest.raises(ValueError, match="ops"):
            EcoStreamConfig(ops=0)

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            EcoStreamConfig(batch_size=0)

    def test_rejects_nonpositive_max_new_sinks(self):
        with pytest.raises(ValueError, match="max_new_sinks"):
            EcoStreamConfig(max_new_sinks=-1)


class TestGenerator:
    def test_batch_shape(self):
        graph, netlist = make_design()
        batches = generate_eco_stream(
            netlist, graph, EcoStreamConfig(ops=23, batch_size=5, seed=0)
        )
        assert sum(len(batch) for batch in batches) == 23
        assert [len(batch) for batch in batches] == [5, 5, 5, 5, 3]

    def test_deterministic(self):
        graph, netlist = make_design()
        config = EcoStreamConfig(ops=40, batch_size=4, seed=9)
        first = generate_eco_stream(netlist, graph, config)
        second = generate_eco_stream(netlist, graph, config)
        assert first == second

    def test_different_seeds_differ(self):
        graph, netlist = make_design()
        one = generate_eco_stream(netlist, graph, EcoStreamConfig(ops=40, seed=1))
        two = generate_eco_stream(netlist, graph, EcoStreamConfig(ops=40, seed=2))
        assert one != two

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_batch_applies_cleanly(self, seed):
        """The generator's contract: replaying the stream never raises,
        even though later batches reference nets/sinks added earlier."""
        graph, netlist = make_design(seed=seed)
        batches = generate_eco_stream(
            netlist, graph, EcoStreamConfig(ops=60, batch_size=5, seed=seed)
        )
        session = RoutingSession(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(num_rounds=1)
        )
        session.route()
        for batch in batches:
            parse_ops(batch)  # wire-format dicts are well-formed
            session.apply_eco(batch)

    def test_covers_all_op_kinds(self):
        graph, netlist = make_design()
        batches = generate_eco_stream(
            netlist, graph, EcoStreamConfig(ops=300, batch_size=5, seed=3)
        )
        kinds = {op["op"] for batch in batches for op in batch}
        assert kinds == {
            "move_pin",
            "add_sink",
            "remove_sink",
            "add_net",
            "remove_net",
            "reweight_sink",
        }

    def test_input_netlist_not_mutated(self):
        graph, netlist = make_design()
        names_before = [net.name for net in netlist.nets]
        sinks_before = {net.name: len(net.sinks) for net in netlist.nets}
        generate_eco_stream(netlist, graph, EcoStreamConfig(ops=80, seed=4))
        assert [net.name for net in netlist.nets] == names_before
        assert {net.name: len(net.sinks) for net in netlist.nets} == sinks_before


class TestSoakHarness:
    @pytest.mark.slow
    def test_soak_smoke_parity(self, tmp_path):
        """A tiny faulted soak run reaches parity with its clean twin."""
        args = build_parser().parse_args(
            [
                "--chip", "c1",
                "--net-scale", "0.08",
                "--rounds", "2",
                "--ops", "10",
                "--batch-size", "5",
                "--shards", "2",
                "--shard-workers", "2",
                "--inject", "kill-region-worker:round=2",
                "--inject", "slow-oracle:ms=1",
            ]
        )
        report = run_soak(args)
        assert report["parity"] is True, report["mismatches"]
        assert report["mismatches"] == []
        assert report["flows"] == 1 + report["batches"]
        assert report["fault_counters"].get("fault.injected", 0) >= 1
        # The report is the CLI's stdout document -- it must be JSON-clean.
        json.dumps(report)
