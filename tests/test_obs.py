"""Observability layer: tracing, metrics registry, progress streaming.

Covers the ``repro.obs`` package end to end: the registry data model,
the span/tracer lifecycle with its pinned on-disk schema, the
cross-backend counter-equality contract (serial, region pool, degraded
fallback all report identical deterministic counters), bit-identity of
routing results with tracing on versus off, JobStore duration/progress
bookkeeping, the daemon ``metrics`` op, and the trace-summarize CLI.
"""

import json
import logging
import multiprocessing

import pytest

from repro import obs
from repro.core.cost_distance import CostDistanceSolver
from repro.grid.graph import build_grid_graph
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.obs.summary import load_trace, main as summary_main, render, summarize
from repro.obs.trace import TRACE_FORMAT, TRACE_SCHEMA_VERSION
from repro.router.metrics import PARITY_FIELDS
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.daemon import ServeDaemon
from repro.serve.jobs import JobState, JobStore

#: Counters that must be identical across every execution backend; timing
#: histograms and walltime-derived values are deliberately excluded.
DETERMINISTIC_COUNTERS = (
    "engine.oracle_calls",
    "engine.nets_cached",
    "engine.nets_replayed",
    "astar.pops",
    "cd.labels",
    "cd.merges",
    "cd.solves",
)


def small_design(seed=21, num_nets=14, nx=10, ny=10, layers=4):
    graph = build_grid_graph(nx, ny, layers)
    netlist = generate_netlist(
        graph,
        NetlistGeneratorConfig(num_nets=num_nets),
        seed=seed,
        name=f"obs{seed}",
    )
    return graph, netlist


def route(graph, netlist, **config):
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
    )
    return router, router.run()


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["total"] == 4.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_snapshot_is_plain_and_detached(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap["counters"]["a"] == 1  # not a live view
        # Must round-trip through JSON (it crosses process boundaries).
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_folds_counters_and_histograms(self):
        left = obs.MetricsRegistry()
        right = obs.MetricsRegistry()
        left.inc("a", 2)
        right.inc("a", 3)
        right.inc("b")
        left.observe("h", 1.0)
        right.observe("h", 5.0)
        right.set_gauge("g", 7)
        left.merge(right.snapshot())
        snap = left.snapshot()
        assert snap["counters"] == {"a": 5, "b": 1}
        assert snap["gauges"]["g"] == 7
        hist = snap["histograms"]["h"]
        assert (hist["count"], hist["min"], hist["max"]) == (2, 1.0, 5.0)

    def test_use_registry_scopes_module_level_increments(self):
        scoped = obs.MetricsRegistry()
        before = obs.active_registry()
        with obs.use_registry(scoped):
            assert obs.active_registry() is scoped
            obs.inc("scoped.counter")
        assert obs.active_registry() is before
        assert scoped.counter("scoped.counter") == 1
        assert obs.active_registry().counter("scoped.counter") == 0

    def test_reset_clears_everything(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestSpans:
    def test_disabled_tracing_returns_shared_noop_span(self):
        assert obs.get_tracer() is None
        a = obs.span("round", round=0)
        b = obs.span("batch")
        assert a is obs.NOOP_SPAN
        assert a is b  # one shared object, zero allocation on the hot path
        with a as span:
            span.set(anything="goes")  # must be a cheap no-op

    def test_span_tree_and_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure_tracing(str(path))
        try:
            with obs.span("round", round=0):
                with obs.span("region", key="r0"):
                    with obs.span("batch", nets=3) as batch:
                        batch.set(routed=3)
                obs.event("net", net="n1", seconds=0.25, sinks=2)
        finally:
            obs.close_tracing({"counters": {"x": 1}, "gauges": {}, "histograms": {}})
        records = load_trace(str(path))
        header = records[0]
        assert header["format"] == TRACE_FORMAT
        assert header["schema"] == TRACE_SCHEMA_VERSION
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert set(spans) == {"round", "region", "batch"}
        assert spans["round"]["parent_id"] is None
        assert spans["region"]["parent_id"] == spans["round"]["span_id"]
        assert spans["batch"]["parent_id"] == spans["region"]["span_id"]
        assert spans["batch"]["attrs"] == {"nets": 3, "routed": 3}
        events = [r for r in records if r["type"] == "event"]
        assert events[0]["name"] == "net"
        assert events[0]["parent_id"] == spans["round"]["span_id"]
        assert records[-1]["type"] == "trace_end"
        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics[0]["snapshot"]["counters"] == {"x": 1}

    def test_close_tracing_is_idempotent(self, tmp_path):
        obs.configure_tracing(str(tmp_path / "t.jsonl"))
        obs.close_tracing(None)
        obs.close_tracing(None)
        assert obs.get_tracer() is None


class TestTracedRouting:
    def test_traced_sharded_route_reconstructs_span_tree(self, tmp_path):
        path = tmp_path / "route.jsonl"
        graph, netlist = small_design()
        obs.configure_tracing(str(path))
        try:
            route(graph, netlist, num_rounds=2, shards=2)
        finally:
            obs.close_tracing(obs.active_registry().snapshot())
        records = load_trace(str(path))
        spans = [r for r in records if r["type"] == "span"]
        by_id = {r["span_id"]: r for r in spans}
        rounds = [r for r in spans if r["name"] == "round"]
        regions = [r for r in spans if r["name"] == "region"]
        batches = [r for r in spans if r["name"] == "batch"]
        assert len(rounds) == 2
        assert regions and batches
        for region in regions:
            assert by_id[region["parent_id"]]["name"] == "round"
        for batch in batches:
            assert by_id[batch["parent_id"]]["name"] in ("region", "seam", "seam_scope")
        assert any(r["name"] == "sta" for r in spans)
        assert records[-1]["type"] == "trace_end"

    def test_tracing_off_is_bit_identical_to_tracing_on(self, tmp_path):
        graph, netlist = small_design(seed=33)
        _, plain = route(graph, netlist, num_rounds=2, shards=2)
        obs.configure_tracing(str(tmp_path / "t.jsonl"))
        try:
            traced_router, traced = route(graph, netlist, num_rounds=2, shards=2)
        finally:
            obs.close_tracing(None)
        for field in PARITY_FIELDS:
            assert getattr(plain, field) == getattr(traced, field), field


class TestCrossBackendCounters:
    def counters_for(self, run):
        reg = obs.MetricsRegistry()
        with obs.use_registry(reg):
            run()
        return {name: reg.counter(name) for name in DETERMINISTIC_COUNTERS}

    def test_serial_pooled_and_degraded_report_identical_counters(self, monkeypatch):
        graph, netlist = small_design(seed=44, num_nets=16)

        serial = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2)
        )
        pooled = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2, shard_workers=2)
        )
        assert serial == pooled
        assert serial["engine.oracle_calls"] > 0
        assert serial["astar.pops"] > 0
        assert serial["cd.solves"] > 0

        def broken_get_context(*args, **kwargs):
            raise OSError("no pools here")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        degraded = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2, shard_workers=2)
        )
        assert serial == degraded


class TestJobStoreDurations:
    def test_duration_and_progress_lifecycle(self):
        store = JobStore()
        job = store.submit("route", {"chip": "c1"})
        assert store.get(job.job_id).duration_seconds is None
        store.mark_running(job.job_id)
        store.update_progress(
            job.job_id, {"round": 1, "rounds_total": 3, "overflow": 0.0}
        )
        record = store.snapshot(job.job_id)
        assert record["status"] == JobState.RUNNING
        assert record["progress"]["round"] == 1
        store.mark_done(job.job_id, {"ok": True})
        done = store.snapshot(job.job_id)
        assert isinstance(done["duration_seconds"], float)
        assert done["duration_seconds"] >= 0.0
        assert done["progress"]["round"] == 1  # last progress is retained

    def test_progress_after_terminal_state_is_dropped(self):
        store = JobStore()
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        store.mark_cancelled(job.job_id)
        store.update_progress(job.job_id, {"round": 9})
        record = store.snapshot(job.job_id)
        assert record["status"] == JobState.CANCELLED
        assert record.get("progress") in (None, {})

    def test_duration_round_trips_through_persistence(self, tmp_path):
        store = JobStore(state_dir=str(tmp_path))
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"ok": True})
        reloaded = JobStore(state_dir=str(tmp_path))
        record = reloaded.snapshot(job.job_id)
        assert isinstance(record["duration_seconds"], float)


class TestServeMetricsOp:
    def test_metrics_op_returns_registry_snapshot(self):
        daemon = ServeDaemon(port=0, job_workers=1)
        daemon.start()
        try:
            obs.default_registry().inc("test.metrics_op")
            response = daemon.handle({"op": "metrics"})
            assert response["ok"] is True
            snapshot = response["metrics"]
            assert snapshot["counters"]["test.metrics_op"] >= 1
        finally:
            daemon.shutdown()


class TestSummarizeCli:
    def write_trace(self, path):
        obs.configure_tracing(str(path))
        try:
            with obs.span("round", round=0):
                with obs.span("batch", nets=2):
                    pass
                obs.event("net", net="slowpoke", seconds=0.5, sinks=3)
                obs.event("net", net="quick", seconds=0.1, sinks=1)
        finally:
            obs.close_tracing({"counters": {"c": 2}, "gauges": {}, "histograms": {}})

    def test_summarize_and_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        summary = summarize(load_trace(str(path)), top=1)
        assert summary["complete"] is True
        assert summary["phases"]["round"]["count"] == 1
        assert summary["slow_nets"][0]["net"] == "slowpoke"
        assert len(summary["slow_nets"]) == 1
        text = render(summary)
        assert "slowpoke" in text
        assert "c = 2" in text

    def test_cli_main_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        assert summary_main(["summarize", str(path)]) == 0
        assert "round" in capsys.readouterr().out
        assert summary_main(["summarize", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] == 2

    def test_cli_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "other"}\n')
        with pytest.raises(SystemExit):
            summary_main(["summarize", str(bogus)])

    def test_loader_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"type": "trace_header", "format": TRACE_FORMAT, "schema": 999}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))


class TestPoolDegradationLogging:
    def test_degradation_emits_trace_event_and_counter(self, tmp_path, monkeypatch, caplog):
        graph, netlist = small_design(seed=55)

        def broken_get_context(*args, **kwargs):
            raise OSError("no pools here")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        path = tmp_path / "t.jsonl"
        reg = obs.MetricsRegistry()
        obs.configure_tracing(str(path))
        try:
            with obs.use_registry(reg):
                with caplog.at_level(logging.WARNING, logger="repro.obs.pool"):
                    route(graph, netlist, num_rounds=1, shards=2, shard_workers=2)
        finally:
            obs.close_tracing(None)
        assert reg.counter("pool.degraded.region-process") == 1
        records = load_trace(str(path))
        degraded = [
            r
            for r in records
            if r["type"] == "event" and r["name"] == "pool_degraded"
        ]
        assert len(degraded) == 1
        assert degraded[0]["attrs"]["backend"] == "region-process"
        assert degraded[0]["attrs"]["reason"] == "OSError"
        assert any(
            rec.name == "repro.obs.pool" and rec.levelno == logging.WARNING
            for rec in caplog.records
        )
