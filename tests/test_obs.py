"""Observability layer: tracing, metrics registry, live telemetry.

Covers the ``repro.obs`` package end to end: the registry data model
(including quantile summaries), the span/tracer lifecycle with its
pinned on-disk schema, the cross-backend counter-equality contract
(serial, region pool, degraded fallback all report identical
deterministic counters), bit-identity of routing results with tracing
on versus off, the per-round :class:`RoundSeries`, the :class:`EventBus`
back-pressure contract, JobStore duration/progress/history bookkeeping,
the daemon ``metrics``/``history``/``health``/``watch`` ops, the
Prometheus and Chrome-trace exporters, and the trace-summarize CLI.
"""

import json
import logging
import multiprocessing
import re
import threading

import pytest

from repro import obs
from repro.core.cost_distance import CostDistanceSolver
from repro.grid.graph import build_grid_graph
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.obs.summary import load_trace, main as summary_main, render, summarize
from repro.obs.trace import TRACE_FORMAT, TRACE_SCHEMA_VERSION
from repro.router.metrics import PARITY_FIELDS, RoutingResult
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.jobs import HISTORY_LIMIT, JobState, JobStore

#: Counters that must be identical across every execution backend; timing
#: histograms and walltime-derived values are deliberately excluded.
DETERMINISTIC_COUNTERS = (
    "engine.oracle_calls",
    "engine.nets_cached",
    "engine.nets_replayed",
    "astar.pops",
    "cd.labels",
    "cd.merges",
    "cd.solves",
)


def small_design(seed=21, num_nets=14, nx=10, ny=10, layers=4):
    graph = build_grid_graph(nx, ny, layers)
    netlist = generate_netlist(
        graph,
        NetlistGeneratorConfig(num_nets=num_nets),
        seed=seed,
        name=f"obs{seed}",
    )
    return graph, netlist


def route(graph, netlist, **config):
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
    )
    return router, router.run()


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["total"] == 4.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_snapshot_is_plain_and_detached(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap["counters"]["a"] == 1  # not a live view
        # Must round-trip through JSON (it crosses process boundaries).
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_folds_counters_and_histograms(self):
        left = obs.MetricsRegistry()
        right = obs.MetricsRegistry()
        left.inc("a", 2)
        right.inc("a", 3)
        right.inc("b")
        left.observe("h", 1.0)
        right.observe("h", 5.0)
        right.set_gauge("g", 7)
        left.merge(right.snapshot())
        snap = left.snapshot()
        assert snap["counters"] == {"a": 5, "b": 1}
        assert snap["gauges"]["g"] == 7
        hist = snap["histograms"]["h"]
        assert (hist["count"], hist["min"], hist["max"]) == (2, 1.0, 5.0)

    def test_use_registry_scopes_module_level_increments(self):
        scoped = obs.MetricsRegistry()
        before = obs.active_registry()
        with obs.use_registry(scoped):
            assert obs.active_registry() is scoped
            obs.inc("scoped.counter")
        assert obs.active_registry() is before
        assert scoped.counter("scoped.counter") == 1
        assert obs.active_registry().counter("scoped.counter") == 0

    def test_reset_clears_everything(self):
        reg = obs.MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestSpans:
    def test_disabled_tracing_returns_shared_noop_span(self):
        assert obs.get_tracer() is None
        a = obs.span("round", round=0)
        b = obs.span("batch")
        assert a is obs.NOOP_SPAN
        assert a is b  # one shared object, zero allocation on the hot path
        with a as span:
            span.set(anything="goes")  # must be a cheap no-op

    def test_span_tree_and_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure_tracing(str(path))
        try:
            with obs.span("round", round=0):
                with obs.span("region", key="r0"):
                    with obs.span("batch", nets=3) as batch:
                        batch.set(routed=3)
                obs.event("net", net="n1", seconds=0.25, sinks=2)
        finally:
            obs.close_tracing({"counters": {"x": 1}, "gauges": {}, "histograms": {}})
        records = load_trace(str(path))
        header = records[0]
        assert header["format"] == TRACE_FORMAT
        assert header["schema"] == TRACE_SCHEMA_VERSION
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert set(spans) == {"round", "region", "batch"}
        assert spans["round"]["parent_id"] is None
        assert spans["region"]["parent_id"] == spans["round"]["span_id"]
        assert spans["batch"]["parent_id"] == spans["region"]["span_id"]
        assert spans["batch"]["attrs"] == {"nets": 3, "routed": 3}
        events = [r for r in records if r["type"] == "event"]
        assert events[0]["name"] == "net"
        assert events[0]["parent_id"] == spans["round"]["span_id"]
        assert records[-1]["type"] == "trace_end"
        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics[0]["snapshot"]["counters"] == {"x": 1}

    def test_close_tracing_is_idempotent(self, tmp_path):
        obs.configure_tracing(str(tmp_path / "t.jsonl"))
        obs.close_tracing(None)
        obs.close_tracing(None)
        assert obs.get_tracer() is None


class TestTracedRouting:
    def test_traced_sharded_route_reconstructs_span_tree(self, tmp_path):
        path = tmp_path / "route.jsonl"
        graph, netlist = small_design()
        obs.configure_tracing(str(path))
        try:
            route(graph, netlist, num_rounds=2, shards=2)
        finally:
            obs.close_tracing(obs.active_registry().snapshot())
        records = load_trace(str(path))
        spans = [r for r in records if r["type"] == "span"]
        by_id = {r["span_id"]: r for r in spans}
        rounds = [r for r in spans if r["name"] == "round"]
        regions = [r for r in spans if r["name"] == "region"]
        batches = [r for r in spans if r["name"] == "batch"]
        assert len(rounds) == 2
        assert regions and batches
        for region in regions:
            assert by_id[region["parent_id"]]["name"] == "round"
        for batch in batches:
            assert by_id[batch["parent_id"]]["name"] in ("region", "seam", "seam_scope")
        assert any(r["name"] == "sta" for r in spans)
        assert records[-1]["type"] == "trace_end"

    def test_tracing_off_is_bit_identical_to_tracing_on(self, tmp_path):
        graph, netlist = small_design(seed=33)
        _, plain = route(graph, netlist, num_rounds=2, shards=2)
        obs.configure_tracing(str(tmp_path / "t.jsonl"))
        try:
            traced_router, traced = route(graph, netlist, num_rounds=2, shards=2)
        finally:
            obs.close_tracing(None)
        for field in PARITY_FIELDS:
            assert getattr(plain, field) == getattr(traced, field), field


class TestCrossBackendCounters:
    def counters_for(self, run):
        reg = obs.MetricsRegistry()
        with obs.use_registry(reg):
            run()
        return {name: reg.counter(name) for name in DETERMINISTIC_COUNTERS}

    def test_serial_pooled_and_degraded_report_identical_counters(self, monkeypatch):
        graph, netlist = small_design(seed=44, num_nets=16)

        serial = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2)
        )
        pooled = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2, shard_workers=2)
        )
        assert serial == pooled
        assert serial["engine.oracle_calls"] > 0
        assert serial["astar.pops"] > 0
        assert serial["cd.solves"] > 0

        def broken_get_context(*args, **kwargs):
            raise OSError("no pools here")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        degraded = self.counters_for(
            lambda: route(graph, netlist, num_rounds=2, shards=2, shard_workers=2)
        )
        assert serial == degraded


class TestJobStoreDurations:
    def test_duration_and_progress_lifecycle(self):
        store = JobStore()
        job = store.submit("route", {"chip": "c1"})
        assert store.get(job.job_id).duration_seconds is None
        store.mark_running(job.job_id)
        store.update_progress(
            job.job_id, {"round": 1, "rounds_total": 3, "overflow": 0.0}
        )
        record = store.snapshot(job.job_id)
        assert record["status"] == JobState.RUNNING
        assert record["progress"]["round"] == 1
        store.mark_done(job.job_id, {"ok": True})
        done = store.snapshot(job.job_id)
        assert isinstance(done["duration_seconds"], float)
        assert done["duration_seconds"] >= 0.0
        assert done["progress"]["round"] == 1  # last progress is retained

    def test_progress_after_terminal_state_is_dropped(self):
        store = JobStore()
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        store.mark_cancelled(job.job_id)
        store.update_progress(job.job_id, {"round": 9})
        record = store.snapshot(job.job_id)
        assert record["status"] == JobState.CANCELLED
        assert record.get("progress") in (None, {})

    def test_duration_round_trips_through_persistence(self, tmp_path):
        store = JobStore(state_dir=str(tmp_path))
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"ok": True})
        reloaded = JobStore(state_dir=str(tmp_path))
        record = reloaded.snapshot(job.job_id)
        assert isinstance(record["duration_seconds"], float)


class TestServeMetricsOp:
    def test_metrics_op_returns_registry_snapshot(self):
        daemon = ServeDaemon(port=0, job_workers=1)
        daemon.start()
        try:
            obs.default_registry().inc("test.metrics_op")
            response = daemon.handle({"op": "metrics"})
            assert response["ok"] is True
            snapshot = response["metrics"]
            assert snapshot["counters"]["test.metrics_op"] >= 1
        finally:
            daemon.shutdown()


class TestSummarizeCli:
    def write_trace(self, path):
        obs.configure_tracing(str(path))
        try:
            with obs.span("round", round=0):
                with obs.span("batch", nets=2):
                    pass
                obs.event("net", net="slowpoke", seconds=0.5, sinks=3)
                obs.event("net", net="quick", seconds=0.1, sinks=1)
        finally:
            obs.close_tracing({"counters": {"c": 2}, "gauges": {}, "histograms": {}})

    def test_summarize_and_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        summary = summarize(load_trace(str(path)), top=1)
        assert summary["complete"] is True
        assert summary["phases"]["round"]["count"] == 1
        assert summary["slow_nets"][0]["net"] == "slowpoke"
        assert len(summary["slow_nets"]) == 1
        text = render(summary)
        assert "slowpoke" in text
        assert "c = 2" in text

    def test_cli_main_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        assert summary_main(["summarize", str(path)]) == 0
        assert "round" in capsys.readouterr().out
        assert summary_main(["summarize", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] == 2

    def test_cli_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "other"}\n')
        with pytest.raises(SystemExit):
            summary_main(["summarize", str(bogus)])

    def test_loader_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"type": "trace_header", "format": TRACE_FORMAT, "schema": 999}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))


class TestPoolDegradationLogging:
    def test_degradation_emits_trace_event_and_counter(self, tmp_path, monkeypatch, caplog):
        graph, netlist = small_design(seed=55)

        def broken_get_context(*args, **kwargs):
            raise OSError("no pools here")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        path = tmp_path / "t.jsonl"
        reg = obs.MetricsRegistry()
        obs.configure_tracing(str(path))
        try:
            with obs.use_registry(reg):
                with caplog.at_level(logging.WARNING, logger="repro.obs.pool"):
                    route(graph, netlist, num_rounds=1, shards=2, shard_workers=2)
        finally:
            obs.close_tracing(None)
        assert reg.counter("pool.degraded.region-process") == 1
        records = load_trace(str(path))
        degraded = [
            r
            for r in records
            if r["type"] == "event" and r["name"] == "pool_degraded"
        ]
        assert len(degraded) == 1
        assert degraded[0]["attrs"]["backend"] == "region-process"
        assert degraded[0]["attrs"]["reason"] == "OSError"
        assert any(
            rec.name == "repro.obs.pool" and rec.levelno == logging.WARNING
            for rec in caplog.records
        )

class TestQuantiles:
    def test_nearest_rank_exactness(self):
        reg = obs.MetricsRegistry()
        for value in range(1, 11):
            reg.observe("h", float(value))
        hist = reg.snapshot()["histograms"]["h"]
        # Nearest-rank over n=10: p50 -> rank 5, p95/p99 -> rank 10.
        assert hist["p50"] == 5.0
        assert hist["p95"] == 10.0
        assert hist["p99"] == 10.0
        assert hist["samples"] == [float(v) for v in range(1, 11)]

    def test_merge_recomputes_quantiles_from_samples(self):
        whole = obs.MetricsRegistry()
        left = obs.MetricsRegistry()
        right = obs.MetricsRegistry()
        values = [0.5, 9.0, 2.0, 7.5, 1.0, 3.25, 8.0, 4.0]
        for value in values:
            whole.observe("h", value)
        for value in values[:4]:
            left.observe("h", value)
        for value in values[4:]:
            right.observe("h", value)
        merged = obs.MetricsRegistry()
        merged.merge(left.snapshot())
        merged.merge(right.snapshot())
        assert merged.snapshot()["histograms"]["h"] == whole.snapshot()["histograms"]["h"]

    def test_merge_tolerates_old_snapshot_without_samples(self):
        # PR-6-era snapshots had no "samples"/"p50" keys; counts and
        # extrema must still fold in.
        reg = obs.MetricsRegistry()
        reg.observe("h", 2.0)
        reg.merge(
            {
                "counters": {},
                "gauges": {},
                "histograms": {"h": {"count": 3, "total": 12.0, "min": 1.0, "max": 9.0}},
            }
        )
        hist = reg.snapshot()["histograms"]["h"]
        assert (hist["count"], hist["min"], hist["max"]) == (4, 1.0, 9.0)
        assert hist["p50"] == 2.0  # quantiles come from the surviving samples

    def test_sample_window_is_bounded_drop_oldest(self):
        reg = obs.MetricsRegistry()
        for value in range(obs.SAMPLE_WINDOW + 100):
            reg.observe("h", float(value))
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == obs.SAMPLE_WINDOW + 100  # lifetime count survives
        assert len(hist["samples"]) == obs.SAMPLE_WINDOW
        assert hist["samples"][0] == 100.0  # oldest dropped
        assert hist["min"] == 0.0  # extrema keep the full history


class TestRoundSeries:
    def test_bound_drops_oldest_and_counts_lifetime(self):
        series = obs.RoundSeries(maxlen=3)
        for i in range(5):
            series.record({"round": i + 1})
        assert len(series) == 3
        assert series.total_recorded == 5
        assert [s["round"] for s in series.samples()] == [3, 4, 5]
        assert series.latest()["round"] == 5
        series.clear()
        assert len(series) == 0 and series.latest() is None
        assert series.total_recorded == 5

    def test_samples_are_detached_and_monotonic_stamped(self):
        series = obs.RoundSeries()
        recorded = series.record({"round": 1})
        assert recorded["t"] >= 0.0
        series.samples()[0]["round"] = 99
        assert series.latest()["round"] == 1

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            obs.RoundSeries(maxlen=0)

    def test_router_populates_series_per_round(self):
        graph, netlist = small_design(seed=61)
        router, result = route(graph, netlist, num_rounds=2, shards=2)
        samples = router.series.samples()
        assert [s["round"] for s in samples] == [1, 2]
        last = samples[-1]
        assert last["rounds_total"] == 2
        assert last["overflow"] == result.overflow
        assert last["oracle_calls"] > 0
        assert last["cost"] > 0.0
        # Sharded flow: the per-region walltime split is populated.
        assert len(last["region_seconds"]) == 2
        assert last["seam_seconds"] >= 0.0
        assert last["overhead_seconds"] >= 0.0
        # Samples must persist as JSON (they land in job records).
        assert json.loads(json.dumps(samples)) == samples

    def test_unsharded_flow_has_empty_region_split(self):
        graph, netlist = small_design(seed=62)
        router, _ = route(graph, netlist, num_rounds=1)
        sample = router.series.latest()
        assert sample["region_seconds"] == {}
        assert sample["seam_seconds"] == 0.0


class TestEventBus:
    def test_events_arrive_in_order_with_bus_stamps(self):
        bus = obs.EventBus()
        sub = bus.subscribe()
        bus.publish("round", round=1)
        bus.publish("round", round=2)
        events = sub.drain()
        assert [e["round"] for e in events] == [1, 2]
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["schema"] == obs.EVENT_SCHEMA_VERSION for e in events)
        assert all(e["event"] == "round" for e in events)
        assert all("time" in e for e in events)
        assert bus.published == 2

    def test_bus_owns_schema_seq_event_keys(self):
        bus = obs.EventBus()
        sub = bus.subscribe()
        bus.publish("round", schema=999, seq=-1)
        event = sub.get()
        assert event["schema"] == obs.EVENT_SCHEMA_VERSION
        assert event["seq"] == 1

    def test_overfull_queue_drops_oldest_and_counts(self):
        reg = obs.MetricsRegistry()
        bus = obs.EventBus()
        sub = bus.subscribe(maxlen=2)
        with obs.use_registry(reg):
            for i in range(5):
                bus.publish("round", round=i)
        assert sub.dropped == 3
        assert reg.counter("bus.dropped") == 3
        assert [e["round"] for e in sub.drain()] == [3, 4]  # newest retained

    def test_match_filter_and_broken_filter_are_safe(self):
        bus = obs.EventBus()
        matching = bus.subscribe(match=lambda e: e.get("job_id") == "job-1")
        broken = bus.subscribe(match=lambda e: e["missing"])  # raises KeyError
        bus.publish("round", job_id="job-1")
        bus.publish("round", job_id="job-2")
        assert [e["job_id"] for e in matching.drain()] == ["job-1"]
        assert broken.drain() == []  # filter exception counts as no match

    def test_unsubscribe_wakes_blocked_get(self):
        bus = obs.EventBus()
        sub = bus.subscribe()
        results = []
        waiter = threading.Thread(target=lambda: results.append(sub.get(timeout=10.0)))
        waiter.start()
        sub.close()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results == [None]
        assert bus.subscriber_count == 0

    def test_bus_context_nests_and_payload_wins(self):
        bus = obs.EventBus()
        sub = bus.subscribe()
        with obs.bus_context(job_id="outer", extra="kept"):
            with obs.bus_context(job_id="inner"):
                bus.publish("round")
                bus.publish("round", job_id="payload")
            bus.publish("round")
        events = sub.drain()
        assert [e.get("job_id") for e in events] == ["inner", "payload", "outer"]
        assert all(e["extra"] == "kept" for e in events)

    def test_global_slot_is_noop_when_empty(self):
        assert obs.get_bus() is None
        assert obs.publish("round", round=1) is None
        bus = obs.EventBus()
        previous = obs.configure_bus(bus)
        try:
            assert previous is None
            sub = bus.subscribe()
            obs.publish("round", round=2)
            assert sub.get()["round"] == 2
        finally:
            obs.configure_bus(None)


class TestPrometheusExport:
    def test_renders_valid_exposition_text(self):
        reg = obs.MetricsRegistry()
        reg.inc("engine.oracle_calls", 7)
        reg.set_gauge("queue.depth", 2.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            reg.observe("round.seconds", value)
        text = obs.render_prometheus(reg.snapshot())
        assert text.endswith("\n")
        assert "repro_engine_oracle_calls_total 7" in text
        assert "# TYPE repro_engine_oracle_calls_total counter" in text
        assert "repro_queue_depth 2.5" in text
        assert "# TYPE repro_round_seconds summary" in text
        assert 'repro_round_seconds{quantile="0.5"} 2' in text
        assert 'repro_round_seconds{quantile="0.99"} 4' in text
        assert "repro_round_seconds_sum 10" in text
        assert "repro_round_seconds_count 4" in text
        # Every non-comment line is `name[{labels}] value`.
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$"
        )
        for line in text.rstrip("\n").splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_names_are_sanitized(self):
        text = obs.render_prometheus(
            {"counters": {"pool.degraded.region-process": 1}, "gauges": {}, "histograms": {}}
        )
        assert "repro_pool_degraded_region_process_total 1" in text

    def test_daemon_metrics_op_serves_prometheus(self):
        with ServeDaemon(port=0, job_workers=1) as daemon:
            daemon.start()
            obs.default_registry().inc("test.prometheus_op")
            response = daemon.handle({"op": "metrics", "format": "prometheus"})
            assert response["ok"] is True and response["format"] == "prometheus"
            assert "repro_test_prometheus_op_total" in response["text"]
            bad = daemon.handle({"op": "metrics", "format": "xml"})
            assert bad["ok"] is False


class TestChromeTraceExport:
    def write_trace(self, path):
        obs.configure_tracing(str(path))
        try:
            with obs.span("round", round=0):
                with obs.span("batch", nets=2):
                    pass
                obs.event("net", net="n1", seconds=0.25, sinks=2)
        finally:
            obs.close_tracing(None)

    def test_spans_and_events_convert(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        document = obs.chrome_trace(load_trace(str(path)))
        events = document["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in spans} == {"round", "batch"}
        assert [e["name"] for e in instants] == ["net"]
        assert instants[0]["s"] == "t"
        # Timestamps are wall-clock microseconds; tids are compacted.
        assert all(e["ts"] > 1e15 for e in events)
        assert all(e["tid"] == 1 for e in events)  # single-threaded trace
        # Parents sort before children (same-ts ties break on duration).
        assert events == sorted(
            events, key=lambda e: (e["ts"], -float(e.get("dur", 0.0)))
        )
        assert document["otherData"]["schema"] == TRACE_SCHEMA_VERSION
        json.dumps(document)  # must serialize as-is

    def test_cli_export_round_trip(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        out = tmp_path / "t.json"
        self.write_trace(path)
        assert summary_main(["export", str(path), "--format", "chrome", "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert len(document["traceEvents"]) == 3
        assert summary_main(["export", str(path)]) == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        assert stdout_doc == document


class TestEmptyTraceSummarize:
    def test_empty_file_renders_no_spans(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_trace(str(path)) == []
        assert summary_main(["summarize", str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_header_only_trace_renders_no_spans(self, tmp_path, capsys):
        path = tmp_path / "header.jsonl"
        path.write_text(
            json.dumps(
                {"type": "trace_header", "format": TRACE_FORMAT,
                 "schema": TRACE_SCHEMA_VERSION}
            )
            + "\n"
        )
        assert summary_main(["summarize", str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_spans_carry_thread_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure_tracing(str(path))
        try:
            with obs.span("round"):
                obs.event("net", net="n1")
        finally:
            obs.close_tracing(None)
        records = load_trace(str(path))
        span = next(r for r in records if r["type"] == "span")
        event = next(r for r in records if r["type"] == "event")
        assert span["tid"] == threading.get_ident()
        assert event["tid"] == threading.get_ident()
        assert span["duration"] >= 0.0  # monotonic clock: never negative


class TestJobHistory:
    def test_history_bound_and_terminal_guard(self):
        store = JobStore()
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        for i in range(HISTORY_LIMIT + 10):
            store.append_history(job.job_id, {"round": i + 1})
        history = store.history(job.job_id)
        assert len(history) == HISTORY_LIMIT
        assert history[0]["round"] == 11  # oldest dropped
        store.mark_done(job.job_id, {"ok": True})
        store.append_history(job.job_id, {"round": -1})  # late sample dropped
        assert store.history(job.job_id)[-1]["round"] == HISTORY_LIMIT + 10

    def test_history_round_trips_through_persistence(self, tmp_path):
        store = JobStore(state_dir=str(tmp_path))
        job = store.submit("route", {})
        store.mark_running(job.job_id)
        store.append_history(job.job_id, {"round": 1, "overflow": 0.5})
        store.mark_done(job.job_id, {"ok": True})
        reloaded = JobStore(state_dir=str(tmp_path))
        assert reloaded.history(job.job_id) == store.history(job.job_id)
        # status/result stay lean: history only ships on the history op.
        assert "history" not in store.snapshot(job.job_id)


@pytest.fixture()
def daemon(tmp_path):
    daemon = ServeDaemon(port=0, job_workers=2, state_dir=str(tmp_path / "state"))
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.fixture()
def client(daemon):
    host, port = daemon.address
    client = ServeClient(host, port, timeout=60.0)
    client.wait_until_up()
    return client


class TestWatchStreaming:
    ROUNDS = 3

    def submit(self, client, **overrides):
        params = dict(chip="c1", net_scale=0.2, rounds=self.ROUNDS, shards=2)
        params.update(overrides)
        return client.submit_route(**params)

    def test_watch_streams_every_round_event_in_order(self, client):
        job_id = self.submit(client)
        events = list(client.watch(job_id, timeout=300.0))
        rounds = [e for e in events if e["event"] == "round"]
        assert [e["round"] for e in rounds] == [1, 2, 3]
        remaining = [e["rounds_remaining"] for e in rounds]
        assert remaining == sorted(remaining, reverse=True) == [2, 1, 0]
        # Full round samples ride on the event.
        assert all("overflow" in e and "cost" in e for e in rounds)
        # Deep-layer events carry the owning job via the bus context.
        assert all(e["job_id"] == job_id for e in events)
        assert any(e["event"] == "region_done" for e in events)
        assert any(e["event"] == "seam_done" for e in events)
        # Sequence numbers are strictly increasing; schema is pinned.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all(e["schema"] == obs.EVENT_SCHEMA_VERSION for e in events)
        # The stream ends on the terminal job_state.
        assert events[-1]["event"] == "job_state"
        assert events[-1]["status"] == JobState.DONE

    def test_watched_job_is_bit_identical_to_unwatched(self, client):
        plain_id = self.submit(client)
        plain = client.wait(plain_id, timeout=300.0)
        watched_id = self.submit(client)
        list(client.watch(watched_id, timeout=300.0))
        watched = client.result(watched_id)
        assert watched["status"] == JobState.DONE
        a = RoutingResult.from_dict(plain["result"]["result"])
        b = RoutingResult.from_dict(watched["result"]["result"])
        for field in PARITY_FIELDS:
            assert getattr(a, field) == getattr(b, field), field

    def test_watch_unknown_job_is_refused(self, client):
        with pytest.raises(ServeError, match="unknown job"):
            list(client.watch("job-99999", timeout=30.0))

    def test_watch_of_terminal_job_synthesizes_job_state(self, client):
        job_id = self.submit(client, rounds=1)
        client.wait(job_id, timeout=300.0)
        events = list(client.watch(job_id, timeout=30.0))
        assert events  # late watcher still learns the outcome
        assert events[-1]["event"] == "job_state"
        assert events[-1]["status"] == JobState.DONE
        assert events[-1]["job_id"] == job_id

    def test_stalled_subscriber_never_stalls_the_job(self, client, daemon):
        # A subscriber with a tiny queue that never reads: the job must
        # finish normally and the bus must account for the lost events.
        stalled = daemon.bus.subscribe(maxlen=1)
        try:
            job_id = self.submit(client)
            job = client.wait(job_id, timeout=300.0)
            assert job["status"] == JobState.DONE
            assert stalled.dropped > 0
            assert obs.default_registry().counter("bus.dropped") > 0
            health = client.health()
            assert health["events_dropped"] > 0
        finally:
            stalled.close()

    def test_history_op_returns_persisted_rounds(self, client):
        job_id = self.submit(client)
        client.wait(job_id, timeout=300.0)
        history = client.history(job_id)
        assert [s["round"] for s in history] == [1, 2, 3]
        assert all(s["rounds_total"] == self.ROUNDS for s in history)
        assert all("region_seconds" in s for s in history)
        with pytest.raises(ServeError):
            client.history("job-99999")

    def test_health_op_reports_daemon_state(self, client):
        job_id = self.submit(client, rounds=1)
        client.wait(job_id, timeout=300.0)
        health = client.health()
        assert health["uptime_seconds"] >= 0.0
        assert health["jobs"].get(JobState.DONE, 0) >= 1
        assert health["queue_depth"] == 0
        assert health["watchers"] == 0
        assert health["events_published"] > 0
        assert health["event_schema"] == obs.EVENT_SCHEMA_VERSION
        assert health["trace_schema"] == TRACE_SCHEMA_VERSION
        assert isinstance(health["pool_degradations"], dict)
