"""Tests for the region partitioner (repro.grid.partition)."""

import pytest

from repro.grid.geometry import BoundingBox, GridPoint
from repro.grid.partition import (
    NetClassification,
    RegionPartition,
    balanced_mesh,
    partition_grid,
)
from repro.router.netlist import Net, Netlist, Pin


def span_net(name, x0, y0, x1, y1):
    return Net(name, Pin(f"{name}:d", GridPoint(x0, y0, 0)),
               [Pin(f"{name}:s0", GridPoint(x1, y1, 0))])


def quadrant_netlist():
    """One net per quadrant of a 16x16 grid plus one full-span net."""
    return Netlist(
        "quad",
        [
            span_net("q0", 1, 1, 3, 3),
            span_net("q1", 12, 1, 14, 3),
            span_net("q2", 1, 12, 3, 14),
            span_net("q3", 12, 12, 14, 14),
            span_net("wide", 1, 1, 14, 14),
        ],
    )


class TestPartitionGrid:
    def test_regions_tile_the_grid_disjointly(self):
        partition = partition_grid(13, 9, 6)
        seen = {}
        for region in partition:
            box = region.box
            for x in range(box.xlo, box.xhi + 1):
                for y in range(box.ylo, box.yhi + 1):
                    assert (x, y) not in seen, "regions overlap"
                    seen[(x, y)] = region.index
        assert len(seen) == 13 * 9
        for (x, y), region_index in seen.items():
            assert partition.region_of_tile(x, y) == region_index

    def test_k1_is_the_identity_partition(self):
        assert partition_grid(10, 7, 1).regions[0].box == BoundingBox(0, 0, 9, 6)
        partition = partition_grid(16, 16, 1)
        assert partition.num_regions == 1
        classification = partition.classify_nets(quadrant_netlist())
        assert classification.seam == []
        assert classification.interior[0] == [0, 1, 2, 3, 4]

    def test_balanced_mesh_prefers_square_regions(self):
        assert balanced_mesh(4, 16, 16) == (2, 2)
        assert balanced_mesh(6, 30, 20) == (3, 2)
        # A prime K degenerates into strips along the longer axis.
        assert balanced_mesh(5, 50, 10) == (5, 1)

    def test_impossible_meshes_are_rejected(self):
        with pytest.raises(ValueError):
            partition_grid(3, 2, 7)  # no 7-way rectangular tiling of 3x2
        with pytest.raises(ValueError):
            balanced_mesh(0, 4, 4)

    def test_cut_invariants_are_checked(self):
        with pytest.raises(ValueError):
            RegionPartition(8, 8, [0, 4, 4, 8], [0, 8])  # duplicate cut
        with pytest.raises(ValueError):
            RegionPartition(8, 8, [0, 4], [0, 8])  # does not span the grid

    def test_region_containing(self):
        partition = partition_grid(16, 16, 4)
        assert partition.region_containing(BoundingBox(0, 0, 7, 7)) == 0
        assert partition.region_containing(BoundingBox(8, 8, 15, 15)) == 3
        assert partition.region_containing(BoundingBox(6, 6, 9, 9)) is None


class TestClassifyNets:
    def test_quadrants_and_seam(self):
        partition = partition_grid(16, 16, 4)
        classification = partition.classify_nets(quadrant_netlist())
        assert classification.interior == [[0], [1], [2], [3]]
        assert classification.seam == [4]
        assert classification.num_interior == 4
        assert classification.num_seam == 1

    def test_halo_pushes_boundary_nets_to_the_seam(self):
        partition = partition_grid(16, 16, 4)
        netlist = Netlist("edge", [span_net("n0", 5, 5, 7, 7)])
        assert partition.classify_nets(netlist, halo=0).interior[0] == [0]
        # A 1-tile halo reaches x=8, the neighbouring region.
        assert partition.classify_nets(netlist, halo=1).seam == [0]

    def test_k_larger_than_net_count_leaves_regions_empty(self):
        partition = partition_grid(16, 16, 16)
        netlist = Netlist("two", [span_net("n0", 0, 0, 1, 1),
                                  span_net("n1", 14, 14, 15, 15)])
        classification = partition.classify_nets(netlist)
        assert classification.num_interior + classification.num_seam == 2
        empty = [r for r in classification.interior if not r]
        assert len(empty) >= 14  # most regions hold no nets at all

    def test_all_nets_seam_crossing(self):
        partition = partition_grid(16, 16, 4)
        netlist = Netlist(
            "spans",
            [span_net(f"n{i}", 0, i, 15, i) for i in range(4)],
        )
        classification = partition.classify_nets(netlist)
        assert classification.seam == [0, 1, 2, 3]
        assert all(not r for r in classification.interior)

    def test_every_net_classified_exactly_once(self):
        from repro.instances.chips import CHIP_SUITE, build_chip

        _, netlist = build_chip(CHIP_SUITE[0].scaled(0.5))
        partition = partition_grid(14, 14, 4)
        classification = partition.classify_nets(netlist, halo=1)
        assigned = sorted(
            classification.seam
            + [i for nets in classification.interior for i in nets]
        )
        assert assigned == list(range(netlist.num_nets))

    def test_negative_halo_rejected(self):
        partition = partition_grid(8, 8, 4)
        with pytest.raises(ValueError):
            partition.classify_nets(quadrant_netlist(), halo=-1)
