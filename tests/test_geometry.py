"""Tests for repro.grid.geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.geometry import (
    GridPoint,
    bounding_box,
    bounding_box_half_perimeter,
    hanan_grid,
    l1_distance,
    median_point,
    planar_l1,
)


class TestGridPoint:
    def test_planar_projection(self):
        p = GridPoint(3, 5, 2)
        assert p.planar == (3, 5)

    def test_with_layer(self):
        p = GridPoint(3, 5, 2)
        q = p.with_layer(7)
        assert q == GridPoint(3, 5, 7)
        assert p.layer == 2

    def test_default_layer_is_zero(self):
        assert GridPoint(1, 2).layer == 0

    def test_ordering_and_hash(self):
        assert GridPoint(1, 2, 0) < GridPoint(2, 0, 0)
        assert len({GridPoint(1, 1, 1), GridPoint(1, 1, 1)}) == 1


class TestDistances:
    def test_l1_distance_ignores_layer(self):
        assert l1_distance(GridPoint(0, 0, 0), GridPoint(3, 4, 3)) == 7

    def test_l1_distance_zero(self):
        p = GridPoint(5, 5, 1)
        assert l1_distance(p, p) == 0

    def test_planar_l1(self):
        assert planar_l1((0, 0), (2, 9)) == 11

    @given(
        st.integers(-50, 50), st.integers(-50, 50),
        st.integers(-50, 50), st.integers(-50, 50),
    )
    def test_l1_symmetry(self, ax, ay, bx, by):
        a, b = GridPoint(ax, ay), GridPoint(bx, by)
        assert l1_distance(a, b) == l1_distance(b, a)
        assert l1_distance(a, b) >= 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=12
        )
    )
    def test_median_minimises_total_l1(self, coords):
        points = [GridPoint(x, y) for x, y in coords]
        mx, my = median_point(points)

        def total(px, py):
            return sum(abs(px - p.x) + abs(py - p.y) for p in points)

        best = total(mx, my)
        # The median must be at least as good as every terminal position.
        for p in points:
            assert best <= total(p.x, p.y)


class TestBoundingBox:
    def test_bounding_box(self):
        points = [GridPoint(1, 5), GridPoint(4, 2), GridPoint(0, 3)]
        assert bounding_box(points) == (0, 2, 4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_half_perimeter(self):
        points = [GridPoint(1, 5), GridPoint(4, 2)]
        assert bounding_box_half_perimeter(points) == 6

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median_point([])


class TestHananGrid:
    def test_hanan_grid_size(self):
        points = [GridPoint(0, 0), GridPoint(2, 3), GridPoint(5, 1)]
        grid = hanan_grid(points)
        assert len(grid) == 9
        assert (0, 3) in grid and (5, 0) in grid

    def test_hanan_grid_contains_terminals(self):
        points = [GridPoint(1, 1), GridPoint(4, 7)]
        grid = hanan_grid(points)
        for p in points:
            assert p.planar in grid

    def test_hanan_grid_duplicates_collapse(self):
        points = [GridPoint(2, 2), GridPoint(2, 2)]
        assert hanan_grid(points) == [(2, 2)]
