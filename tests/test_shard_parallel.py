"""Determinism/parity battery for region-parallel shard execution.

The shard layer's region-parallel backend (``GlobalRouterConfig.shard_workers
> 1``) promises *bit-exact* equality with the serial shard path -- and, in
``shard_parity`` mode, with the unsharded router.  This battery pins that
contract:

* randomized sweeps over small random chips x K in {1, 2, 4} x workers in
  {1, 2}, asserting routed metrics and per-net trees are identical across
  serial-shard, parallel-shard, and (parity mode) unsharded runs,
* both ``fork`` and ``spawn`` start methods where the platform offers them,
* graceful degradation to the serial loop when no pool can be started,
* pool/engine teardown when a round raises mid-flight, and
* checkpoint/resume across *different* ``shard_workers`` values.

The randomized sweep runs a bounded subset by default (one seed, ``fork``
only; the ``slow`` marker labels it for ``-m "not slow"`` deselection) and is
widened by ``REPRO_TEST_SWEEP=1`` (more seeds, every start method) for
nightly-style runs; the wide combinations carry the ``slow`` marker.
"""

import multiprocessing
import os

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.grid.graph import build_grid_graph
from repro.instances.chips import CHIP_SUITE, build_chip
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.metrics import PARITY_FIELDS
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import resume_router, save_checkpoint
from repro.shard.coordinator import ShardCoordinator
from repro.shard.executor import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    make_region_executor,
)

#: Wide-sweep opt-in (nightly-style): more seeds, every start method.
SWEEP = os.environ.get("REPRO_TEST_SWEEP") == "1"
SWEEP_SEEDS = (101, 202, 303) if SWEEP else (101,)
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]
SWEEP_START_METHODS = START_METHODS if SWEEP else START_METHODS[:1]


def random_design(seed, num_nets=20, nx=12, ny=12, layers=4):
    """A small random chip: the sweep's workload class."""
    graph = build_grid_graph(nx, ny, layers)
    netlist = generate_netlist(
        graph,
        NetlistGeneratorConfig(num_nets=num_nets),
        seed=seed,
        name=f"rand{seed}",
    )
    return graph, netlist


def run_router(graph, netlist, **config):
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
    )
    return router, router.run()


def tree_key(trees):
    return [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges))
        for t in trees
    ]


def assert_bit_identical(router_a, result_a, router_b, result_b):
    for field in PARITY_FIELDS:
        assert getattr(result_a, field) == getattr(result_b, field), field
    assert tree_key(router_a.trees) == tree_key(router_b.trees)


class TestDeterminismBattery:
    """Seeded randomized sweep: serial-shard == parallel-shard (== unsharded
    in parity mode), for every K x workers x start-method combination."""

    @pytest.mark.slow
    @pytest.mark.parametrize("start_method", SWEEP_START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_parallel_matches_serial_shards(self, seed, shards, workers, start_method):
        graph, netlist = random_design(seed)
        serial_router, serial = run_router(
            graph, netlist, num_rounds=2, shards=shards
        )
        parallel_router, parallel = run_router(
            graph,
            netlist,
            num_rounds=2,
            shards=shards,
            shard_workers=workers,
            shard_start_method=start_method,
        )
        assert_bit_identical(serial_router, serial, parallel_router, parallel)
        if shards > 1 and workers > 1:
            executor = parallel_router.engine.region_executor
            assert isinstance(executor, ProcessRegionExecutor)

    @pytest.mark.slow
    @pytest.mark.parametrize("start_method", SWEEP_START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_parity_mode_matches_unsharded(self, seed, shards, workers, start_method):
        """In shard_parity mode (full-round cost window) every worker count
        reproduces the *unsharded* router bit for bit."""
        graph, netlist = random_design(seed)
        plain_router, plain = run_router(
            graph, netlist, num_rounds=2, cost_refresh_interval=10**9
        )
        shard_router, sharded = run_router(
            graph,
            netlist,
            num_rounds=2,
            cost_refresh_interval=10**9,
            shards=shards,
            shard_parity=True,
            shard_workers=workers,
            shard_start_method=start_method,
        )
        assert_bit_identical(plain_router, plain, shard_router, sharded)

    def test_suite_chip_parallel_matches_serial(self):
        """The battery's fixed-chip anchor: c1 at K=4, fork, 2 workers."""
        graph, netlist = build_chip(CHIP_SUITE[0].scaled(0.5))
        serial_router, serial = run_router(graph, netlist, num_rounds=3, shards=4)
        parallel_router, parallel = run_router(
            graph, netlist, num_rounds=3, shards=4, shard_workers=2
        )
        assert_bit_identical(serial_router, serial, parallel_router, parallel)

    @pytest.mark.skipif("spawn" not in START_METHODS, reason="no spawn on platform")
    def test_spawn_start_method_matches_serial(self):
        """Spawn workers re-import the package from a clean interpreter;
        name-keyed RNG streams keep the trees identical anyway."""
        graph, netlist = random_design(7, num_nets=14, nx=10, ny=10)
        serial_router, serial = run_router(graph, netlist, num_rounds=2, shards=2)
        spawn_router, spawned = run_router(
            graph,
            netlist,
            num_rounds=2,
            shards=2,
            shard_workers=2,
            shard_start_method="spawn",
        )
        assert_bit_identical(serial_router, serial, spawn_router, spawned)


class TestDegradation:
    def test_degrades_to_serial_loop_when_pool_unavailable(self, monkeypatch, caplog):
        """No multiprocessing -> one structured log record, route serially,
        same bits."""
        import logging

        graph, netlist = random_design(11, num_nets=16)
        serial_router, serial = run_router(graph, netlist, num_rounds=2, shards=4)

        def broken_get_context(*args, **kwargs):
            raise OSError("no process pools in this sandbox")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        with caplog.at_level(logging.WARNING, logger="repro.obs.pool"):
            degraded_router, degraded = run_router(
                graph, netlist, num_rounds=2, shards=4, shard_workers=2
            )
        degradations = [
            rec
            for rec in caplog.records
            if rec.name == "repro.obs.pool"
            and "degrades to the serial region loop" in rec.getMessage()
        ]
        assert len(degradations) == 1
        assert "backend=region-process" in degradations[0].getMessage()
        executor = degraded_router.engine.region_executor
        assert isinstance(executor, ProcessRegionExecutor)
        assert not executor.pool_used
        assert not executor.pool_active
        assert_bit_identical(serial_router, serial, degraded_router, degraded)

    def test_workers_ignored_without_sharding(self):
        """shard_workers is a shard-layer knob; the K=1 flow stays the
        plain single-region engine."""
        graph, netlist = random_design(12, num_nets=14)
        plain_router, plain = run_router(graph, netlist, num_rounds=2)
        one_router, one = run_router(graph, netlist, num_rounds=2, shard_workers=2)
        assert not isinstance(one_router.engine, ShardCoordinator)
        assert_bit_identical(plain_router, plain, one_router, one)

    def test_make_region_executor_selects_backend(self):
        assert isinstance(make_region_executor(None), SerialRegionExecutor)
        assert isinstance(make_region_executor(1), SerialRegionExecutor)
        assert isinstance(make_region_executor(3), ProcessRegionExecutor)
        with pytest.raises(ValueError, match="positive"):
            make_region_executor(0)
        with pytest.raises(ValueError, match="shard_workers"):
            GlobalRouterConfig(shard_workers=0)

    def test_invalid_start_method_raises_instead_of_degrading(self):
        """A pinned-but-mistyped start method is an explicit request gone
        wrong; it must fail at construction, not silently route serially."""
        with pytest.raises(ValueError, match="start method"):
            make_region_executor(2, start_method="frok")
        graph, netlist = random_design(14, num_nets=12)
        with pytest.raises(ValueError, match="start method"):
            GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(
                    num_rounds=1, shards=2, shard_workers=2,
                    shard_start_method="frok",
                ),
            )


class TestScopeCaches:
    """The re-route cache of region scope engines follows the region
    backend: alive under the serial loop (PR-3 behavior), disabled under
    the pool (workers must be round-stateless)."""

    def test_serial_regions_keep_reroute_cache(self):
        from repro.engine.engine import EngineConfig

        graph, netlist = random_design(15, num_nets=16)
        nocache_router, nocache = run_router(graph, netlist, num_rounds=3, shards=4)
        cached_router, cached = run_router(
            graph, netlist, num_rounds=3, shards=4,
            engine=EngineConfig(reroute_cache=True, cache_scope="global"),
        )
        assert all(
            region.engine.cache is not None
            for region in cached_router.engine.regions
        )
        # The cache is a pure memoization: results match running without it.
        assert_bit_identical(nocache_router, nocache, cached_router, cached)

    def test_parallel_regions_run_cache_free(self):
        from repro.engine.engine import EngineConfig

        graph, netlist = random_design(15, num_nets=16)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(
                num_rounds=1, shards=4, shard_workers=2,
                engine=EngineConfig(reroute_cache=True, cache_scope="global"),
            ),
        )
        try:
            assert router.engine.parallel_regions
            assert all(
                region.engine.cache is None for region in router.engine.regions
            )
            # Seam scopes never enter the pool, so they keep the cache.
            assert router.engine.seam_scopes, "design should have seam scopes"
            assert all(
                scope.engine.cache is not None
                for scope in router.engine.seam_scopes
            )
        finally:
            router.engine.close()


class TestTeardown:
    """ShardCoordinator.close() must release every engine and both pools
    even when a round raises mid-flight."""

    def _failing_router(self, **config):
        graph, netlist = random_design(13, num_nets=16)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=2, shards=4, **config),
        )
        return router

    def test_close_releases_engines_when_a_region_fails(self):
        router = self._failing_router()
        coordinator = router.engine
        region = coordinator.regions[0]

        def explode(*args, **kwargs):
            raise RuntimeError("injected region failure")

        region.engine.route_round = explode
        with pytest.raises(RuntimeError, match="injected region failure"):
            router.run()
        assert coordinator._closed
        assert coordinator.executor.closed
        assert coordinator.region_executor.closed

    def test_close_releases_pool_when_a_round_fails_mid_flight(self):
        router = self._failing_router(shard_workers=2)
        coordinator = router.engine

        original = coordinator.seam_engine.route_round
        calls = {"n": 0}

        def explode_after_interior(*args, **kwargs):
            # The interior pass already ran on the pool when the seam engine
            # is reached, so the pool is live at failure time.
            calls["n"] += 1
            raise RuntimeError("injected seam failure")

        coordinator.seam_engine.route_round = explode_after_interior
        assert isinstance(coordinator.region_executor, ProcessRegionExecutor)
        with pytest.raises(RuntimeError, match="injected seam failure"):
            router.run()
        assert calls["n"] == 1
        assert original is not None
        assert coordinator._closed
        assert coordinator.region_executor.closed
        assert coordinator.region_executor.pool_used  # live when the round failed
        assert not coordinator.region_executor.pool_active  # ...and released
        assert coordinator.executor.closed

    def test_close_is_idempotent(self):
        router = self._failing_router(shard_workers=2)
        router.run()
        router.engine.close()
        router.engine.close()
        assert router.engine.region_executor.closed


class TestCheckpointAcrossWorkerCounts:
    def test_resume_with_different_shard_workers(self, tmp_path):
        """A checkpoint taken under shard_workers=2 resumes under the
        serial region loop (and vice versa) with bit-identical results --
        the region backend, like the engine backend, is not part of the
        resume fingerprint."""
        graph, netlist = build_chip(CHIP_SUITE[0].scaled(0.4))
        straight_router, straight = run_router(
            graph, netlist, num_rounds=3, shards=4
        )

        for ckpt_workers, resume_workers in ((2, None), (None, 2)):
            path = str(tmp_path / f"w{ckpt_workers}-{resume_workers}.ckpt")

            def hook(router, round_index, _path=path):
                if round_index == 1:
                    save_checkpoint(router, _path)

            first = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=3, shards=4, shard_workers=ckpt_workers),
            )
            first.run(on_round_end=hook)
            resumed = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=3, shards=4, shard_workers=resume_workers),
            )
            assert resume_router(resumed, path)
            assert resumed.rounds_completed == 2
            result = resumed.run()
            for field in PARITY_FIELDS:
                assert getattr(result, field) == getattr(straight, field), field
            assert tree_key(resumed.trees) == tree_key(straight_router.trees)
