"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import ORACLES, build_parser, main, make_oracle


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.chip == "c1"
        assert args.oracle == "CD"
        assert args.backend == "serial"
        assert not args.cache

    def test_rejects_unknown_chip(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--chip", "c99"])

    def test_make_oracle(self):
        for name in ORACLES:
            assert make_oracle(name).name == name
        with pytest.raises(ValueError):
            make_oracle("XX")


class TestMain:
    def test_list_chips(self, capsys):
        assert main(["--list-chips"]) == 0
        out = capsys.readouterr().out
        for chip in ("c1", "c8"):
            assert chip in out

    def test_smoke_route_row(self, capsys):
        assert main(["--chip", "c1", "--net-scale", "0.1", "--cache"]) == 0
        captured = capsys.readouterr()
        assert "c1" in captured.out and "ACE4" in captured.out
        assert "re-route cache" in captured.err

    def test_smoke_route_json(self, capsys):
        assert main(["--chip", "c1", "--net-scale", "0.1", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["chip"] == "c1"
        assert record["method"] == "CD"
        assert "WS" in record and "Walltime" in record
