"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import ORACLES, build_parser, main, make_oracle
from repro.serve.daemon import ServeDaemon


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.chip == "c1"
        assert args.oracle == "CD"
        assert args.backend == "serial"
        assert not args.cache

    def test_rejects_unknown_chip(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--chip", "c99"])

    def test_make_oracle(self):
        for name in ORACLES:
            assert make_oracle(name).name == name
        with pytest.raises(ValueError):
            make_oracle("XX")


class TestMain:
    def test_list_chips(self, capsys):
        assert main(["--list-chips"]) == 0
        out = capsys.readouterr().out
        for chip in ("c1", "c8"):
            assert chip in out

    def test_smoke_route_row(self, capsys):
        assert main(["--chip", "c1", "--net-scale", "0.1", "--cache"]) == 0
        captured = capsys.readouterr()
        assert "c1" in captured.out and "ACE4" in captured.out
        assert "re-route cache" in captured.err

    def test_smoke_route_json(self, capsys):
        assert main(["--chip", "c1", "--net-scale", "0.1", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["chip"] == "c1"
        assert record["method"] == "CD"
        assert "WS" in record and "Walltime" in record and "Nets" in record

    def test_checkpoint_flag_writes_and_resumes(self, capsys, tmp_path):
        path = str(tmp_path / "run.ckpt")
        args = ["--chip", "c1", "--net-scale", "0.1", "--json", "--checkpoint", path]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert (tmp_path / "run.ckpt").exists()
        # Resuming a completed checkpoint skips routing and reproduces the
        # metrics (walltime aside).
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "resumed from" in captured.err
        second = json.loads(captured.out)
        for field in ("WS", "TNS", "ACE4", "WL", "Vias", "Overflow", "Objective"):
            assert second[field] == first[field]

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_route_alias_with_shards(self, capsys):
        assert main(["route", "--chip", "c1", "--net-scale", "0.4",
                     "--shards", "4", "--json"]) == 0
        captured = capsys.readouterr()
        record = json.loads(captured.out)
        assert record["chip"] == "c1" and record["Nets"] == 18
        assert "shards: 4 regions" in captured.err

    def test_shard_parity_flag(self, capsys):
        assert main(["--chip", "c1", "--net-scale", "0.3", "--shards", "2",
                     "--shard-parity", "--json"]) == 0
        captured = capsys.readouterr()
        assert "(parity mode)" in captured.err
        assert json.loads(captured.out)["Nets"] == 14

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--shards", "0"])


class TestServeSubcommands:
    @pytest.fixture()
    def daemon(self):
        daemon = ServeDaemon(port=0, job_workers=1)
        daemon.start()
        yield daemon
        daemon.shutdown()

    def endpoint(self, daemon):
        host, port = daemon.address
        return ["--host", host, "--port", str(port)]

    def test_submit_status_result_eco_flow(self, capsys, daemon):
        endpoint = self.endpoint(daemon)
        assert (
            main(
                ["submit", *endpoint, "--chip", "c1", "--net-scale", "0.1",
                 "--rounds", "1", "--session", "cli", "--wait"]
            )
            == 0
        )
        job = json.loads(capsys.readouterr().out)
        assert job["status"] == "done"
        assert job["result"]["result"]["chip"] == "c1"
        job_id = job["job_id"]

        assert main(["status", *endpoint, job_id]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "done"
        assert main(["status", *endpoint, "--all"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1
        assert main(["result", *endpoint, job_id]) == 0
        assert json.loads(capsys.readouterr().out)["result"]["session"] == "cli"

        ops = json.dumps(
            [{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 1, "y": 1}]
        )
        assert main(["eco", *endpoint, "--session", "cli", "--ops", ops, "--wait"]) == 0
        eco_job = json.loads(capsys.readouterr().out)
        assert eco_job["status"] == "done"
        assert eco_job["result"]["touched"] == ["n0"]

    def test_eco_ops_validation(self, capsys, daemon):
        endpoint = self.endpoint(daemon)
        assert main(["eco", *endpoint, "--session", "s"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert main(["eco", *endpoint, "--session", "s", "--ops", "{}"]) == 2
        assert "JSON list" in capsys.readouterr().err

    def test_shutdown_subcommand(self, capsys, daemon):
        assert main(["shutdown", *self.endpoint(daemon)]) == 0
        assert "stopping" in capsys.readouterr().err

    def test_unreachable_daemon_is_an_error(self, capsys):
        assert main(["status", "--port", "1", "--all"]) == 2
        assert "error:" in capsys.readouterr().err
