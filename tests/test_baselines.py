"""Tests for the topology-first baselines (L1, SL, PD) and their embedding."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.embedding import TopologyEmbedder
from repro.baselines.prim_dijkstra import PrimDijkstraOracle, prim_dijkstra_topology
from repro.baselines.rsmt import RectilinearSteinerOracle, rectilinear_steiner_topology
from repro.baselines.shallow_light import ShallowLightOracle, shallow_light_topology
from repro.baselines.topology import PlaneTopology, closest_point_on_edge
from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceSolver
from repro.core.objective import evaluate_tree
from repro.core.shortest_path import dijkstra
from repro.core.instance import SteinerInstance
from repro.grid.geometry import planar_l1

from tests.conftest import make_instance


class TestPlaneTopology:
    def test_basic_construction(self):
        topo = PlaneTopology([(0, 0), (3, 0), (3, 4)], [None, 0, 1], [2])
        assert topo.num_nodes == 3
        assert topo.total_length() == 7
        assert topo.path_length(2) == 7
        assert topo.edge_length(0) == 0

    def test_invalid_root_parent(self):
        with pytest.raises(ValueError):
            PlaneTopology([(0, 0)], [0], [])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            PlaneTopology([(0, 0), (1, 0), (2, 0)], [None, 2, 1], [])

    def test_children_and_subtree(self):
        topo = PlaneTopology([(0, 0), (1, 0), (2, 0), (1, 1)], [None, 0, 1, 1], [2, 3])
        children = topo.children()
        assert children[1] == [2, 3]
        assert set(topo.subtree_nodes(1)) == {1, 2, 3}

    def test_add_and_reattach(self):
        topo = PlaneTopology([(0, 0), (5, 0)], [None, 0], [1])
        new = topo.add_node((2, 0), 0)
        topo.reattach(1, new)
        assert topo.parents[1] == new
        assert topo.total_length() == 5
        with pytest.raises(ValueError):
            topo.reattach(0, 1)
        with pytest.raises(ValueError):
            topo.reattach(new, 1)  # would create a cycle

    def test_validate_spans(self):
        topo = PlaneTopology([(0, 0), (3, 3)], [None, 0], [1])
        topo.validate_spans([(3, 3)])
        with pytest.raises(ValueError):
            topo.validate_spans([(4, 4)])

    def test_closest_point_on_edge(self):
        attach, dist = closest_point_on_edge((5, 5), (0, 0), (10, 0))
        assert attach == (5, 0)
        assert dist == 5
        attach, dist = closest_point_on_edge((2, 1), (0, 0), (4, 3))
        assert attach == (2, 1)
        assert dist == 0


class TestRectilinearTopology:
    def test_single_sink(self):
        topo = rectilinear_steiner_topology((0, 0), [(4, 3)])
        topo.validate_spans([(4, 3)])
        assert topo.total_length() == 7

    def test_three_sinks_star_optimal(self):
        # Root and three sinks forming a cross: a single Steiner point at the
        # centre gives total length 4, the optimum.
        topo = rectilinear_steiner_topology((2, 0), [(2, 4), (0, 2), (4, 2)])
        assert topo.total_length() <= 8
        topo.validate_spans([(2, 4), (0, 2), (4, 2)])

    def test_collinear_terminals(self):
        sinks = [(1, 0), (2, 0), (3, 0), (4, 0)]
        topo = rectilinear_steiner_topology((0, 0), sinks)
        assert topo.total_length() == 4

    def test_duplicate_sink_positions(self):
        topo = rectilinear_steiner_topology((0, 0), [(2, 2), (2, 2)])
        topo.validate_spans([(2, 2), (2, 2)])
        assert topo.total_length() == 4

    def test_length_not_worse_than_star(self):
        rng = random.Random(5)
        root = (rng.randrange(12), rng.randrange(12))
        sinks = [(rng.randrange(12), rng.randrange(12)) for _ in range(9)]
        topo = rectilinear_steiner_topology(root, sinks)
        star = sum(planar_l1(root, s) for s in sinks)
        assert topo.total_length() <= star
        topo.validate_spans(sinks)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=10
        ),
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_spans_and_hpwl_lower_bound(self, sinks, root):
        topo = rectilinear_steiner_topology(root, sinks)
        topo.validate_spans(sinks)
        xs = [root[0]] + [s[0] for s in sinks]
        ys = [root[1]] + [s[1] for s in sinks]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        assert topo.total_length() >= hpwl or topo.total_length() == 0


class TestShallowLightTopology:
    def test_path_length_bound_respected(self):
        rng = random.Random(11)
        root = (0, 0)
        sinks = [(rng.randrange(15), rng.randrange(15)) for _ in range(12)]
        eps = 0.25
        topo = shallow_light_topology(root, sinks, epsilon=eps)
        topo.validate_spans(sinks)
        for sink_node, sink in zip(topo.sink_nodes, sinks):
            bound = (1 + eps) * planar_l1(root, sink)
            assert topo.path_length(sink_node) <= bound + 1e-9

    def test_epsilon_zero_gives_shortest_paths(self):
        root = (0, 0)
        sinks = [(5, 5), (8, 2), (1, 9)]
        topo = shallow_light_topology(root, sinks, epsilon=0.0)
        for sink_node, sink in zip(topo.sink_nodes, sinks):
            assert topo.path_length(sink_node) == planar_l1(root, sink)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            shallow_light_topology((0, 0), [(1, 1)], epsilon=-0.1)

    def test_large_epsilon_keeps_short_tree(self):
        rng = random.Random(3)
        root = (7, 7)
        sinks = [(rng.randrange(15), rng.randrange(15)) for _ in range(10)]
        light = rectilinear_steiner_topology(root, sinks)
        shallow = shallow_light_topology(root, sinks, epsilon=100.0)
        # With a huge epsilon no re-rooting is needed, so the length matches
        # the underlying light tree.
        assert shallow.total_length() <= light.total_length() * 1.01

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, sinks):
        root = (6, 6)
        eps = 0.3
        topo = shallow_light_topology(root, sinks, epsilon=eps)
        for sink_node, sink in zip(topo.sink_nodes, sinks):
            assert topo.path_length(sink_node) <= (1 + eps) * planar_l1(root, sink) + 1e-9


class TestPrimDijkstraTopology:
    def test_alpha_zero_behaves_like_short_tree(self):
        rng = random.Random(2)
        root = (0, 0)
        sinks = [(rng.randrange(10), rng.randrange(10)) for _ in range(8)]
        topo = prim_dijkstra_topology(root, sinks, alpha=0.0)
        topo.validate_spans(sinks)
        star = sum(planar_l1(root, s) for s in sinks)
        assert topo.total_length() <= star

    def test_alpha_one_gives_shortest_paths(self):
        root = (0, 0)
        sinks = [(4, 4), (6, 1), (2, 7)]
        topo = prim_dijkstra_topology(root, sinks, alpha=1.0)
        for sink_node, sink in zip(topo.sink_nodes, sinks):
            assert topo.path_length(sink_node) == planar_l1(root, sink)

    def test_weighted_mode_prefers_short_paths_for_heavy_sinks(self):
        root = (0, 0)
        sinks = [(10, 0), (5, 1), (5, -1) if False else (6, 2)]
        weights = [10.0, 0.1, 0.1]
        topo = prim_dijkstra_topology(
            root, sinks, weights, cost_rate=1.0, delay_rate=1.0
        )
        heavy_node = topo.sink_nodes[0]
        assert topo.path_length(heavy_node) <= planar_l1(root, sinks[0]) * 1.2

    def test_weights_must_align(self):
        with pytest.raises(ValueError):
            prim_dijkstra_topology((0, 0), [(1, 1)], weights=[1.0, 2.0])

    def test_bifurcation_penalty_accepted(self):
        topo = prim_dijkstra_topology(
            (0, 0),
            [(3, 3), (4, 0), (0, 4)],
            [1.0, 2.0, 0.5],
            bifurcation=BifurcationModel(dbif=2.0, eta=0.25),
        )
        topo.validate_spans([(3, 3), (4, 0), (0, 4)])

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_always_spans(self, sinks):
        topo = prim_dijkstra_topology((5, 5), sinks)
        topo.validate_spans(sinks)


class TestEmbedding:
    def test_two_pin_embedding_is_optimal(self, medium_graph):
        g = medium_graph
        root = g.node_index(1, 1, 0)
        sink = g.node_index(12, 9, 0)
        weight = 0.8
        inst = SteinerInstance(g, root, [sink], [weight], g.base_cost_array(), g.delay_array())
        tree = RectilinearSteinerOracle().build(inst)
        tree.validate()
        result = evaluate_tree(inst, tree)
        lengths = (inst.cost + weight * inst.delay).tolist()
        dist, _ = dijkstra(g, lengths, {root: 0.0}, targets=[sink])
        assert result.total == pytest.approx(dist[sink], rel=1e-6)

    @pytest.mark.parametrize(
        "oracle_cls", [RectilinearSteinerOracle, ShallowLightOracle, PrimDijkstraOracle]
    )
    @pytest.mark.parametrize("num_sinks", [1, 4, 10, 20])
    def test_oracles_produce_valid_trees(self, medium_graph, oracle_cls, num_sinks):
        inst = make_instance(medium_graph, num_sinks, seed=num_sinks, dbif=1.0)
        tree = oracle_cls().build(inst, random.Random(0))
        tree.validate()
        result = evaluate_tree(inst, tree)
        assert result.total > 0

    @pytest.mark.parametrize(
        "oracle_cls, name",
        [
            (RectilinearSteinerOracle, "L1"),
            (ShallowLightOracle, "SL"),
            (PrimDijkstraOracle, "PD"),
            (CostDistanceSolver, "CD"),
        ],
    )
    def test_oracle_names(self, oracle_cls, name):
        assert oracle_cls().name == name

    def test_embedding_avoids_expensive_regions(self, medium_graph):
        g = medium_graph
        cost = g.base_cost_array()
        for e in range(g.num_edges):
            if g.edge_is_via[e]:
                continue
            x, _ = g.node_planar(int(g.edge_u[e]))
            if x == 7:
                cost[e] *= 80.0
        root = g.node_index(2, 3, 0)
        sinks = [g.node_index(4, 12, 0), g.node_index(5, 6, 0)]
        inst = SteinerInstance(g, root, sinks, [0.1, 0.1], cost, g.delay_array())
        tree = RectilinearSteinerOracle().build(inst)
        for e in tree.edges:
            x, _ = g.node_planar(int(g.edge_u[e]))
            if not g.edge_is_via[e]:
                assert not (x == 7 and cost[e] > 50)

    def test_window_margin_zero_still_connects(self, small_graph):
        inst = make_instance(small_graph, 4, seed=3)
        oracle = RectilinearSteinerOracle(TopologyEmbedder(window_margin=0))
        tree = oracle.build(inst)
        tree.validate()

    def test_duplicate_sinks(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(6, 6, 0)
        inst = SteinerInstance(
            g, root, [sink, sink], [0.5, 0.7], g.base_cost_array(), g.delay_array()
        )
        for oracle in (RectilinearSteinerOracle(), ShallowLightOracle(), PrimDijkstraOracle()):
            tree = oracle.build(inst)
            tree.validate()

    def test_embedding_uses_higher_layers_for_heavy_weights(self, medium_graph):
        """With a large delay weight, the optimal embedding should climb to
        faster layers, producing more vias than a weight-less embedding."""
        g = medium_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(15, 15, 0)
        light = SteinerInstance(g, root, [sink], [0.01], g.base_cost_array(), g.delay_array())
        heavy = SteinerInstance(g, root, [sink], [50.0], g.base_cost_array(), g.delay_array())
        oracle = RectilinearSteinerOracle()
        vias_light = oracle.build(light).via_count()
        vias_heavy = oracle.build(heavy).via_count()
        assert vias_heavy >= vias_light
        # And the heavy embedding is strictly faster.
        d_light = evaluate_tree(light, oracle.build(light)).sink_delays[0]
        d_heavy = evaluate_tree(heavy, oracle.build(heavy)).sink_delays[0]
        assert d_heavy <= d_light
