"""Tests for the experiment harness, table formatting and figures."""

import pytest

from repro.analysis.experiments import (
    InstanceComparisonRow,
    bucket_of,
    default_oracles,
    run_global_routing,
    run_instance_comparison,
)
from repro.analysis.figures import (
    figure1_bifurcation_comparison,
    figure2_split_tradeoff,
    figure3_algorithm_trace,
)
from repro.analysis.tables import (
    format_chip_table,
    format_instance_comparison,
    format_routing_results,
)
from repro.core.cost_distance import CostDistanceSolver
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.grid.graph import build_grid_graph
from repro.instances.chips import ChipSpec, chip_table
from repro.instances.generator import generate_steiner_instances
from repro.router.metrics import RoutingResult
from repro.router.router import GlobalRouterConfig


class TestBuckets:
    def test_bucket_of(self):
        assert bucket_of(3) == "3-5"
        assert bucket_of(5) == "3-5"
        assert bucket_of(6) == "6-14"
        assert bucket_of(20) == "15-29"
        assert bucket_of(100) == ">=30"
        assert bucket_of(2) is None

    def test_default_oracles(self):
        names = [o.name for o in default_oracles()]
        assert names == ["L1", "SL", "PD", "CD"]


class TestInstanceComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        graph = build_grid_graph(10, 10, 4)
        instances = generate_steiner_instances(
            graph, 6, dbif=0.0, seed=5,
            size_distribution=((3, 5, 0.6), (6, 10, 0.4)),
        )
        rows = run_instance_comparison(instances)
        return instances, rows

    def test_row_structure(self, comparison):
        _, rows = comparison
        buckets = [row.bucket for row in rows]
        assert buckets == ["3-5", "6-14", "15-29", ">=30", "all"]
        all_row = rows[-1]
        assert all_row.num_instances == 6
        assert set(all_row.average_increase) == {"L1", "SL", "PD", "CD"}

    def test_increases_nonnegative_and_some_zero(self, comparison):
        _, rows = comparison
        all_row = rows[-1]
        values = list(all_row.average_increase.values())
        assert all(v >= 0 for v in values)
        # The best method per instance has a zero increase, so the minimum
        # average is strictly below the maximum unless all methods tie.
        assert min(values) <= max(values)

    def test_bucket_counts_sum(self, comparison):
        _, rows = comparison
        assert sum(row.num_instances for row in rows[:-1]) == rows[-1].num_instances

    def test_formatting(self, comparison):
        _, rows = comparison
        text = format_instance_comparison(rows, title="Table I analogue")
        assert "Table I analogue" in text
        assert "3-5" in text and "all" in text
        assert "%" in text

    def test_subset_of_oracles(self):
        graph = build_grid_graph(8, 8, 3)
        instances = generate_steiner_instances(graph, 2, seed=1)
        rows = run_instance_comparison(
            instances, oracles=[RectilinearSteinerOracle(), CostDistanceSolver()]
        )
        assert set(rows[-1].average_increase) == {"L1", "CD"}


class TestGlobalRoutingHarness:
    def test_runs_tiny_chip(self):
        spec = ChipSpec("t1", 8, 8, 4, 6, seed=1)
        results = run_global_routing(
            [spec],
            oracles=[CostDistanceSolver()],
            router_config=GlobalRouterConfig(num_rounds=1),
        )
        assert len(results) == 1
        assert results[0].chip == "t1"
        assert results[0].method == "CD"

    def test_formatting(self):
        results = [
            RoutingResult("c1", "L1", -5.0, -20.0, 88.0, 100.0, 50, 1.0),
            RoutingResult("c1", "CD", -4.0, -15.0, 86.0, 105.0, 45, 0.5),
        ]
        text = format_routing_results(results)
        assert "c1" in text and "CD" in text and "all" in text

    def test_chip_table_formatting(self):
        text = format_chip_table(chip_table())
        assert "c1" in text and "c8" in text and "#nets" in text


class TestFigures:
    def test_figure1(self):
        result = figure1_bifurcation_comparison(
            build_grid_graph(12, 12, 4), num_sinks=8, dbif=5.0, seed=2
        )
        assert result.critical_bifurcations_without >= 0
        assert result.critical_bifurcations_with >= 0
        assert result.objective_with > 0
        # With penalties active, the penalised objective of the
        # penalty-aware tree should not exceed the one of the unaware tree by
        # much (the algorithm optimises for it).
        assert result.critical_delay_with <= result.critical_delay_without * 2.0

    def test_figure2(self):
        result = figure2_split_tradeoff(weight_heavy=3.0, weight_light=1.0, dbif=2.0, eta=0.25)
        assert result.dbif == 2.0
        assert result.optimal_lambda_heavy == pytest.approx(0.25)
        assert result.optimal_penalty <= result.even_split_penalty
        # Sample endpoints cover the allowed range [eta, 1-eta].
        lambdas = [l for l, _ in result.split_samples]
        assert lambdas[0] == pytest.approx(0.25)
        assert lambdas[-1] == pytest.approx(0.75)
        # The optimum is the minimum over the sampled splits.
        assert result.optimal_penalty <= min(v for _, v in result.split_samples) + 1e-9

    def test_figure2_default_dbif_from_repeaters(self):
        result = figure2_split_tradeoff()
        assert result.dbif > 0

    def test_figure3(self):
        result = figure3_algorithm_trace(num_sinks=5, seed=3)
        assert result.num_root_merges + result.num_sink_merges == len(result.merges)
        assert result.num_root_merges >= 1
        assert "iteration 1" in result.ascii_art
        # 5 sinks (distinct tiles) -> at most 5 iterations.
        assert 1 <= len(result.merges) <= 5
