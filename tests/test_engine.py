"""Tests for the batch-routing engine (scheduler, executors, cache, façade)."""

import numpy as np
import pytest

from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceSolver
from repro.core.instance import SteinerInstance
from repro.engine.cache import RerouteCache
from repro.engine.engine import EngineConfig
from repro.engine.executor import (
    NetTask,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.rng import NET_STREAM_STRIDE, derive_net_rng, net_stream_seed
from repro.engine.scheduler import BoundingBox, NetScheduler
from repro.grid.congestion import CongestionMap
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.router.netlist import Net, Netlist, Pin, Stage
from repro.router.router import GlobalRouter, GlobalRouterConfig


def tiny_netlist():
    nets = [
        Net("n0", Pin("n0:d", GridPoint(0, 0, 0)), [Pin("n0:s0", GridPoint(4, 1, 0)),
                                                    Pin("n0:s1", GridPoint(2, 5, 0))]),
        Net("n1", Pin("n1:d", GridPoint(4, 1, 0)), [Pin("n1:s0", GridPoint(7, 7, 0))]),
        Net("n2", Pin("n2:d", GridPoint(1, 6, 0)), [Pin("n2:s0", GridPoint(6, 3, 0))]),
        Net("n3", Pin("n3:d", GridPoint(8, 8, 0)), [Pin("n3:s0", GridPoint(9, 9, 0))]),
    ]
    stages = [Stage(0, 0, 1, cell_delay=5.0)]
    return Netlist("tiny", nets, stages, clock_period=60.0)


def result_key(result):
    return (
        result.worst_slack,
        result.total_negative_slack,
        result.ace4,
        result.wire_length,
        result.via_count,
        result.overflow,
        result.objective,
    )


def run_router(graph_dims, engine_config, num_rounds=2, record=False):
    graph = build_grid_graph(*graph_dims)
    netlist = tiny_netlist()
    router = GlobalRouter(
        graph,
        netlist,
        CostDistanceSolver(),
        GlobalRouterConfig(
            num_rounds=num_rounds, record_instances=record, engine=engine_config
        ),
    )
    return router, router.run()


class TestRng:
    def test_stable_formula(self):
        assert net_stream_seed(3, 7) == 3 * NET_STREAM_STRIDE + 7

    def test_streams_are_independent(self):
        a = derive_net_rng(0, 1)
        b = derive_net_rng(0, 2)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_streams_are_reproducible(self):
        assert derive_net_rng(5, 9).random() == derive_net_rng(5, 9).random()


class TestBoundingBox:
    def test_overlap_and_separation(self):
        a = BoundingBox(0, 0, 3, 3)
        assert a.overlaps(BoundingBox(3, 3, 5, 5))  # shared corner tile
        assert not a.overlaps(BoundingBox(4, 0, 6, 2))
        assert not a.overlaps(BoundingBox(0, 4, 2, 6))

    def test_expand_clips_to_grid(self):
        box = BoundingBox(0, 0, 2, 2).expanded(3, 5, 5)
        assert box == BoundingBox(0, 0, 4, 4)


class TestScheduler:
    @pytest.fixture(scope="class")
    def sched(self):
        graph = build_grid_graph(10, 10, 4)
        return NetScheduler(graph, tiny_netlist(), halo=0)

    def test_window_policy_preserves_order(self, sched):
        batches = sched.schedule(policy="window", window_size=3)
        assert [batch.nets for batch in batches] == [(0, 1, 2), (3,)]

    def test_every_net_scheduled_exactly_once(self, sched):
        for policy in ("window", "bbox"):
            batches = sched.schedule(policy=policy, window_size=2)
            routed = [n for batch in batches for n in batch.nets]
            assert sorted(routed) == [0, 1, 2, 3]

    def test_bbox_batches_are_conflict_free(self, sched):
        for batch in sched.schedule(policy="bbox"):
            for i, a in enumerate(batch.nets):
                for b in batch.nets[i + 1 :]:
                    assert not sched.conflict(a, b)

    def test_bbox_separates_overlapping_nets(self, sched):
        # Nets 0 and 1 share the tile (4, 1); they must not share a batch.
        assert sched.conflict(0, 1)
        for batch in sched.schedule(policy="bbox"):
            assert not ({0, 1} <= set(batch.nets))

    def test_disjoint_net_rides_along(self, sched):
        # Net 3 lives at (8..9, 8..9), disjoint from net 0's box: same batch.
        assert not sched.conflict(0, 3)
        first = sched.schedule(policy="bbox")[0]
        assert 0 in first.nets and 3 in first.nets

    def test_max_batch_size_respected(self, sched):
        for batch in sched.schedule(policy="bbox", max_batch_size=1):
            assert len(batch) == 1

    def test_halo_expands_conflicts(self):
        graph = build_grid_graph(10, 10, 4)
        wide = NetScheduler(graph, tiny_netlist(), halo=9)
        # With a grid-sized halo every pair conflicts.
        assert wide.conflict(0, 3)

    def test_invalid_arguments(self, sched):
        with pytest.raises(ValueError):
            sched.schedule(policy="nope")
        with pytest.raises(ValueError):
            sched.schedule(policy="window", window_size=0)
        with pytest.raises(ValueError):
            NetScheduler(build_grid_graph(4, 4, 2), tiny_netlist(), halo=-1)


class TestExecutors:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = build_grid_graph(10, 10, 4)
        netlist = tiny_netlist()
        tasks = []
        for i in range(netlist.num_nets):
            root, sinks = netlist.net_terminals(graph, i)
            tasks.append(
                NetTask(i, root, tuple(sinks), tuple([0.2] * len(sinks)), f"t/{i}")
            )
        costs = graph.base_cost_array()
        return graph, tasks, costs

    def test_serial_routes_all_tasks(self, setup):
        graph, tasks, costs = setup
        executor = SerialExecutor(graph, CostDistanceSolver(), BifurcationModel(), 0)
        trees = executor.route_batch(costs, tasks)
        assert sorted(trees) == [t.net_index for t in tasks]
        for task in tasks:
            trees[task.net_index].validate(task.root, list(task.sinks))

    def test_process_matches_serial_bit_for_bit(self, setup):
        graph, tasks, costs = setup
        serial = SerialExecutor(graph, CostDistanceSolver(), BifurcationModel(), 0)
        with ProcessExecutor(
            graph, CostDistanceSolver(), BifurcationModel(), 0, num_workers=2
        ) as process:
            expected = serial.route_batch(costs, tasks)
            actual = process.route_batch(costs, tasks)
        assert sorted(actual) == sorted(expected)
        for net_index, tree in expected.items():
            assert actual[net_index].edges == tree.edges
            assert actual[net_index].root == tree.root
            assert actual[net_index].sinks == tree.sinks
            assert actual[net_index].method == tree.method

    def test_single_task_avoids_pool(self, setup):
        graph, tasks, costs = setup
        process = ProcessExecutor(
            graph, CostDistanceSolver(), BifurcationModel(), 0, num_workers=2
        )
        trees = process.route_batch(costs, tasks[:1])
        assert process._pool is None  # inline fast path, no pool spawned
        assert len(trees) == 1
        process.close()

    def test_make_executor(self, setup):
        graph, *_ = setup
        oracle = CostDistanceSolver()
        assert isinstance(
            make_executor("serial", graph, oracle, BifurcationModel(), 0),
            SerialExecutor,
        )
        assert isinstance(
            make_executor("process", graph, oracle, BifurcationModel(), 0),
            ProcessExecutor,
        )
        with pytest.raises(ValueError):
            make_executor("thread", graph, oracle, BifurcationModel(), 0)

    def test_close_is_idempotent(self, setup):
        graph, tasks, costs = setup
        process = ProcessExecutor(
            graph, CostDistanceSolver(), BifurcationModel(), 0, num_workers=2
        )
        process.route_batch(costs, tasks)
        process.close()
        process.close()

    def test_degrades_to_serial_when_pool_unavailable(self, setup, monkeypatch, caplog):
        """Sandboxed/no-fork environments log a warning and route in-process."""
        import logging
        import multiprocessing

        graph, tasks, costs = setup

        def broken_context(*args, **kwargs):
            raise OSError("forking is forbidden here")

        monkeypatch.setattr(multiprocessing, "get_context", broken_context)
        serial = SerialExecutor(graph, CostDistanceSolver(), BifurcationModel(), 0)
        expected = serial.route_batch(costs, tasks)
        with ProcessExecutor(
            graph, CostDistanceSolver(), BifurcationModel(), 0, num_workers=2
        ) as process:
            with caplog.at_level(logging.WARNING, logger="repro.obs.pool"):
                actual = process.route_batch(costs, tasks)
            degradations = [
                rec
                for rec in caplog.records
                if rec.name == "repro.obs.pool" and "degrades to in-process" in rec.getMessage()
            ]
            assert len(degradations) == 1
            assert process._pool is None
            caplog.clear()
            # The degradation is remembered: no second record, same trees.
            with caplog.at_level(logging.WARNING, logger="repro.obs.pool"):
                again = process.route_batch(costs, tasks)
            assert not [r for r in caplog.records if r.name == "repro.obs.pool"]
        for net_index, tree in expected.items():
            assert actual[net_index].edges == tree.edges
            assert again[net_index].edges == tree.edges


class TestCongestionSnapshot:
    def test_snapshot_is_frozen(self, small_graph):
        live = CongestionMap(small_graph)
        live.add_usage([0, 1])
        snap = live.snapshot()
        live.add_usage([0, 1, 2])
        assert snap.usage[2] == 0.0
        assert live.usage[2] > 0.0
        with pytest.raises(ValueError):
            snap.usage[0] = 99.0

    def test_snapshot_costs_match_map_costs(self, small_graph):
        live = CongestionMap(small_graph)
        live.add_usage(range(100), amount=5.0)
        prices = np.full(small_graph.num_edges, 1.5)
        snap = live.snapshot()
        assert np.array_equal(snap.edge_costs(prices), live.edge_costs(prices))

    def test_restore_and_delta(self, small_graph):
        live = CongestionMap(small_graph)
        live.add_usage([0])
        snap = live.snapshot()
        live.add_usage([5], amount=2.0)
        delta = live.delta_since(snap)
        assert delta[5] == pytest.approx(2.0)
        assert np.count_nonzero(delta) == 1
        live.restore(snap)
        assert np.array_equal(live.usage, snap.usage)

    def test_apply_tree_delta(self, small_graph):
        live = CongestionMap(small_graph)
        live.apply_tree_delta(None, [0, 1])
        before = live.usage.copy()
        live.apply_tree_delta([0, 1], [2, 3])
        assert live.usage[0] == 0.0 and live.usage[2] > 0.0
        live.apply_tree_delta([2, 3], [0, 1])
        assert np.allclose(live.usage, before)


class TestInstancePayload:
    def test_task_payload_roundtrip(self, instance_factory):
        """NetTask.payload (the production producer) feeds from_payload."""
        instance = instance_factory(num_sinks=3, dbif=2.0)
        task = NetTask(
            0,
            instance.root,
            tuple(instance.sinks),
            tuple(instance.weights),
            instance.name,
        )
        rebuilt = SteinerInstance.from_payload(
            instance.graph, task.payload(instance.cost, instance.bifurcation)
        )
        assert rebuilt.root == instance.root
        assert rebuilt.sinks == instance.sinks
        assert rebuilt.weights == instance.weights
        assert np.array_equal(rebuilt.cost, instance.cost)
        assert rebuilt.bifurcation == instance.bifurcation
        assert rebuilt.name == instance.name
        assert rebuilt.signature() == instance.signature()

    def test_signature_sensitivity(self, instance_factory):
        instance = instance_factory(num_sinks=3)
        base = instance.signature()
        assert instance.signature() == base  # deterministic
        bumped_cost = instance.cost.copy()
        bumped_cost[0] += 1.0
        assert instance.with_costs(bumped_cost).signature() != base
        heavier = instance_factory(num_sinks=3)
        heavier.weights[0] += 0.5
        assert heavier.signature() != base

    def test_region_restriction(self, instance_factory):
        instance = instance_factory(num_sinks=2)
        region = np.arange(10)
        base = instance.signature(region_edges=region)
        outside = instance.cost.copy()
        outside[-1] += 7.0  # far outside the region
        assert instance.with_costs(outside).signature(region_edges=region) == base
        inside = instance.cost.copy()
        inside[3] += 7.0
        assert instance.with_costs(inside).signature(region_edges=region) != base

    def test_signature_stable_across_equivalent_payload_round_trips(
        self, instance_factory
    ):
        """Equal-value payloads digest identically however they travelled:
        list vs. tuple containers, float32 vs. float64 cost dtypes, and a
        pickle round-trip (the process-backend wire format) all produce
        the same signature."""
        import pickle

        instance = instance_factory(num_sinks=3, dbif=2.0)
        task = NetTask(
            0, instance.root, tuple(instance.sinks), tuple(instance.weights)
        )
        payload = task.payload(instance.cost, instance.bifurcation)
        base = SteinerInstance.from_payload(instance.graph, payload).signature()

        listy = dict(payload)
        listy["sinks"] = list(payload["sinks"])
        listy["weights"] = list(payload["weights"])
        assert SteinerInstance.from_payload(instance.graph, listy).signature() == base

        downcast = dict(payload)
        downcast["cost"] = payload["cost"].astype(np.float32).astype(np.float64)
        assert (
            SteinerInstance.from_payload(instance.graph, downcast).signature() == base
        )

        pickled = pickle.loads(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        assert SteinerInstance.from_payload(instance.graph, pickled).signature() == base


class TestRerouteCache:
    @pytest.fixture()
    def cache(self, small_graph):
        boxes = [BoundingBox(0, 0, 4, 4), BoundingBox(6, 6, 9, 9)]
        return RerouteCache(small_graph, boxes, scope="bbox")

    def test_hit_after_store(self, cache, small_graph):
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        assert not cache.is_fresh(0, sig)
        cache.store(0, sig)
        assert cache.is_fresh(0, sig)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_far_away_cost_change_keeps_signature(self, cache, small_graph):
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        changed = costs.copy()
        # Bump an edge in the opposite grid corner, above the global minimum
        # so the A*-potential extra does not change either.
        corner_node = small_graph.node_index(9, 9, 0)
        edge_index = small_graph.adjacency[corner_node][0][0]
        changed[edge_index] += 3.0
        assert cache.signature(0, 0, [5], [0.2], changed, BifurcationModel()) == sig

    def test_nearby_cost_change_invalidates(self, cache, small_graph):
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        changed = costs.copy()
        edge_index = small_graph.adjacency[0][0][0]  # incident to node 0
        changed[edge_index] += 3.0
        assert cache.signature(0, 0, [5], [0.2], changed, BifurcationModel()) != sig

    def test_global_min_cost_drop_invalidates(self, cache, small_graph):
        """Lowering the cheapest routing edge anywhere shifts the oracle's A*
        potentials, so the signature must change even far from the net."""
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        changed = costs.copy()
        routing = np.flatnonzero(~small_graph.edge_is_via)
        changed[routing[-1]] *= 0.5
        assert cache.signature(0, 0, [5], [0.2], changed, BifurcationModel()) != sig

    def test_tree_edges_extend_region(self, cache, small_graph):
        costs = small_graph.base_cost_array()
        # Pick an edge outside box 0 and include it as a tree edge.
        corner_node = small_graph.node_index(9, 9, 0)
        edge_index = small_graph.adjacency[corner_node][0][0]
        sig = cache.signature(
            0, 0, [5], [0.2], costs, BifurcationModel(), tree_edges=[edge_index]
        )
        changed = costs.copy()
        changed[edge_index] += 3.0
        new_sig = cache.signature(
            0, 0, [5], [0.2], changed, BifurcationModel(), tree_edges=[edge_index]
        )
        assert new_sig != sig

    def test_invalidate(self, cache, small_graph):
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        cache.store(0, sig)
        cache.invalidate(0)
        assert not cache.is_fresh(0, sig)
        cache.store(0, sig)
        cache.store(1, sig)
        cache.invalidate()
        assert len(cache) == 0

    def test_invalidation_after_apply_tree_delta(self, cache, small_graph):
        """Congestion changes from another net's re-route dirty exactly the
        nets whose priced costs changed inside their bounding region."""
        congestion = CongestionMap(small_graph)
        costs = congestion.edge_costs()
        near = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        far_node = small_graph.node_index(9, 9, 0)
        far = cache.signature(
            1, far_node, [far_node], [0.2], costs, BifurcationModel()
        )
        cache.store(0, near)
        cache.store(1, far)
        # Re-route "another net" through the corner of box 0: push an edge
        # incident to node 0 far over its congestion threshold.
        edge_near_origin = small_graph.adjacency[0][0][0]
        capacity = float(small_graph.edge_capacity[edge_near_origin])
        congestion.apply_tree_delta(None, [edge_near_origin] * int(2 * capacity + 2))
        changed = congestion.edge_costs()
        assert not cache.is_fresh(
            0, cache.signature(0, 0, [5], [0.2], changed, BifurcationModel())
        )
        assert cache.is_fresh(
            1, cache.signature(1, far_node, [far_node], [0.2], changed, BifurcationModel())
        )
        # Ripping the tree back up restores the costs and the signature.
        congestion.apply_tree_delta([edge_near_origin] * int(2 * capacity + 2), None)
        restored = congestion.edge_costs()
        assert cache.is_fresh(
            0, cache.signature(0, 0, [5], [0.2], restored, BifurcationModel())
        )

    def test_global_scope_digests_everything(self, small_graph):
        cache = RerouteCache(
            small_graph, [BoundingBox(0, 0, 2, 2)], scope="global"
        )
        costs = small_graph.base_cost_array()
        sig = cache.signature(0, 0, [5], [0.2], costs, BifurcationModel())
        changed = costs.copy()
        changed[-1] += 3.0  # anywhere at all
        assert cache.signature(0, 0, [5], [0.2], changed, BifurcationModel()) != sig

    def test_unknown_scope_rejected(self, small_graph):
        with pytest.raises(ValueError):
            RerouteCache(small_graph, [], scope="galaxy")


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(scheduling="nope")
        with pytest.raises(ValueError):
            EngineConfig(cache_scope="nope")
        with pytest.raises(ValueError):
            EngineConfig(bbox_halo=-1)
        with pytest.raises(ValueError):
            EngineConfig(num_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(max_batch_size=0)

    def test_unknown_backend_rejected_at_router_construction(self):
        graph = build_grid_graph(10, 10, 4)
        with pytest.raises(ValueError):
            GlobalRouter(
                graph,
                tiny_netlist(),
                CostDistanceSolver(),
                GlobalRouterConfig(engine=EngineConfig(backend="gpu")),
            )


class TestEngineIntegration:
    DIMS = (10, 10, 4)

    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_router(self.DIMS, EngineConfig())

    def test_serial_baseline_routes_everything(self, serial_result):
        router, result = serial_result
        assert all(tree is not None for tree in router.trees)
        assert result.num_nets == 4
        reports = router.engine.round_reports
        assert [r.nets_routed for r in reports] == [4, 4]

    def test_process_backend_parity(self, serial_result):
        _, expected = serial_result
        _, actual = run_router(
            self.DIMS, EngineConfig(backend="process", num_workers=2)
        )
        assert result_key(actual) == result_key(expected)

    def test_cache_parity_and_hits(self, serial_result):
        _, expected = serial_result
        two_round = run_router(self.DIMS, EngineConfig(reroute_cache=True))[1]
        assert result_key(two_round) == result_key(expected)
        router, _ = run_router(
            self.DIMS, EngineConfig(reroute_cache=True), num_rounds=3
        )
        assert router.engine.cache is not None
        assert router.engine.cache.stats.lookups > 0

    def test_cache_global_scope_parity(self, serial_result):
        _, expected = serial_result
        _, actual = run_router(
            self.DIMS, EngineConfig(reroute_cache=True, cache_scope="global")
        )
        assert result_key(actual) == result_key(expected)

    def test_bbox_scheduling_backend_parity(self):
        _, serial = run_router(self.DIMS, EngineConfig(scheduling="bbox"))
        _, process = run_router(
            self.DIMS,
            EngineConfig(scheduling="bbox", backend="process", num_workers=2),
        )
        assert result_key(serial) == result_key(process)

    def test_cache_scope_upgrades_for_nonlocal_oracles(self):
        """bbox scope is only honoured for oracles whose trees depend on
        region-local costs; others are upgraded to exact signatures."""
        from repro.baselines.shallow_light import ShallowLightOracle
        from repro.core.cost_distance import CostDistanceConfig

        graph = build_grid_graph(*self.DIMS)
        config = GlobalRouterConfig(engine=EngineConfig(reroute_cache=True))
        cases = [
            (CostDistanceSolver(), "bbox"),
            (CostDistanceSolver(CostDistanceConfig(num_landmarks=4)), "global"),
            (ShallowLightOracle(), "global"),
        ]
        for oracle, expected_scope in cases:
            router = GlobalRouter(graph, tiny_netlist(), oracle, config)
            assert router.engine.cache.scope == expected_scope, oracle.name

    def test_record_instances_through_engine(self):
        router, _ = run_router(self.DIMS, EngineConfig(), record=True)
        assert len(router.collected_instances) == 4
        for instance in router.collected_instances:
            assert instance.graph is router.graph

    def test_record_instances_with_cache(self):
        router, _ = run_router(
            self.DIMS, EngineConfig(reroute_cache=True), record=True
        )
        assert len(router.collected_instances) == 4

    def test_route_single_net_uses_stable_rng(self):
        graph = build_grid_graph(*self.DIMS)
        router_a = GlobalRouter(graph, tiny_netlist(), CostDistanceSolver())
        router_b = GlobalRouter(graph, tiny_netlist(), CostDistanceSolver())
        tree_a = router_a.route_single_net(0)
        tree_b = router_b.route_single_net(0)
        assert tree_a.edges == tree_b.edges
