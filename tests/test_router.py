"""Tests for the netlist, resource sharing prices, and the global router."""

import numpy as np
import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.grid.congestion import CongestionMap
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.router.metrics import RoutingResult, format_result_row
from repro.router.netlist import Net, Netlist, Pin, Stage
from repro.router.resource_sharing import ResourceSharingConfig, ResourceSharingPrices
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.timing.sta import StaticTimingAnalysis


def tiny_netlist():
    nets = [
        Net("n0", Pin("n0:d", GridPoint(0, 0, 0)), [Pin("n0:s0", GridPoint(4, 1, 0)),
                                                    Pin("n0:s1", GridPoint(2, 5, 0))]),
        Net("n1", Pin("n1:d", GridPoint(4, 1, 0)), [Pin("n1:s0", GridPoint(7, 7, 0))]),
        Net("n2", Pin("n2:d", GridPoint(1, 6, 0)), [Pin("n2:s0", GridPoint(6, 3, 0))]),
    ]
    stages = [Stage(0, 0, 1, cell_delay=5.0)]
    return Netlist("tiny", nets, stages, clock_period=60.0)


class TestNetlist:
    def test_net_validation(self):
        with pytest.raises(ValueError):
            Net("bad", Pin("d", GridPoint(0, 0, 0)), [])

    def test_half_perimeter(self):
        net = tiny_netlist().nets[0]
        assert net.half_perimeter() == 4 + 5

    def test_stage_validation(self):
        nets = tiny_netlist().nets
        with pytest.raises(ValueError):
            Netlist("bad", nets, [Stage(0, 9, 1, 1.0)])
        with pytest.raises(ValueError):
            Netlist("bad", nets, [Stage(0, 0, 99, 1.0)])

    def test_endpoint_sinks(self):
        netlist = tiny_netlist()
        endpoints = set(netlist.endpoint_sinks())
        assert (0, 0) not in endpoints  # drives n1
        assert (0, 1) in endpoints
        assert (1, 0) in endpoints
        assert (2, 0) in endpoints

    def test_timing_graph_build(self):
        netlist = tiny_netlist()
        sta = netlist.timing_graph()
        assert isinstance(sta, StaticTimingAnalysis)
        report = sta.analyze({0: [10.0, 10.0], 1: [10.0], 2: [10.0]})
        assert report.worst_slack == pytest.approx(60.0 - 25.0)

    def test_net_size_histogram(self):
        netlist = tiny_netlist()
        hist = netlist.net_size_histogram()
        assert hist["1-2"] == 3
        assert sum(hist.values()) == netlist.num_nets

    def test_validate_on_graph(self):
        netlist = tiny_netlist()
        graph = build_grid_graph(10, 10, 3)
        netlist.validate_on_graph(graph)
        small = build_grid_graph(3, 3, 3)
        with pytest.raises(ValueError):
            netlist.validate_on_graph(small)

    def test_net_terminals(self):
        netlist = tiny_netlist()
        graph = build_grid_graph(10, 10, 3)
        root, sinks = netlist.net_terminals(graph, 0)
        assert graph.node_point(root) == GridPoint(0, 0, 0)
        assert len(sinks) == 2


class TestResourceSharing:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResourceSharingConfig(edge_price_strength=-1)
        with pytest.raises(ValueError):
            ResourceSharingConfig(weight_smoothing=1.5)

    def test_initial_weights(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [2, 3])
        assert prices.weights_of(0) == [prices.config.base_delay_weight] * 2
        assert len(prices.weights_of(1)) == 3

    def test_edge_prices_grow_with_congestion(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [1])
        congestion = CongestionMap(small_graph)
        congestion.add_usage([0], amount=small_graph.edge_capacity[0] * 2)
        before = prices.edge_prices.copy()
        prices.update_edge_prices(congestion)
        assert prices.edge_prices[0] > before[0]
        assert prices.edge_prices[0] <= prices.config.max_edge_price
        # Uncongested edges keep price 1.
        assert prices.edge_prices[1] == pytest.approx(1.0)

    def test_delay_weights_increase_for_critical_sinks(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [2])
        report_like = type(
            "R", (), {"worst_slack": -10.0, "sink_slacks": {0: [-10.0, 50.0]}}
        )()
        before = prices.weights_of(0)
        prices.update_delay_weights(report_like)
        after = prices.weights_of(0)
        assert after[0] > before[0]
        assert after[0] > after[1]

    def test_edge_costs_include_prices(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [1])
        congestion = CongestionMap(small_graph)
        prices.edge_prices[:] = 2.0
        costs = prices.edge_costs(congestion)
        assert np.allclose(costs, 2.0 * small_graph.edge_base_cost)

    def test_total_edge_price_monotone(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [1])
        congestion = CongestionMap(small_graph)
        congestion.add_usage(range(50), amount=20.0)
        before = prices.total_edge_price()
        prices.update_edge_prices(congestion)
        assert prices.total_edge_price() >= before


class TestGlobalRouter:
    @pytest.fixture(scope="class")
    def routed(self):
        graph = build_grid_graph(10, 10, 4)
        netlist = tiny_netlist()
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(num_rounds=2)
        )
        result = router.run()
        return graph, netlist, router, result

    def test_all_nets_routed(self, routed):
        _, netlist, router, _ = routed
        assert all(tree is not None for tree in router.trees)
        for net_index, tree in enumerate(router.trees):
            tree.validate()

    def test_result_metrics_consistent(self, routed):
        graph, netlist, router, result = routed
        assert isinstance(result, RoutingResult)
        assert result.chip == "tiny"
        assert result.method == "CD"
        assert result.num_nets == netlist.num_nets
        assert result.wire_length == pytest.approx(
            sum(t.wire_length() for t in router.trees)
        )
        assert result.via_count == sum(t.via_count() for t in router.trees)
        assert result.walltime_seconds > 0
        assert 0 <= result.ace4 <= 200
        assert result.total_negative_slack <= 0

    def test_usage_matches_trees(self, routed):
        graph, _, router, _ = routed
        expected = np.zeros(graph.num_edges)
        for tree in router.trees:
            for e in tree.edges:
                expected[e] += graph.edge_base_cost[e]
        assert np.allclose(router.congestion.usage, expected)

    def test_format_result_row(self, routed):
        *_, result = routed
        row = format_result_row(result)
        assert "tiny" in row and "CD" in row and "ACE4" in row

    def test_record_instances(self):
        graph = build_grid_graph(10, 10, 4)
        netlist = tiny_netlist()
        router = GlobalRouter(
            graph,
            netlist,
            CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=2, record_instances=True),
        )
        router.run()
        assert len(router.collected_instances) == netlist.num_nets
        for instance in router.collected_instances:
            assert instance.graph is graph

    def test_route_single_net(self):
        graph = build_grid_graph(10, 10, 4)
        netlist = tiny_netlist()
        router = GlobalRouter(graph, netlist, RectilinearSteinerOracle())
        tree = router.route_single_net(0)
        tree.validate()
        assert tree.method == "L1"

    def test_dbif_none_uses_repeater_model(self):
        graph = build_grid_graph(8, 8, 4)
        netlist = tiny_netlist()
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(dbif=None)
        )
        assert router.bifurcation.dbif == pytest.approx(
            graph.delay_model.bifurcation_penalty()
        )
        assert router.bifurcation.enabled

    def test_deterministic_runs(self):
        graph = build_grid_graph(10, 10, 4)
        netlist = tiny_netlist()
        results = []
        for _ in range(2):
            router = GlobalRouter(
                graph, netlist, CostDistanceSolver(), GlobalRouterConfig(num_rounds=2)
            )
            results.append(router.run())
        assert results[0].wire_length == pytest.approx(results[1].wire_length)
        assert results[0].via_count == results[1].via_count
        assert results[0].worst_slack == pytest.approx(results[1].worst_slack)

    def test_pins_outside_graph_rejected(self):
        graph = build_grid_graph(3, 3, 3)
        with pytest.raises(ValueError):
            GlobalRouter(graph, tiny_netlist(), CostDistanceSolver())
