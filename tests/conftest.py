"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.grid.graph import build_grid_graph


@pytest.fixture(scope="session")
def small_graph():
    """A small 3D routing graph shared (read-only) by many tests."""
    return build_grid_graph(10, 10, 4)


@pytest.fixture(scope="session")
def medium_graph():
    """A medium routing graph for algorithm-quality tests."""
    return build_grid_graph(16, 16, 6)


def make_instance(graph, num_sinks, seed=0, dbif=0.0, eta=0.25, weight_range=(0.05, 1.5)):
    """Build a random Steiner instance on ``graph`` (helper, not a fixture)."""
    rng = random.Random(seed)
    root = graph.node_index(rng.randrange(graph.nx), rng.randrange(graph.ny), 0)
    sinks = [
        graph.node_index(rng.randrange(graph.nx), rng.randrange(graph.ny), 0)
        for _ in range(num_sinks)
    ]
    weights = [rng.uniform(*weight_range) for _ in range(num_sinks)]
    return SteinerInstance(
        graph=graph,
        root=root,
        sinks=sinks,
        weights=weights,
        cost=graph.base_cost_array(),
        delay=graph.delay_array(),
        bifurcation=BifurcationModel(dbif=dbif, eta=eta),
        name=f"test-{num_sinks}-{seed}",
    )


@pytest.fixture
def instance_factory(small_graph):
    """Factory fixture producing random instances on the small graph."""

    def factory(num_sinks, seed=0, dbif=0.0, eta=0.25):
        return make_instance(small_graph, num_sinks, seed=seed, dbif=dbif, eta=eta)

    return factory
