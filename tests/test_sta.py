"""Tests for the static timing analyser."""

import pytest

from repro.timing.sta import StaticTimingAnalysis


class TestStructure:
    def test_invalid_indices_rejected(self):
        sta = StaticTimingAnalysis([2, 1])
        with pytest.raises(IndexError):
            sta.add_stage(5, 0, 1, 1.0)
        with pytest.raises(IndexError):
            sta.add_stage(0, 5, 1, 1.0)
        with pytest.raises(IndexError):
            sta.set_endpoint(0, 9, 100.0)
        with pytest.raises(ValueError):
            sta.add_stage(0, 0, 1, -1.0)

    def test_cycle_detection(self):
        sta = StaticTimingAnalysis([1, 1])
        sta.add_stage(0, 0, 1, 1.0)
        sta.add_stage(1, 0, 0, 1.0)
        with pytest.raises(ValueError):
            sta.topological_order()

    def test_topological_order(self):
        sta = StaticTimingAnalysis([1, 1, 1])
        sta.add_stage(0, 0, 1, 1.0)
        sta.add_stage(1, 0, 2, 1.0)
        order = sta.topological_order()
        assert order.index(0) < order.index(1) < order.index(2)


class TestAnalysis:
    def test_single_net_slack(self):
        sta = StaticTimingAnalysis([1])
        sta.set_endpoint(0, 0, required=100.0)
        report = sta.analyze({0: [30.0]})
        assert report.sink_arrivals[0][0] == pytest.approx(30.0)
        assert report.slack(0, 0) == pytest.approx(70.0)
        assert report.worst_slack == pytest.approx(70.0)
        assert report.total_negative_slack == 0.0

    def test_negative_slack_and_tns(self):
        sta = StaticTimingAnalysis([1, 1])
        sta.set_endpoint(0, 0, required=10.0)
        sta.set_endpoint(1, 0, required=10.0)
        report = sta.analyze({0: [25.0], 1: [12.0]})
        assert report.worst_slack == pytest.approx(-15.0)
        assert report.total_negative_slack == pytest.approx(-17.0)

    def test_chain_propagation(self):
        """Two stages: arrival accumulates net delay + cell delay."""
        sta = StaticTimingAnalysis([1, 1])
        sta.add_stage(0, 0, 1, cell_delay=5.0)
        sta.set_endpoint(1, 0, required=100.0)
        report = sta.analyze({0: [20.0], 1: [30.0]})
        assert report.sink_arrivals[1][0] == pytest.approx(20.0 + 5.0 + 30.0)
        assert report.slack(1, 0) == pytest.approx(100.0 - 55.0)
        # The upstream sink inherits its required time from the endpoint.
        assert report.sink_required[0][0] == pytest.approx(100.0 - 30.0 - 5.0)
        assert report.slack(0, 0) == pytest.approx(report.slack(1, 0))

    def test_multi_fanin_takes_max_arrival(self):
        sta = StaticTimingAnalysis([1, 1, 1])
        sta.add_stage(0, 0, 2, cell_delay=1.0)
        sta.add_stage(1, 0, 2, cell_delay=1.0)
        sta.set_endpoint(2, 0, required=50.0)
        report = sta.analyze({0: [10.0], 1: [30.0], 2: [5.0]})
        assert report.sink_arrivals[2][0] == pytest.approx(30.0 + 1.0 + 5.0)

    def test_unconstrained_sinks_have_infinite_slack(self):
        sta = StaticTimingAnalysis([2])
        sta.set_endpoint(0, 0, required=10.0)
        report = sta.analyze({0: [1.0, 2.0]})
        assert report.slack(0, 1) == float("inf")
        assert report.worst_slack == pytest.approx(9.0)

    def test_driver_arrival_offset(self):
        sta = StaticTimingAnalysis([1])
        sta.set_driver_arrival(0, 15.0)
        sta.set_endpoint(0, 0, required=20.0)
        report = sta.analyze({0: [10.0]})
        assert report.slack(0, 0) == pytest.approx(-5.0)

    def test_missing_delays_default_to_zero(self):
        sta = StaticTimingAnalysis([1])
        sta.set_endpoint(0, 0, required=5.0)
        report = sta.analyze({})
        assert report.slack(0, 0) == pytest.approx(5.0)

    def test_wrong_delay_count_rejected(self):
        sta = StaticTimingAnalysis([2])
        sta.set_endpoint(0, 0, required=5.0)
        with pytest.raises(ValueError):
            sta.analyze({0: [1.0]})

    def test_no_endpoints_reports_zero_worst_slack(self):
        sta = StaticTimingAnalysis([1])
        report = sta.analyze({0: [3.0]})
        assert report.worst_slack == 0.0
        assert report.total_negative_slack == 0.0

    def test_diamond_required_time_is_minimum(self):
        """A sink feeding two endpoints gets the tighter required time."""
        sta = StaticTimingAnalysis([1, 1, 1])
        sta.add_stage(0, 0, 1, cell_delay=0.0)
        sta.add_stage(0, 0, 2, cell_delay=0.0)
        sta.set_endpoint(1, 0, required=40.0)
        sta.set_endpoint(2, 0, required=20.0)
        report = sta.analyze({0: [5.0], 1: [1.0], 2: [1.0]})
        assert report.sink_required[0][0] == pytest.approx(19.0)
