"""Tests for the Dijkstra helpers and the future-cost estimator."""

import numpy as np
import pytest

from repro.core.future_cost import FutureCostEstimator
from repro.core.shortest_path import dijkstra, multi_source_distances, shortest_path_edges
from repro.grid.geometry import l1_distance


class TestDijkstra:
    def test_single_source_distances(self, small_graph):
        g = small_graph
        lengths = [1.0] * g.num_edges
        source = g.node_index(0, 0, 0)
        dist, _ = dijkstra(g, lengths, {source: 0.0})
        assert dist[source] == 0.0
        # Unit lengths: distance equals the minimum number of edges (L1 within
        # a layer needs direction changes via other layers, so >= L1).
        target = g.node_index(3, 0, 0)
        assert dist[target] >= 3.0

    def test_respects_edge_lengths(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)
        target = g.node_index(5, 0, 0)
        cheap = np.zeros(g.num_edges)
        dist, _ = dijkstra(g, cheap, {source: 0.0}, targets=[target])
        assert dist[target] == 0.0

    def test_early_termination_with_targets(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)
        target = g.node_index(1, 0, 0)
        dist, _ = dijkstra(g, g.base_cost_array(), {source: 0.0}, targets=[target])
        # Early exit: far away corners should not all be labeled.
        assert len(dist) < g.num_nodes

    def test_multi_source_takes_minimum(self, small_graph):
        g = small_graph
        a = g.node_index(0, 0, 0)
        b = g.node_index(9, 9, 0)
        lengths = g.base_cost_array()
        dist, _ = dijkstra(g, lengths, {a: 0.0, b: 5.0})
        dist_a, _ = dijkstra(g, lengths, {a: 0.0})
        dist_b, _ = dijkstra(g, lengths, {b: 5.0})
        for node in [g.node_index(4, 4, 1), g.node_index(9, 0, 2)]:
            assert dist[node] == pytest.approx(min(dist_a[node], dist_b[node]))

    def test_negative_source_distance_rejected(self, small_graph):
        with pytest.raises(ValueError):
            dijkstra(small_graph, small_graph.base_cost_array(), {0: -1.0})

    def test_backtracking_path(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)
        target = g.node_index(4, 3, 1)
        lengths = g.base_cost_array()
        dist, parent = dijkstra(g, lengths, {source: 0.0}, targets=[target])
        path = shortest_path_edges(g, parent, {source}, target)
        assert sum(lengths[e] for e in path) == pytest.approx(dist[target])
        ends = set(g.path_endpoints(path))
        assert ends == {source, target}

    def test_backtracking_unreached_raises(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)

        def blocked(node):
            return node == source

        dist, parent = dijkstra(g, g.base_cost_array(), {source: 0.0}, node_filter=blocked)
        with pytest.raises(ValueError):
            shortest_path_edges(g, parent, {source}, g.node_index(5, 5, 0))

    def test_node_filter_restricts_search(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)

        def window(node):
            x, y = g.node_planar(node)
            return x <= 2 and y <= 2

        dist, _ = dijkstra(g, g.base_cost_array(), {source: 0.0}, node_filter=window)
        for node in dist:
            x, y = g.node_planar(node)
            assert x <= 2 and y <= 2

    def test_astar_with_admissible_heuristic_matches_dijkstra(self, small_graph):
        g = small_graph
        source = g.node_index(0, 0, 0)
        target = g.node_index(7, 6, 0)
        lengths = g.base_cost_array()
        min_cost = float(np.min(lengths[~g.edge_is_via]))
        tx, ty = g.node_planar(target)

        def heuristic(node):
            x, y = g.node_planar(node)
            return (abs(x - tx) + abs(y - ty)) * min_cost

        plain, _ = dijkstra(g, lengths, {source: 0.0}, targets=[target])
        astar, _ = dijkstra(g, lengths, {source: 0.0}, targets=[target], future_cost=heuristic)
        assert astar[target] == pytest.approx(plain[target])

    def test_multi_source_distances_dense(self, small_graph):
        g = small_graph
        dist = multi_source_distances(g, g.base_cost_array(), [0])
        assert dist.shape == (g.num_nodes,)
        assert dist[0] == 0.0
        assert np.all(np.isfinite(dist))


class TestFutureCostEstimator:
    def test_bounds_are_admissible(self, small_graph):
        g = small_graph
        estimator = FutureCostEstimator(g, num_landmarks=4, seed=1)
        lengths = g.base_cost_array()
        source = g.node_index(1, 1, 0)
        dist, _ = dijkstra(g, lengths, {source: 0.0})
        for target in [g.node_index(8, 8, 3), g.node_index(0, 9, 1), g.node_index(5, 2, 2)]:
            assert estimator.cost_lower_bound_between(source, target) <= dist[target] + 1e-9

    def test_delay_bound_admissible(self, small_graph):
        g = small_graph
        estimator = FutureCostEstimator(g, num_landmarks=0)
        delays = g.delay_array()
        source = g.node_index(0, 0, 0)
        dist, _ = dijkstra(g, delays, {source: 0.0})
        for target in [g.node_index(9, 9, 0), g.node_index(4, 6, 2)]:
            assert estimator.delay_lower_bound(source, target) <= dist[target] + 1e-9

    def test_combined_bound(self, small_graph):
        estimator = FutureCostEstimator(small_graph, num_landmarks=0)
        a = small_graph.node_index(0, 0, 0)
        b = small_graph.node_index(5, 5, 0)
        combined = estimator.combined_lower_bound(a, b, 2.0)
        assert combined == pytest.approx(
            estimator.cost_lower_bound_between(a, b) + 2.0 * estimator.delay_lower_bound(a, b)
        )

    def test_num_landmarks(self, small_graph):
        assert FutureCostEstimator(small_graph, num_landmarks=0).num_landmarks == 0
        assert FutureCostEstimator(small_graph, num_landmarks=5, seed=2).num_landmarks == 5

    def test_nearest_target_l1_exact_and_bbox(self, small_graph):
        g = small_graph
        estimator = FutureCostEstimator(g, num_landmarks=0)
        node = g.node_index(0, 0, 0)
        targets = [g.node_index(3, 4, 0), g.node_index(8, 1, 0)]
        exact = estimator.nearest_target_l1(node, targets)
        assert exact == 7
        # Bounding box bound is a lower bound on the exact distance.
        many_targets = [g.node_index(x, 5, 0) for x in range(10)]
        bbox = estimator.nearest_target_l1(node, many_targets, exact_limit=2)
        true_min = min(
            l1_distance(g.node_point(node), g.node_point(t)) for t in many_targets
        )
        assert bbox <= true_min

    def test_multi_target_potential_zero_at_target(self, small_graph):
        g = small_graph
        estimator = FutureCostEstimator(g, num_landmarks=0)
        target = g.node_index(4, 4, 0)
        assert estimator.multi_target_potential(target, [target], 1.0) == 0.0
        assert estimator.multi_target_potential(target, [], 1.0) == 0.0
