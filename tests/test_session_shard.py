"""Cross-backend equivalence battery for shard-aware ECO sessions.

PR 2 built incremental ECO re-routing (sessions replaying per-round
``RoundMemo`` logs) and PRs 3-4 built the sharded, region-parallel
coordinator -- but the two could not be combined (``RoutingSession``
rejected ``shards > 1``).  This battery locks down their composition:

* **the heart of the PR** -- an ECO replayed through a sharded session is
  bit-identical (every ``PARITY_FIELDS`` metric plus per-net trees) to a
  cold sharded re-route of the edited netlist, for random chips x ECO op
  sequences (move/add/remove nets) x K in {1, 2, 4} x region workers in
  {1, 2} x start methods,
* in parity mode (full-round cost window) the sharded replay additionally
  equals the cold *unsharded* route -- the triple equivalence,
* dirty-net oracle-call counts prove clean regions were *replayed*, not
  re-routed: an identity ECO replays every net of every round
  (``nets_rerouted == 0``) and the counts agree across region backends,
* memo remapping survives an ECO that removes a *seam* net (seam scope
  membership changes across the ECO) -- only interior removal was covered
  before,
* checkpoints carry the new per-region memo sections: same-K resumes
  restore the scope caches, parity-regime checkpoints resume under a
  *different* ``shards``/``shard_workers`` (including back to 1/1)
  bit-identically, and version-1 checkpoints are rejected with a clear
  error instead of restored with silently dropped state,
* the PR-2 "sessions require shards=1" guard is gone from the codebase.

Like ``tests/test_shard_parallel.py``, the randomized sweeps run a bounded
subset by default (one seed, ``fork`` only; the ``slow`` marker labels them
for ``-m "not slow"`` deselection) and widen under ``REPRO_TEST_SWEEP=1``.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.instances.eco import AddNet, MovePin, RemoveNet, RemoveSink, ReweightSink
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.metrics import PARITY_FIELDS
from repro.router.netlist import Net, Netlist, Pin
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import (
    CheckpointError,
    load_checkpoint,
    resume_router,
    save_checkpoint,
)
from repro.serve.session import RoutingSession

#: Wide-sweep opt-in (nightly-style): more seeds, every start method.
SWEEP = os.environ.get("REPRO_TEST_SWEEP") == "1"
SWEEP_SEEDS = (101, 202, 303) if SWEEP else (101,)
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]
SWEEP_START_METHODS = START_METHODS if SWEEP else START_METHODS[:1]

ROUNDS = 2


def random_design(seed, num_nets=20, nx=12, ny=12, layers=4):
    graph = build_grid_graph(nx, ny, layers)
    netlist = generate_netlist(
        graph,
        NetlistGeneratorConfig(num_nets=num_nets),
        seed=seed,
        name=f"rand{seed}",
    )
    return graph, netlist


def tree_key(trees):
    return [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges))
        for t in trees
    ]


def stage_free_net(netlist):
    """The first net that participates in no combinational stage (safe to
    remove via ECO)."""
    staged = {s.from_net for s in netlist.stages} | {s.to_net for s in netlist.stages}
    for index, net in enumerate(netlist.nets):
        if index not in staged:
            return net
    raise AssertionError("design has no stage-free net")


def eco_ops(kind, graph, netlist):
    """One of the battery's ECO op sequences against ``netlist``."""
    first = netlist.nets[0]
    sink = first.sinks[0]
    if kind == "move":
        return [
            MovePin(
                first.name, sink.name,
                (sink.position.x + 2) % graph.nx, sink.position.y,
                sink.position.layer,
            )
        ]
    if kind == "add_remove":
        victim = stage_free_net(netlist)
        return [
            AddNet(
                "eco_new",
                ("eco_new:d", 0, 0, 0),
                (("eco_new:s0", 2, 1, 0), ("eco_new:s1", 1, 3, 0)),
            ),
            RemoveNet(victim.name),
        ]
    if kind == "mixed":
        victim = stage_free_net(netlist)
        return [
            MovePin(
                first.name, sink.name,
                sink.position.x, (sink.position.y + 1) % graph.ny,
                sink.position.layer,
            ),
            RemoveNet(victim.name),
            AddNet(
                "eco_mix",
                ("eco_mix:d", graph.nx - 1, graph.ny - 1, 0),
                (("eco_mix:s0", graph.nx - 3, graph.ny - 2, 0),),
            ),
        ]
    raise ValueError(kind)


def cold_route(graph, netlist, config):
    """A from-scratch route of ``netlist`` under ``config`` (the sharded
    ECO parity reference)."""
    router = GlobalRouter(graph, netlist, CostDistanceSolver(), config)
    return router, router.run()


def assert_equivalent(session, report, cold_router, cold_result):
    for field in PARITY_FIELDS:
        assert getattr(report.result, field) == getattr(cold_result, field), field
    assert tree_key(session.router.trees) == tree_key(cold_router.trees)


class TestShardedEcoEquivalence:
    """sharded-ECO-replay == cold-sharded (== cold-unsharded in the parity
    regime), for every seed x ops x K x workers x start-method combination."""

    @pytest.mark.slow
    @pytest.mark.parametrize("start_method", SWEEP_START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("ops_kind", ["move", "add_remove", "mixed"])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_eco_replay_matches_cold_shard(
        self, seed, ops_kind, shards, workers, start_method
    ):
        graph, netlist = random_design(seed)
        config = GlobalRouterConfig(
            num_rounds=ROUNDS,
            shards=shards,
            shard_workers=workers,
            shard_start_method=start_method if shards > 1 and workers > 1 else None,
        )
        session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
        session.route()
        report = session.apply_eco(eco_ops(ops_kind, graph, netlist))
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, report, cold_router, cold_result)
        total = ROUNDS * session.num_nets
        assert report.nets_rerouted + report.nets_reused == total
        # Clean nets replayed without an oracle call -- the dirty closure of
        # these small deltas never covers the whole design.
        assert report.nets_reused > 0
        assert report.nets_rerouted < total

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_parity_mode_triple_equivalence(self, seed, shards, workers):
        """In shard_parity mode at a full-round cost window, the sharded
        session replay, the cold sharded route, and the cold *unsharded*
        route all agree bit for bit."""
        graph, netlist = random_design(seed)
        config = GlobalRouterConfig(
            num_rounds=ROUNDS,
            cost_refresh_interval=10**9,
            shards=shards,
            shard_parity=True,
            shard_workers=workers,
        )
        session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
        session.route()
        ops = eco_ops("move", graph, netlist)
        report = session.apply_eco(ops)
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, report, cold_router, cold_result)
        from dataclasses import replace

        plain_config = replace(session.config, shards=1, shard_workers=None)
        plain_router, plain_result = cold_route(graph, session.netlist, plain_config)
        for field in PARITY_FIELDS:
            assert getattr(report.result, field) == getattr(plain_result, field), field
        assert tree_key(session.router.trees) == tree_key(plain_router.trees)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_identity_eco_replays_every_region(self, workers):
        """The clean-region proof: an ECO that changes no instance replays
        every net of every round -- zero oracle calls across all regions,
        seam scopes, and the global seam engine, on both region backends."""
        graph, netlist = random_design(101)
        config = GlobalRouterConfig(num_rounds=ROUNDS, shards=4, shard_workers=workers)
        session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
        baseline = session.route()
        target = netlist.nets[0]
        base_weight = session.router.prices.config.base_delay_weight
        report = session.apply_eco(
            [ReweightSink(target.name, target.sinks[0].name, base_weight)]
        )
        assert report.nets_rerouted == 0
        assert report.nets_reused == ROUNDS * session.num_nets
        for field in PARITY_FIELDS:
            assert getattr(report.result, field) == getattr(baseline, field), field

    def test_replay_counts_agree_across_region_backends(self):
        """Replay flows bypass the inter-round cache bookkeeping, so the
        oracle-call counters -- not just the trees -- are identical between
        the serial region loop and the process pool."""
        graph, netlist = random_design(101)
        reports = {}
        for workers in (1, 2):
            config = GlobalRouterConfig(
                num_rounds=ROUNDS, shards=4, shard_workers=workers
            )
            session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
            session.route()
            report = session.apply_eco(eco_ops("move", graph, netlist))
            reports[workers] = report
        assert reports[1].nets_rerouted == reports[2].nets_rerouted
        assert reports[1].nets_reused == reports[2].nets_reused
        assert reports[1].rounds == reports[2].rounds
        for field in PARITY_FIELDS:
            assert getattr(reports[1].result, field) == getattr(
                reports[2].result, field
            ), field

    def test_successive_ecos_keep_amortising_through_shards(self):
        graph, netlist = random_design(101)
        config = GlobalRouterConfig(num_rounds=ROUNDS, shards=2)
        session = RoutingSession(graph, netlist, CostDistanceSolver(), config)
        session.route()
        first = session.apply_eco(eco_ops("move", graph, netlist))
        assert first.nets_reused > 0
        second = session.apply_eco(eco_ops("add_remove", graph, session.netlist))
        assert second.nets_reused > 0
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, second, cold_router, cold_result)


class TestSeamScopeMembershipChanges:
    """ECOs that edit *seam* nets: seam scope membership changes across the
    ECO and the remaining memos must still replay (tests/test_shard.py only
    covered interior removal)."""

    def seam_design(self):
        """A design with known seam nets: two nets spanning the K=2 cut
        (y = 8 on a 16-tall grid), plus interior nets in each region."""
        graph = build_grid_graph(16, 16, 4)
        nets = [
            # Interior to the bottom and top regions respectively.
            Net("bot0", Pin("bot0:d", GridPoint(1, 2, 0)),
                [Pin("bot0:s0", GridPoint(4, 5, 0))]),
            Net("bot1", Pin("bot1:d", GridPoint(10, 3, 0)),
                [Pin("bot1:s0", GridPoint(13, 6, 0))]),
            Net("top0", Pin("top0:d", GridPoint(2, 10, 0)),
                [Pin("top0:s0", GridPoint(5, 13, 0))]),
            Net("top1", Pin("top1:d", GridPoint(11, 9, 0)),
                [Pin("top1:s0", GridPoint(14, 12, 0))]),
            # Seam-crossing nets (driver below the cut, a sink above it).
            Net("seamA", Pin("seamA:d", GridPoint(4, 5, 0)),
                [Pin("seamA:s0", GridPoint(4, 11, 0))]),
            Net("seamB", Pin("seamB:d", GridPoint(9, 6, 0)),
                [Pin("seamB:s0", GridPoint(9, 12, 0)),
                 Pin("seamB:s1", GridPoint(11, 6, 0))]),
        ]
        return graph, Netlist("seamy", nets, [], clock_period=400.0)

    def make_session(self, graph, netlist, **overrides):
        config = GlobalRouterConfig(num_rounds=ROUNDS, shards=2, **overrides)
        return RoutingSession(graph, netlist, CostDistanceSolver(), config)

    def test_removing_a_seam_net_keeps_other_memos(self):
        graph, netlist = self.seam_design()
        session = self.make_session(graph, netlist)
        session.route()
        # Sanity: the design really classifies seam nets.
        assert session.router.engine.stats.seam_nets >= 2
        report = session.apply_eco([RemoveNet("seamA")])
        assert session.num_nets == 5
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, report, cold_router, cold_result)
        # The surviving nets -- including the other seam net -- replayed.
        assert report.nets_reused > 0

    def test_seam_net_becoming_interior_is_rerouted_not_misreplayed(self):
        """Removing the cut-crossing sink of a seam net moves the net into a
        region's interior scope: its old memo (recorded on a different
        scope/graph) must be dropped, not installed, and the result must
        still equal the cold sharded route."""
        graph, netlist = self.seam_design()
        session = self.make_session(graph, netlist)
        session.route()
        report = session.apply_eco([RemoveSink("seamB", "seamB:s0")])
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, report, cold_router, cold_result)
        # seamB itself was re-routed (scope changed), the rest replayed.
        assert report.nets_rerouted >= ROUNDS
        assert report.nets_reused > 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_seam_membership_change_on_the_region_pool(self, workers):
        graph, netlist = self.seam_design()
        session = self.make_session(graph, netlist, shard_workers=workers)
        session.route()
        report = session.apply_eco([RemoveNet("seamA")])
        cold_router, cold_result = cold_route(graph, session.netlist, session.config)
        assert_equivalent(session, report, cold_router, cold_result)


class TestShardedSessionCheckpoints:
    """The checkpoint schema's per-region memo sections (format version 2)."""

    def test_same_layout_resume_restores_scope_caches(self, tmp_path):
        """A fast-path sharded run with the re-route cache checkpoints its
        per-scope signatures and resumes bit-identically -- including the
        cache state, so the resumed rounds skip exactly like the
        uninterrupted ones."""
        from repro.engine.engine import EngineConfig

        graph, netlist = random_design(101)
        config = GlobalRouterConfig(
            num_rounds=3, shards=4,
            engine=EngineConfig(reroute_cache=True, cache_scope="global"),
        )
        uninterrupted = GlobalRouter(graph, netlist, CostDistanceSolver(), config)
        expected = uninterrupted.run()

        path = str(tmp_path / "shard.ckpt")

        def hook(router, round_index):
            if round_index == 1:
                save_checkpoint(router, path)

        first = GlobalRouter(graph, netlist, CostDistanceSolver(), config)
        first.run(on_round_end=hook)

        checkpoint = load_checkpoint(path)
        sections = checkpoint.state["region_cache_signatures"]
        assert sections is not None
        assert sections["layout"] == {"shards": 4, "parity": False}
        assert any(by_name for by_name in sections["scopes"].values())

        resumed = GlobalRouter(graph, netlist, CostDistanceSolver(), config)
        assert resume_router(resumed, path)
        assert resumed.rounds_completed == 2
        # The scope caches came back before any round ran.
        restored = [
            len(region.engine.cache)
            for region in resumed.engine.regions
            if region.engine.cache is not None
        ]
        assert restored and any(count > 0 for count in restored)
        result = resumed.run()
        for field in PARITY_FIELDS:
            assert getattr(result, field) == getattr(expected, field), field
        assert tree_key(resumed.trees) == tree_key(uninterrupted.trees)
        # The resumed rounds skip exactly like the uninterrupted flow's
        # final round -- the restored signatures made the cache state, not
        # just the trees, part of the resume.
        resumed_counts = [
            (r.nets_routed, r.nets_cached) for r in resumed.engine.round_reports
        ]
        uninterrupted_counts = [
            (r.nets_routed, r.nets_cached)
            for r in uninterrupted.engine.round_reports[-len(resumed_counts):]
        ]
        assert resumed_counts == uninterrupted_counts

    @pytest.mark.parametrize(
        "resume_shards,resume_workers", [(2, 1), (4, 1), (1, 1)]
    )
    def test_parity_checkpoint_resumes_across_layouts(
        self, tmp_path, resume_shards, resume_workers
    ):
        """A parity-regime checkpoint written under shards=4, workers=2
        resumes under a different decomposition -- including back to the
        plain unsharded engine (1/1) -- bit-identically."""
        graph, netlist = random_design(101)

        def config_for(shards, workers):
            return GlobalRouterConfig(
                num_rounds=3,
                cost_refresh_interval=10**9,
                shards=shards,
                shard_parity=shards > 1,
                shard_workers=None if workers == 1 else workers,
            )

        reference = GlobalRouter(
            graph, netlist, CostDistanceSolver(), config_for(1, 1)
        )
        expected = reference.run()

        path = str(tmp_path / "parity.ckpt")

        def hook(router, round_index):
            if round_index == 1:
                save_checkpoint(router, path)

        writer = GlobalRouter(graph, netlist, CostDistanceSolver(), config_for(4, 2))
        writer.run(on_round_end=hook)

        resumed = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            config_for(resume_shards, resume_workers),
        )
        assert resume_router(resumed, path)
        assert resumed.rounds_completed == 2
        result = resumed.run()
        for field in PARITY_FIELDS:
            assert getattr(result, field) == getattr(expected, field), field
        assert tree_key(resumed.trees) == tree_key(reference.trees)

    def test_version1_checkpoint_rejected_with_clear_error(self, tmp_path):
        """Old-version checkpoints lack the region memo sections; they must
        be rejected with a clear error, not restored into garbage."""
        graph, netlist = random_design(101)
        router = GlobalRouter(
            graph, netlist, CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=1, shards=2),
        )
        router.run()
        path = tmp_path / "old.ckpt"
        save_checkpoint(router, str(path))
        document = json.loads(path.read_text())
        document["version"] = 1
        document["state"].pop("region_cache_signatures", None)
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="version 1.*replay-memo"):
            load_checkpoint(str(path))


class TestOldGuardsGone:
    """The PR-2 shards=1 guards were *replaced by the real path*, not
    rephrased: their error messages must not survive anywhere in src/."""

    REMOVED_MESSAGES = (
        "does not carry replay memos",
        "route with shards=1 for ECO sessions",
        "sessions require an unsharded flow",
        "sessions and --shards are mutually exclusive",
    )

    def test_old_error_messages_gone_from_codebase(self):
        src_root = os.path.join(os.path.dirname(__file__), "..", "src")
        offenders = []
        for dirpath, _dirnames, filenames in os.walk(src_root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                file_path = os.path.join(dirpath, filename)
                with open(file_path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                for message in self.REMOVED_MESSAGES:
                    if message in text:
                        offenders.append((file_path, message))
        assert not offenders, offenders

    def test_sharded_session_constructs(self):
        graph, netlist = random_design(101, num_nets=8)
        session = RoutingSession(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(shards=2)
        )
        assert session.config.shards == 2
