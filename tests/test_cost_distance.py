"""Tests for the cost-distance Steiner tree algorithm (Algorithm 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceConfig, CostDistanceSolver
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree
from repro.core.shortest_path import dijkstra
from repro.grid.graph import build_grid_graph

from tests.conftest import make_instance


ALL_CONFIGS = {
    "default": CostDistanceConfig(),
    "plain": CostDistanceConfig.plain(),
    "no-discount": CostDistanceConfig(discount_components=False),
    "no-future-cost": CostDistanceConfig(use_future_costs=False),
    "no-placement": CostDistanceConfig(improved_steiner_placement=False),
    "flat-heap": CostDistanceConfig(use_two_level_heap=False),
    "landmarks": CostDistanceConfig(num_landmarks=3),
}


class TestBasics:
    def test_no_sinks_returns_empty_tree(self, small_graph):
        g = small_graph
        inst = SteinerInstance(g, 0, [], [], g.base_cost_array(), g.delay_array())
        tree = CostDistanceSolver().build(inst)
        assert len(tree) == 0
        tree.validate()

    def test_sink_equals_root(self, small_graph):
        g = small_graph
        root = g.node_index(2, 2, 0)
        inst = SteinerInstance(
            g, root, [root], [1.0], g.base_cost_array(), g.delay_array()
        )
        tree = CostDistanceSolver().build(inst)
        tree.validate()
        assert len(tree) == 0

    def test_single_sink_is_shortest_path(self, small_graph):
        """With one sink the optimum is a shortest path w.r.t. c + w*d."""
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(7, 5, 0)
        weight = 1.3
        inst = SteinerInstance(
            g, root, [sink], [weight], g.base_cost_array(), g.delay_array()
        )
        tree = CostDistanceSolver(CostDistanceConfig.plain()).build(inst)
        tree.validate()
        result = evaluate_tree(inst, tree)
        lengths = (inst.cost + weight * inst.delay).tolist()
        dist, _ = dijkstra(g, lengths, {root: 0.0}, targets=[sink])
        assert result.total == pytest.approx(dist[sink], rel=1e-9)

    def test_single_sink_enhanced_matches_optimum(self, small_graph):
        g = small_graph
        root = g.node_index(1, 8, 0)
        sink = g.node_index(8, 0, 0)
        weight = 0.4
        inst = SteinerInstance(
            g, root, [sink], [weight], g.base_cost_array(), g.delay_array()
        )
        tree = CostDistanceSolver().build(inst)
        result = evaluate_tree(inst, tree)
        lengths = (inst.cost + weight * inst.delay).tolist()
        dist, _ = dijkstra(g, lengths, {root: 0.0}, targets=[sink])
        assert result.total == pytest.approx(dist[sink], rel=1e-6)

    def test_duplicate_sinks_handled(self, small_graph):
        g = small_graph
        root = g.node_index(0, 0, 0)
        sink = g.node_index(5, 5, 0)
        inst = SteinerInstance(
            g, root, [sink, sink, sink], [0.5, 0.5, 0.5],
            g.base_cost_array(), g.delay_array(),
        )
        tree = CostDistanceSolver().build(inst)
        tree.validate()
        result = evaluate_tree(inst, tree)
        assert result.sink_delays[0] == pytest.approx(result.sink_delays[2])

    def test_oracle_name(self):
        assert CostDistanceSolver().name == "CD"


class TestAllConfigurations:
    @pytest.mark.parametrize("config_name", sorted(ALL_CONFIGS))
    @pytest.mark.parametrize("num_sinks", [2, 6, 15])
    def test_produces_valid_tree(self, medium_graph, config_name, num_sinks):
        inst = make_instance(medium_graph, num_sinks, seed=num_sinks, dbif=2.0)
        solver = CostDistanceSolver(ALL_CONFIGS[config_name])
        tree = solver.build(inst, random.Random(0))
        tree.validate()
        # Every sink must be reachable from the root inside the tree.
        evaluate_tree(inst, tree)

    @pytest.mark.parametrize("config_name", sorted(ALL_CONFIGS))
    def test_deterministic_given_seed(self, medium_graph, config_name):
        inst = make_instance(medium_graph, 8, seed=3, dbif=1.0)
        solver = CostDistanceSolver(ALL_CONFIGS[config_name])
        tree_a = solver.build(inst, random.Random(42))
        tree_b = solver.build(inst, random.Random(42))
        assert tree_a.edges == tree_b.edges

    def test_solver_uses_config_seed_without_rng(self, medium_graph):
        inst = make_instance(medium_graph, 6, seed=5)
        solver = CostDistanceSolver(CostDistanceConfig(seed=7))
        assert solver.build(inst).edges == solver.build(inst).edges


class TestSolveDetails:
    def test_iteration_count_matches_terminal_count(self, medium_graph):
        """Every iteration removes one active terminal, so the number of
        merges equals the number of distinct sink tiles."""
        inst = make_instance(medium_graph, 10, seed=2)
        distinct = len({s for s in inst.sinks if s != inst.root})
        result = CostDistanceSolver().solve_with_details(inst, random.Random(0))
        assert result.num_iterations == distinct
        assert len(result.merges) == distinct
        assert result.num_labels > 0

    def test_exactly_one_root_merge_per_component_chain(self, medium_graph):
        inst = make_instance(medium_graph, 12, seed=9)
        result = CostDistanceSolver().solve_with_details(inst, random.Random(1))
        root_merges = [m for m in result.merges if m.is_root_merge]
        sink_merges = [m for m in result.merges if not m.is_root_merge]
        assert len(root_merges) >= 1
        assert len(root_merges) + len(sink_merges) == result.num_iterations
        # The final merge always involves the root component.
        assert result.merges[-1].is_root_merge

    def test_trace_records_active_terminals(self, medium_graph):
        inst = make_instance(medium_graph, 5, seed=4)
        solver = CostDistanceSolver(CostDistanceConfig(record_trace=True))
        result = solver.solve_with_details(inst, random.Random(0))
        assert all(m.active_terminals is not None for m in result.merges)
        # Active count is non-increasing over iterations.
        counts = [m.active_after for m in result.merges]
        assert all(b <= a for a, b in zip(counts, counts[1:])) or len(counts) <= 1

    def test_steiner_position_on_merge_path_or_terminals(self, medium_graph):
        inst = make_instance(medium_graph, 8, seed=6)
        result = CostDistanceSolver().solve_with_details(inst, random.Random(0))
        g = medium_graph
        for merge in result.merges:
            if merge.is_root_merge:
                assert merge.steiner_node is None
            else:
                path_nodes = set()
                for e in merge.path_edges:
                    path_nodes.add(int(g.edge_u[e]))
                    path_nodes.add(int(g.edge_v[e]))
                allowed = path_nodes | {merge.source_node, merge.target_node}
                assert merge.steiner_node in allowed


class TestQuality:
    def test_plain_respects_log_t_bound_on_stars(self, medium_graph):
        """The expected guarantee is O(log t) * OPT; check a generous bound
        against a star lower bound (sum of shortest path distances is an
        upper bound on OPT; each individual path is a lower bound)."""
        inst = make_instance(medium_graph, 10, seed=8)
        tree = CostDistanceSolver(CostDistanceConfig.plain()).build(inst, random.Random(0))
        result = evaluate_tree(inst, tree)
        # Star upper bound on OPT.
        star_total = 0.0
        for sink, weight in zip(inst.sinks, inst.weights):
            lengths = (inst.cost + weight * inst.delay).tolist()
            dist, _ = dijkstra(inst.graph, lengths, {inst.root: 0.0}, targets=[sink])
            star_total += dist[sink]
        assert result.total <= star_total * 4.0

    def test_enhanced_no_worse_than_twice_plain_on_average(self, medium_graph):
        plain_total = 0.0
        enhanced_total = 0.0
        for seed in range(5):
            inst = make_instance(medium_graph, 9, seed=seed, dbif=1.0)
            plain = CostDistanceSolver(CostDistanceConfig.plain()).build(
                inst, random.Random(seed)
            )
            enhanced = CostDistanceSolver().build(inst, random.Random(seed))
            plain_total += evaluate_tree(inst, plain).total
            enhanced_total += evaluate_tree(inst, enhanced).total
        assert enhanced_total <= plain_total * 1.25

    def test_heavier_sink_gets_shorter_delay(self, medium_graph):
        """A sink with a huge delay weight should not have a much longer
        delay than its direct shortest-delay path."""
        g = medium_graph
        root = g.node_index(1, 1, 0)
        critical = g.node_index(14, 1, 0)
        others = [g.node_index(3, 12, 0), g.node_index(8, 14, 0), g.node_index(12, 9, 0)]
        sinks = [critical] + others
        weights = [50.0, 0.01, 0.01, 0.01]
        inst = SteinerInstance(
            g, root, sinks, weights, g.base_cost_array(), g.delay_array()
        )
        tree = CostDistanceSolver().build(inst, random.Random(0))
        result = evaluate_tree(inst, tree)
        delays = g.delay_array().tolist()
        dist, _ = dijkstra(g, delays, {root: 0.0}, targets=[critical])
        assert result.sink_delays[0] <= dist[critical] * 1.6

    def test_congestion_avoidance(self, medium_graph):
        """With a very expensive column, the tree avoids it when possible."""
        g = medium_graph
        cost = g.base_cost_array()
        expensive = []
        for e in range(g.num_edges):
            if g.edge_is_via[e]:
                continue
            x, _ = g.node_planar(int(g.edge_u[e]))
            if x == 8:
                cost[e] *= 50.0
                expensive.append(e)
        root = g.node_index(2, 2, 0)
        sinks = [g.node_index(5, 12, 0), g.node_index(3, 8, 0)]
        inst = SteinerInstance(g, root, sinks, [0.2, 0.2], cost, g.delay_array())
        tree = CostDistanceSolver().build(inst, random.Random(0))
        used_expensive = [e for e in tree.edges if e in set(expensive)]
        assert not used_expensive


class TestBifurcationBehaviour:
    def test_penalties_reduce_bifurcations_on_critical_path(self, medium_graph):
        """Figure 1 behaviour: with dbif > 0 the objective with penalties
        should be lower than simply re-evaluating the dbif=0 tree."""
        inst_pen = make_instance(medium_graph, 14, seed=12, dbif=6.0)
        inst_nopen = inst_pen.with_bifurcation(BifurcationModel.disabled())
        tree_nopen = CostDistanceSolver().build(inst_nopen, random.Random(0))
        tree_pen = CostDistanceSolver().build(inst_pen, random.Random(0))
        # Evaluate both trees under the penalised objective: the tree built
        # with penalties in mind must not be worse.
        cost_aware = evaluate_tree(inst_pen, tree_pen).total
        cost_unaware = evaluate_tree(inst_pen, tree_nopen).total
        assert cost_aware <= cost_unaware * 1.1

    def test_eta_zero_and_half_both_work(self, medium_graph):
        for eta in (0.0, 0.5):
            inst = make_instance(medium_graph, 7, seed=13, dbif=3.0, eta=eta)
            tree = CostDistanceSolver().build(inst, random.Random(0))
            tree.validate()
            evaluate_tree(inst, tree)


class TestPropertyBased:
    @given(
        num_sinks=st.integers(1, 12),
        seed=st.integers(0, 1000),
        dbif=st.sampled_from([0.0, 1.5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_always_returns_valid_spanning_tree(self, num_sinks, seed, dbif):
        graph = build_grid_graph(8, 8, 3)
        inst = make_instance(graph, num_sinks, seed=seed, dbif=dbif)
        tree = CostDistanceSolver().build(inst, random.Random(seed))
        tree.validate()
        result = evaluate_tree(inst, tree)
        assert result.total >= 0.0
        assert len(result.sink_delays) == num_sinks

    @given(num_sinks=st.integers(2, 10), seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_plain_and_enhanced_both_span(self, num_sinks, seed):
        graph = build_grid_graph(7, 7, 3)
        inst = make_instance(graph, num_sinks, seed=seed)
        for config in (CostDistanceConfig.plain(), CostDistanceConfig()):
            tree = CostDistanceSolver(config).build(inst, random.Random(seed))
            nodes = tree.node_set()
            assert inst.root in nodes
            for sink in inst.sinks:
                assert sink in nodes
