"""Parity battery and transport tests for the vectorized routing-state kernel.

The vectorized fast paths (numpy congestion kernels, the batch-level
:class:`~repro.core.costctx.OracleCostContext`, incremental cost digests,
shared-memory region-state transport) all promise **bit-exact** results --
any speedup that changes a single bit is a bug.  These tests drive the
vectorized kernel head-to-head against the retained scalar reference in
:mod:`repro.grid.reference` with exact float equality, plus regression
tests for the bugfixes that rode along (atomic ``remove_usage``, ``ace``
percent validation before the empty-input return, copy-free ndarray input).
"""

import numpy as np
import pytest

from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceSolver
from repro.core.costctx import OracleCostContext
from repro.core.future_cost import FutureCostEstimator
from repro.engine.cache import RerouteCache
from repro.engine.engine import EngineConfig
from repro.engine.scheduler import BoundingBox
from repro.grid import reference
from repro.grid.congestion import CongestionMap, _as_float_array, ace, ace4
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.router.netlist import Net, Netlist, Pin, Stage
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.shard.executor import (
    RegionTask,
    SharedRegionStateStore,
    _load_shared_state,
)


# ---------------------------------------------------------------- parity
class TestKernelParity:
    """Random edge-delta sequences: vectorized kernel vs scalar reference."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_delta_sequences(self, small_graph, seed):
        rng = np.random.default_rng(seed)
        vec = CongestionMap(small_graph)
        ref = CongestionMap(small_graph)
        applied = []  # (edges, amount) deltas currently on both maps
        for _ in range(60):
            op = int(rng.integers(0, 4))
            if op < 2 or not applied:
                # add: base-cost amounts (op 0) or explicit dyadic (op 1)
                edges = rng.integers(0, small_graph.num_edges, size=int(rng.integers(1, 32)))
                amount = None if op == 0 else float(rng.integers(1, 8)) * 0.25
                vec.add_usage(edges, amount=amount)
                reference.scalar_add_usage(ref, edges, amount)
                applied.append((edges, amount))
            elif op == 2:
                # remove a previously applied delta from both maps
                edges, amount = applied.pop(int(rng.integers(0, len(applied))))
                vec.remove_usage(edges, amount=amount)
                reference.scalar_remove_usage(ref, edges, amount)
            else:
                # tree-delta roundtrip through the convenience wrapper
                i = int(rng.integers(0, len(applied)))
                edges, amount = applied[i]
                if amount is None:
                    new = rng.integers(0, small_graph.num_edges, size=edges.size)
                    vec.apply_tree_delta(edges, new)
                    reference.scalar_remove_usage(ref, edges)
                    reference.scalar_add_usage(ref, new)
                    applied[i] = (new, None)
            assert np.array_equal(vec.usage, ref.usage)
        # Every derived metric must agree bit-for-bit, not approximately.
        prices = np.exp(rng.uniform(0.0, 0.5, size=small_graph.num_edges))
        assert np.array_equal(vec.edge_costs(), ref.edge_costs())
        assert np.array_equal(vec.edge_costs(prices), ref.edge_costs(prices))
        assert vec.overflow() == ref.overflow()
        assert np.array_equal(vec.wire_congestion(), ref.wire_congestion())
        assert vec.ace4() == ref.ace4()
        assert vec.ace4() == reference.scalar_ace4(list(vec.wire_congestion()))

    @pytest.mark.parametrize("seed", range(4))
    def test_ace_parity_on_random_values(self, seed):
        rng = np.random.default_rng(100 + seed)
        values = rng.uniform(0.0, 2.0, size=int(rng.integers(1, 400)))
        for percent in (0.5, 1.0, 2.0, 5.0, 37.5, 100.0):
            assert ace(values, percent) == reference.scalar_ace(values, percent)
        assert ace4(values) == reference.scalar_ace4(values)

    def test_tree_metrics_parity(self, small_graph):
        solver = CostDistanceSolver()
        from conftest import make_instance

        for seed in range(4):
            inst = make_instance(small_graph, num_sinks=4, seed=seed)
            tree = solver.solve(inst)
            cost = small_graph.base_cost_array()
            assert tree.wire_length() == reference.scalar_wire_length(tree)
            assert tree.via_count() == reference.scalar_via_count(tree)
            assert tree.congestion_cost(cost) == reference.scalar_congestion_cost(tree, cost)


# ---------------------------------------------- atomic remove regression
class TestAtomicRemove:
    def test_rejected_delta_leaves_map_unchanged(self, small_graph):
        cmap = CongestionMap(small_graph)
        cmap.add_usage([0, 1, 2])
        before = cmap.usage.copy()
        # Edge 1 is over-removed; edge 0 alone would have been fine.  The
        # old per-edge loop subtracted edge 0 before raising on edge 1.
        with pytest.raises(ValueError, match="edge 1"):
            cmap.remove_usage([0, 1, 1, 1])
        assert np.array_equal(cmap.usage, before)

    def test_scalar_reference_matches_atomic_semantics(self, small_graph):
        cmap = CongestionMap(small_graph)
        reference.scalar_add_usage(cmap, [0, 1, 2])
        before = cmap.usage.copy()
        with pytest.raises(ValueError, match="edge 1"):
            reference.scalar_remove_usage(cmap, [0, 1, 1, 1])
        assert np.array_equal(cmap.usage, before)

    def test_valid_removals_still_clamp_to_zero(self, small_graph):
        cmap = CongestionMap(small_graph)
        cmap.add_usage([3], amount=1.0)
        cmap.remove_usage([3], amount=1.0)
        assert cmap.usage[3] == 0.0


# ------------------------------------------------- ace input validation
class TestAceInputHandling:
    def test_invalid_percent_rejected_even_on_empty_input(self):
        # Regression: validation must run before the empty-input early
        # return -- ace([], 500) used to silently succeed.
        with pytest.raises(ValueError):
            ace([], 500)
        with pytest.raises(ValueError):
            ace([], 0.0)
        assert ace([], 50.0) == 0.0

    def test_float64_ndarray_is_not_copied(self):
        values = np.linspace(0.0, 1.0, 64)
        assert np.shares_memory(_as_float_array(values), values)

    def test_other_dtypes_are_converted(self):
        values = np.arange(8, dtype=np.int32)
        out = _as_float_array(values)
        assert out.dtype == np.float64
        assert np.array_equal(out, values.astype(np.float64))

    def test_ndarray_and_list_agree(self):
        values = np.linspace(0.0, 2.0, 97)
        assert ace(values, 5.0) == ace(list(values), 5.0)
        assert ace4(values) == ace4(list(values))


# ------------------------------------------------------ oracle context
class TestOracleCostContext:
    def test_identity_guard(self, small_graph):
        cost = small_graph.base_cost_array()
        ctx = OracleCostContext(small_graph, cost)
        assert ctx.covers(ctx.cost)
        assert not ctx.covers(ctx.cost.copy())

    def test_contiguous_float64_is_not_copied(self, small_graph):
        cost = np.ascontiguousarray(small_graph.base_cost_array(), dtype=np.float64)
        ctx = OracleCostContext(small_graph, cost)
        assert ctx.cost is cost

    def test_cost_floor_matches_cache_and_estimator(self, small_graph):
        cost = small_graph.base_cost_array() * 1.25
        ctx = OracleCostContext(small_graph, cost)
        cache = RerouteCache(small_graph, [])
        assert ctx.cost_floor() == cache.global_cost_floor(cost)
        est = FutureCostEstimator(small_graph, cost_lower_bound=ctx.cost, num_landmarks=0)
        assert ctx.cost_floor() == est.min_cost_per_tile

    def test_validate_rejects_negative(self, small_graph):
        cost = small_graph.base_cost_array()
        cost = cost.copy()
        cost[0] = -1.0
        ctx = OracleCostContext(small_graph, cost)
        with pytest.raises(ValueError):
            ctx.validate()

    def test_cost_list_is_memoised(self, small_graph):
        ctx = OracleCostContext(small_graph, small_graph.base_cost_array())
        assert ctx.cost_list() is ctx.cost_list()


# ------------------------------------------------- incremental digests
class TestIncrementalDigests:
    def test_global_digest_is_pure_function_of_vector(self, small_graph):
        v0 = small_graph.base_cost_array().copy()
        v1 = v0 * 1.5
        fresh = RerouteCache(small_graph, [])
        warmed = RerouteCache(small_graph, [])
        warmed.global_cost_digest(v0)  # different history
        assert warmed.global_cost_digest(v1) == fresh.global_cost_digest(v1)

    def test_global_digest_tracks_changes(self, small_graph):
        cache = RerouteCache(small_graph, [])
        v0 = small_graph.base_cost_array().copy()
        d0 = cache.global_cost_digest(v0)
        v1 = v0.copy()
        v1[7] *= 2.0
        assert cache.global_cost_digest(v1) != d0
        v2 = v0.copy()
        assert cache.global_cost_digest(v2) == d0

    def test_region_signature_ignores_far_edges(self, small_graph):
        cache = RerouteCache(small_graph, [BoundingBox(0, 0, 4, 4)])
        costs = small_graph.base_cost_array().copy()
        bif = BifurcationModel()

        def sig(c):
            return cache.signature(0, 0, [5], [0.2], c, bif)

        base = sig(costs)
        assert sig(costs) == base  # stable
        region = cache.region_edges(0)
        outside = np.setdiff1d(np.arange(small_graph.num_edges), region)
        assert outside.size and region.size
        far = costs.copy()
        far[outside[0]] *= 3.0
        assert sig(far) == base  # change outside the region: signature holds
        near = costs.copy()
        near[region[0]] *= 3.0
        assert sig(near) != base  # change inside the region: signature moves

    def test_incremental_signatures_history_independent(self, small_graph):
        box = BoundingBox(2, 2, 7, 7)
        bif = BifurcationModel()
        v0 = small_graph.base_cost_array().copy()
        v1 = v0 * 2.0
        warmed = RerouteCache(small_graph, [box])
        warmed.signature(0, 0, [5], [0.2], v0, bif)
        fresh = RerouteCache(small_graph, [box])
        assert warmed.signature(0, 0, [5], [0.2], v1, bif) == fresh.signature(
            0, 0, [5], [0.2], v1, bif
        )


# ------------------------------------------------- end-to-end parity
def _tiny_netlist():
    nets = [
        Net("n0", Pin("n0:d", GridPoint(0, 0, 0)),
            [Pin("n0:s0", GridPoint(4, 1, 0)), Pin("n0:s1", GridPoint(2, 5, 0))]),
        Net("n1", Pin("n1:d", GridPoint(4, 1, 0)), [Pin("n1:s0", GridPoint(7, 7, 0))]),
        Net("n2", Pin("n2:d", GridPoint(1, 6, 0)), [Pin("n2:s0", GridPoint(6, 3, 0))]),
        Net("n3", Pin("n3:d", GridPoint(8, 8, 0)), [Pin("n3:s0", GridPoint(9, 9, 0))]),
    ]
    stages = [Stage(0, 0, 1, cell_delay=5.0)]
    return Netlist("tiny", nets, stages, clock_period=60.0)


def _route_once(engine_config):
    graph = build_grid_graph(10, 10, 4)
    router = GlobalRouter(
        graph,
        _tiny_netlist(),
        CostDistanceSolver(),
        GlobalRouterConfig(num_rounds=3, engine=engine_config),
    )
    result = router.run()
    return (
        result.worst_slack,
        result.total_negative_slack,
        result.ace4,
        result.wire_length,
        result.via_count,
        result.overflow,
        result.objective,
    )


class TestReferenceKernelParity:
    @pytest.mark.parametrize(
        "config",
        [
            EngineConfig(scheduling="bbox", reroute_cache=True),
            EngineConfig(reroute_cache=True, cache_scope="global"),
        ],
        ids=["bbox-cache", "global-cache"],
    )
    def test_vectorized_and_reference_routes_identical(self, config):
        fast = _route_once(config)
        with reference.install_reference_kernel():
            slow = _route_once(config)
        assert fast == slow

    def test_install_reference_kernel_restores_patches(self):
        from repro.engine.executor import BatchExecutor

        add = CongestionMap.add_usage
        remove = CongestionMap.remove_usage
        make_context = BatchExecutor.make_context
        with reference.install_reference_kernel():
            assert CongestionMap.add_usage is not add
            assert RerouteCache.incremental_digests is False
        assert CongestionMap.add_usage is add
        assert CongestionMap.remove_usage is remove
        assert BatchExecutor.make_context is make_context
        assert RerouteCache.incremental_digests is True


# ---------------------------------------------- shared-memory transport
class TestSharedMemoryTransport:
    def test_publish_roundtrip_and_reuse(self):
        store = SharedRegionStateStore()
        usage = np.arange(16, dtype=np.float64)
        prices = np.ones(16, dtype=np.float64) * 2.5
        ref = store.publish("r0", usage, prices)
        if ref is None:
            pytest.skip("shared memory unavailable in this sandbox")
        try:
            got_usage, got_prices = _load_shared_state(ref)
            assert np.array_equal(got_usage, usage)
            assert np.array_equal(got_prices, prices)
            # Second publish reuses the same block and overwrites in place.
            ref2 = store.publish("r0", usage * 3.0, prices * 0.5)
            assert ref2 == ref
            got_usage2, got_prices2 = _load_shared_state(ref2)
            assert np.array_equal(got_usage2, usage * 3.0)
            assert np.array_equal(got_prices2, prices * 0.5)
        finally:
            store.close()
        # After close() the block is unlinked: attaching must fail.
        with pytest.raises(Exception):
            _load_shared_state(ref)

    def test_region_task_resolves_either_transport(self):
        store = SharedRegionStateStore()
        usage = np.linspace(0.0, 1.0, 8)
        prices = np.linspace(1.0, 2.0, 8)
        ref = store.publish("r1", usage, prices)
        if ref is None:
            pytest.skip("shared memory unavailable in this sandbox")
        try:
            shm_task = RegionTask(
                key="r1", round_index=0, usage=None, edge_prices=None,
                weights=(), trees=(), state_ref=ref,
            )
            inline_task = RegionTask(
                key="r1", round_index=0, usage=usage, edge_prices=prices,
                weights=(), trees=(),
            )
            for task in (shm_task, inline_task):
                got_usage, got_prices = task.state()
                assert np.array_equal(got_usage, usage)
                assert np.array_equal(got_prices, prices)
        finally:
            store.close()

    def test_region_task_without_state_raises(self):
        task = RegionTask(
            key="r2", round_index=0, usage=None, edge_prices=None,
            weights=(), trees=(),
        )
        with pytest.raises(ValueError):
            task.state()

    def test_fallback_when_shared_memory_unavailable(self, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        def _broken(*args, **kwargs):
            raise OSError("no shm in this sandbox")

        monkeypatch.setattr(shm_mod, "SharedMemory", _broken)
        store = SharedRegionStateStore()
        usage = np.zeros(4)
        prices = np.zeros(4)
        assert store.publish("r3", usage, prices) is None
        assert store.available is False
        # Later publishes short-circuit without re-probing.
        assert store.publish("r4", usage, prices) is None
        store.close()

    def test_length_mismatch_falls_back_to_pickle(self):
        store = SharedRegionStateStore()
        assert store.publish("r5", np.zeros(4), np.zeros(5)) is None
        store.close()
