"""Focused tests for :class:`repro.router.resource_sharing.ResourceSharingPrices`.

Covers the price-update edge cases that the router tests only brush:
clamping at ``max_edge_price``, convergence of the smoothed delay-weight
updates, and the infinite-slack fallback to ``base_delay_weight``.
"""


import numpy as np
import pytest

from repro.grid.congestion import CongestionMap
from repro.router.resource_sharing import ResourceSharingConfig, ResourceSharingPrices
from repro.timing.sta import TimingReport


def report_like(worst_slack, sink_slacks):
    """A minimal object with the TimingReport fields the updates read."""
    return type("R", (), {"worst_slack": worst_slack, "sink_slacks": sink_slacks})()


class TestEdgePriceClamping:
    def test_prices_clamp_at_max_edge_price(self, small_graph):
        config = ResourceSharingConfig(edge_price_strength=5.0, max_edge_price=16.0)
        prices = ResourceSharingPrices(small_graph, [1], config)
        congestion = CongestionMap(small_graph)
        congestion.add_usage(
            range(small_graph.num_edges),
            amount=float(np.max(small_graph.edge_capacity)) * 50.0,
        )
        for _ in range(20):
            prices.update_edge_prices(congestion)
        assert np.all(prices.edge_prices <= config.max_edge_price + 1e-12)
        # A hopeless overflow drives every edge to the clamp exactly.
        assert np.all(prices.edge_prices == pytest.approx(config.max_edge_price))

    def test_price_component_bounded_under_hopeless_overflow(self, small_graph):
        """However many rounds a massive overflow persists, the multiplicative
        price contribution to the edge costs stays bounded by the clamp."""
        config = ResourceSharingConfig(max_edge_price=8.0)
        prices = ResourceSharingPrices(small_graph, [1], config)
        congestion = CongestionMap(small_graph)
        congestion.add_usage(range(small_graph.num_edges), amount=1e6)
        with np.errstate(over="ignore"):  # exp(huge) -> inf, then clamped
            for _ in range(50):
                prices.update_edge_prices(congestion)
        assert np.all(np.isfinite(prices.edge_prices))
        assert np.all(prices.edge_prices <= config.max_edge_price + 1e-12)
        # At a moderate congestion level the priced costs are the unpriced
        # costs scaled by at most the clamp.
        congestion.reset()
        congestion.add_usage(range(small_graph.num_edges), amount=1.0)
        priced = prices.edge_costs(congestion)
        unpriced = congestion.edge_costs()
        assert np.all(priced <= unpriced * config.max_edge_price + 1e-9)
        assert np.all(np.isfinite(priced))

    def test_uncongested_edges_never_move(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [1])
        congestion = CongestionMap(small_graph)  # empty usage
        for _ in range(5):
            prices.update_edge_prices(congestion)
        assert np.all(prices.edge_prices == pytest.approx(1.0))


class TestWeightSmoothing:
    def test_smoothing_converges_to_target(self, small_graph):
        """Repeated updates under a fixed report converge geometrically to the
        target weight implied by that report."""
        config = ResourceSharingConfig(weight_smoothing=0.5)
        prices = ResourceSharingPrices(small_graph, [1], config)
        report = report_like(-10.0, {0: [-10.0]})  # the sink is the worst slack
        target = config.base_delay_weight + config.critical_delay_weight * 1.0
        previous_gap = abs(prices.weights_of(0)[0] - target)
        for _ in range(40):
            prices.update_delay_weights(report)
            gap = abs(prices.weights_of(0)[0] - target)
            assert gap <= previous_gap * config.weight_smoothing + 1e-12
            previous_gap = gap
        assert prices.weights_of(0)[0] == pytest.approx(target, rel=1e-6)

    def test_smoothing_zero_keeps_old_weights(self, small_graph):
        config = ResourceSharingConfig(weight_smoothing=0.0)
        prices = ResourceSharingPrices(small_graph, [2], config)
        before = prices.weights_of(0)
        prices.update_delay_weights(report_like(-5.0, {0: [-5.0, 1.0]}))
        assert prices.weights_of(0) == before

    def test_smoothing_one_replaces_weights(self, small_graph):
        config = ResourceSharingConfig(weight_smoothing=1.0)
        prices = ResourceSharingPrices(small_graph, [1], config)
        prices.update_delay_weights(report_like(-10.0, {0: [-10.0]}))
        target = config.base_delay_weight + config.critical_delay_weight
        assert prices.weights_of(0)[0] == pytest.approx(target)

    def test_nets_without_slacks_keep_weights(self, small_graph):
        prices = ResourceSharingPrices(small_graph, [1, 1])
        before = prices.weights_of(1)
        prices.update_delay_weights(report_like(-5.0, {0: [-5.0]}))  # net 1 missing
        assert prices.weights_of(1) == before


class TestInfiniteSlackFallback:
    def test_infinite_slack_sink_falls_back_to_base_weight(self, small_graph):
        """A sink with no timing constraint relaxes to base_delay_weight even
        if it previously carried a large (critical) weight."""
        config = ResourceSharingConfig(weight_smoothing=1.0)
        prices = ResourceSharingPrices(small_graph, [2], config)
        prices.delay_weights[0] = [5.0, 5.0]
        report = report_like(-10.0, {0: [float("inf"), -10.0]})
        prices.update_delay_weights(report)
        after = prices.weights_of(0)
        assert after[0] == pytest.approx(config.base_delay_weight)
        assert after[1] > config.base_delay_weight

    def test_infinite_slack_converges_under_partial_smoothing(self, small_graph):
        config = ResourceSharingConfig(weight_smoothing=0.7)
        prices = ResourceSharingPrices(small_graph, [1], config)
        prices.delay_weights[0] = [3.0]
        report = report_like(-1.0, {0: [float("inf")]})
        for _ in range(60):
            prices.update_delay_weights(report)
        assert prices.weights_of(0)[0] == pytest.approx(config.base_delay_weight, rel=1e-6)

    def test_positive_slack_gets_mild_push_not_base(self, small_graph):
        """A finite small positive slack lands above the base weight (the
        near-critical nudge), unlike an unconstrained (inf-slack) sink."""
        config = ResourceSharingConfig(weight_smoothing=1.0)
        prices = ResourceSharingPrices(small_graph, [2], config)
        report = report_like(-100.0, {0: [1.0, float("inf")]})
        prices.update_delay_weights(report)
        after = prices.weights_of(0)
        assert after[0] > config.base_delay_weight
        assert after[1] == pytest.approx(config.base_delay_weight)
