"""Tests for the layer stack, the repeater-chain model and the delay model."""


import pytest
from hypothesis import given, strategies as st

from repro.grid.layers import Layer, LayerStack, WireType, default_layer_stack
from repro.timing.delay import LinearDelayModel
from repro.timing.repeater import BufferParameters, RepeaterChainModel


class TestWireType:
    def test_default_wire_type(self):
        wt = WireType("1x")
        assert wt.width_factor == 1.0
        assert wt.resistance_scale() == 1.0

    def test_wide_wire_lower_resistance(self):
        wide = WireType("2x", width_factor=2.0, spacing_factor=1.5)
        assert wide.resistance_scale() == pytest.approx(0.5)
        assert wide.track_usage > WireType("1x").track_usage


class TestLayer:
    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            Layer(0, "M1", "X", 1.0, 1.0, 4)

    def test_non_positive_rc_rejected(self):
        with pytest.raises(ValueError):
            Layer(0, "M1", "H", 0.0, 1.0, 4)

    def test_wire_rc_scaling(self):
        layer = Layer(0, "M1", "H", 10.0, 2.0, 4,
                      wire_types=(WireType("1x"), WireType("2x", 2.0, 1.5, 1.2)))
        r1, c1 = layer.wire_rc(layer.wire_types[0])
        r2, c2 = layer.wire_rc(layer.wire_types[1])
        assert r2 == pytest.approx(r1 / 2)
        assert c2 == pytest.approx(c1 * 1.2)


class TestLayerStack:
    def test_default_stack_sizes(self):
        for n in (1, 7, 8, 9, 15):
            stack = default_layer_stack(n)
            assert stack.num_layers == n

    def test_default_stack_out_of_range(self):
        with pytest.raises(ValueError):
            default_layer_stack(16)
        with pytest.raises(ValueError):
            default_layer_stack(0)

    def test_directions_alternate(self):
        stack = default_layer_stack(8)
        directions = [layer.direction for layer in stack]
        assert all(d in ("H", "V") for d in directions)
        assert directions[0] != directions[1]

    def test_upper_layers_less_resistive(self):
        stack = default_layer_stack(15)
        assert stack[14].unit_resistance < stack[0].unit_resistance / 5

    def test_layer_by_name(self):
        stack = default_layer_stack(5)
        assert stack.layer_by_name("M3").index == 2
        with pytest.raises(KeyError):
            stack.layer_by_name("M99")

    def test_truncated(self):
        stack = default_layer_stack(15)
        assert stack.truncated(7).num_layers == 7
        with pytest.raises(ValueError):
            stack.truncated(0)

    def test_index_consistency_enforced(self):
        layers = default_layer_stack(3).layers
        with pytest.raises(ValueError):
            LayerStack([layers[1], layers[0], layers[2]])

    def test_wire_options_counts(self):
        stack = default_layer_stack(15)
        options = stack.wire_options()
        # 4 thin layers x1 + 8 mid layers x2 + 3 thick layers x3.
        assert len(options) == 4 * 1 + 8 * 2 + 3 * 3


class TestRepeaterChain:
    def test_invalid_buffer_rejected(self):
        with pytest.raises(ValueError):
            BufferParameters(drive_resistance=0.0)

    def test_optimal_spacing_minimises_per_unit_delay(self):
        stack = default_layer_stack(8)
        chain = RepeaterChainModel()
        layer = stack[2]
        wt = layer.wire_types[0]
        spacing = chain.optimal_spacing(layer, wt)
        best = chain.segment_delay(layer, wt, spacing) / spacing
        for factor in (0.5, 0.8, 1.25, 2.0):
            other = spacing * factor
            assert best <= chain.segment_delay(layer, wt, other) / other + 1e-9

    def test_delay_per_tile_decreases_on_upper_layers(self):
        stack = default_layer_stack(15)
        chain = RepeaterChainModel()
        low = chain.delay_per_tile(stack[0], stack[0].wire_types[0])
        high = chain.delay_per_tile(stack[14], stack[14].wire_types[0])
        assert high < low

    def test_wide_wire_not_slower_on_intermediate_layer(self):
        # On intermediate layers the wire resistance still dominates, so the
        # double-width wire type is at least as fast as the minimum width one.
        stack = default_layer_stack(15)
        chain = RepeaterChainModel()
        layer = stack[5]
        d1 = chain.delay_per_tile(layer, layer.wire_types[0])
        d2 = chain.delay_per_tile(layer, layer.wire_types[1])
        assert d2 <= d1 * 1.001

    def test_bifurcation_penalty_positive_and_minimal(self):
        stack = default_layer_stack(9)
        chain = RepeaterChainModel()
        dbif = chain.bifurcation_penalty(stack)
        assert dbif > 0
        for layer, wt in stack.wire_options():
            assert dbif <= chain.branch_delay_increase(layer, wt) + 1e-12

    def test_fastest_option_consistent(self):
        stack = default_layer_stack(12)
        chain = RepeaterChainModel()
        layer, wt, value = chain.fastest_option(stack)
        assert value == pytest.approx(chain.delay_per_tile(layer, wt))

    def test_negative_length_rejected(self):
        stack = default_layer_stack(3)
        chain = RepeaterChainModel()
        with pytest.raises(ValueError):
            chain.segment_delay(stack[0], stack[0].wire_types[0], -1.0)


class TestLinearDelayModel:
    def test_wire_delay_scales_with_length(self):
        model = LinearDelayModel(default_layer_stack(8))
        d1 = model.wire_delay(3, "1x", 1.0)
        d5 = model.wire_delay(3, "1x", 5.0)
        assert d5 == pytest.approx(5 * d1)

    def test_unknown_combination_raises(self):
        model = LinearDelayModel(default_layer_stack(8))
        with pytest.raises(KeyError):
            model.wire_delay(0, "4x", 1.0)
        with pytest.raises(KeyError):
            model.via_delay(99)

    def test_fastest_delay_is_global_minimum(self):
        model = LinearDelayModel(default_layer_stack(15))
        fastest = model.fastest_delay_per_tile()
        for layer in model.stack:
            for wt in layer.wire_types:
                assert fastest <= model.wire_delay(layer.index, wt.name) + 1e-12

    def test_bifurcation_penalty_matches_chain(self):
        stack = default_layer_stack(9)
        model = LinearDelayModel(stack)
        assert model.bifurcation_penalty() == pytest.approx(
            RepeaterChainModel().bifurcation_penalty(stack)
        )

    @given(st.integers(1, 15))
    def test_via_delay_positive_every_layer(self, n):
        model = LinearDelayModel(default_layer_stack(n))
        for layer in model.stack:
            assert model.via_delay(layer.index) > 0
