"""End-to-end integration tests across packages."""

import random

import pytest

from repro import (
    BifurcationModel,
    CostDistanceSolver,
    GlobalRouter,
    GlobalRouterConfig,
    PrimDijkstraOracle,
    RectilinearSteinerOracle,
    ShallowLightOracle,
    SteinerInstance,
    build_grid_graph,
    evaluate_tree,
    generate_steiner_instances,
)
from repro.analysis.experiments import run_instance_comparison
from repro.instances.chips import ChipSpec, build_chip


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow(self):
        """The README quickstart, as a test."""
        graph = build_grid_graph(12, 12, num_layers=6)
        root = graph.node_index(1, 1, 0)
        sinks = [graph.node_index(9, 2, 0), graph.node_index(4, 10, 0),
                 graph.node_index(10, 9, 0)]
        weights = [1.0, 0.3, 0.6]
        instance = SteinerInstance(
            graph, root, sinks, weights,
            cost=graph.base_cost_array(), delay=graph.delay_array(),
            bifurcation=BifurcationModel(dbif=3.0, eta=0.25),
        )
        tree = CostDistanceSolver().build(instance, random.Random(0))
        tree.validate()
        breakdown = evaluate_tree(instance, tree)
        assert breakdown.total > 0
        assert len(breakdown.sink_delays) == 3


class TestCrossMethodComparison:
    def test_all_methods_agree_on_two_pin_nets(self):
        """For a single sink every method embeds an optimal path, so all four
        objectives coincide."""
        graph = build_grid_graph(12, 12, 6)
        root = graph.node_index(2, 2, 0)
        sink = graph.node_index(9, 8, 0)
        instance = SteinerInstance(
            graph, root, [sink], [0.7],
            graph.base_cost_array(), graph.delay_array(),
        )
        totals = []
        for oracle in (RectilinearSteinerOracle(), ShallowLightOracle(),
                       PrimDijkstraOracle(), CostDistanceSolver()):
            tree = oracle.build(instance, random.Random(0))
            totals.append(evaluate_tree(instance, tree).total)
        assert max(totals) <= min(totals) * 1.02

    def test_cd_competitive_on_large_instances(self):
        """Paper Tables I/II shape: on instances with many sinks the
        cost-distance algorithm is competitive with the best baseline."""
        graph = build_grid_graph(14, 14, 6)
        instances = generate_steiner_instances(
            graph, 6, dbif=2.0, seed=17,
            size_distribution=((15, 29, 0.5), (30, 45, 0.5)),
        )
        rows = run_instance_comparison(instances)
        all_row = rows[-1]
        cd = all_row.average_increase["CD"]
        others = [all_row.average_increase[m] for m in ("L1", "SL", "PD")]
        # CD within a small margin of the best baseline on average.
        assert cd <= min(others) + 5.0


class TestEndToEndRouting:
    @pytest.mark.parametrize("dbif", [0.0, None])
    def test_router_with_cd_and_baseline(self, dbif):
        spec = ChipSpec("itest", 10, 10, 6, 12, seed=21)
        graph, netlist = build_chip(spec)
        results = {}
        for oracle in (CostDistanceSolver(), RectilinearSteinerOracle()):
            router = GlobalRouter(
                graph, netlist, oracle,
                GlobalRouterConfig(num_rounds=2, dbif=dbif),
            )
            results[oracle.name] = router.run()
        for result in results.values():
            assert result.wire_length > 0
            assert result.via_count > 0
            assert result.walltime_seconds > 0
        # Both methods route the same netlist.
        assert results["CD"].num_nets == results["L1"].num_nets

    def test_bifurcation_penalties_decrease_slack(self):
        """Paper observation: penalties increase delays, decreasing slacks."""
        spec = ChipSpec("itest2", 10, 10, 6, 10, seed=22)
        graph, netlist = build_chip(spec)
        slacks = {}
        for label, dbif in (("off", 0.0), ("on", None)):
            router = GlobalRouter(
                graph, netlist, CostDistanceSolver(),
                GlobalRouterConfig(num_rounds=1, dbif=dbif),
            )
            slacks[label] = router.run().worst_slack
        assert slacks["on"] <= slacks["off"] + 1e-6
