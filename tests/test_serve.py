"""Tests for the routing service layer (checkpoint, sessions, jobs, daemon)."""

import json

import pytest

from repro.core.cost_distance import CostDistanceSolver
from repro.engine.engine import EngineConfig
from repro.grid.geometry import GridPoint
from repro.grid.graph import build_grid_graph
from repro.instances.eco import (
    AddNet,
    AddSink,
    MovePin,
    RemoveNet,
    RemoveSink,
    ReweightSink,
    apply_eco,
    parse_ops,
)
from repro.router.metrics import RoutingResult
from repro.router.netlist import Net, Netlist, Pin, Stage
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import (
    CheckpointError,
    load_checkpoint,
    resume_router,
    save_checkpoint,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.jobs import JobState, JobStore
from repro.serve.session import RoutingSession


def tiny_netlist():
    nets = [
        Net("n0", Pin("n0:d", GridPoint(0, 0, 0)), [Pin("n0:s0", GridPoint(4, 1, 0)),
                                                    Pin("n0:s1", GridPoint(2, 5, 0))]),
        Net("n1", Pin("n1:d", GridPoint(4, 1, 0)), [Pin("n1:s0", GridPoint(7, 7, 0))]),
        Net("n2", Pin("n2:d", GridPoint(1, 6, 0)), [Pin("n2:s0", GridPoint(6, 3, 0))]),
        Net("n3", Pin("n3:d", GridPoint(8, 8, 0)), [Pin("n3:s0", GridPoint(9, 9, 0))]),
    ]
    stages = [Stage(0, 0, 1, cell_delay=5.0)]
    return Netlist("tiny", nets, stages, clock_period=60.0)


def result_key(result):
    return (
        result.worst_slack,
        result.total_negative_slack,
        result.ace4,
        result.wire_length,
        result.via_count,
        result.overflow,
        result.objective,
    )


def tree_key(trees):
    return [None if t is None else (t.root, tuple(t.sinks), tuple(t.edges)) for t in trees]


def make_router(num_rounds=4, engine=None, netlist=None):
    graph = build_grid_graph(10, 10, 4)
    return GlobalRouter(
        graph,
        netlist or tiny_netlist(),
        CostDistanceSolver(),
        GlobalRouterConfig(num_rounds=num_rounds, engine=engine or EngineConfig()),
    )


class TestResultRoundTrip:
    def test_json_schema_is_pinned(self):
        """The exact key set the service returns; changing it is an API break."""
        result = RoutingResult("c1", "CD", -1.5, -20.25, 88.07, 1234.5, 67, 0.5,
                               overflow=3.25, objective=99.125, num_nets=45)
        record = result.as_dict()
        assert sorted(record) == [
            "ACE4", "Nets", "Objective", "Overflow", "TNS", "Vias",
            "WL", "WS", "Walltime", "chip", "method",
        ]

    def test_round_trip_through_json(self):
        result = RoutingResult("c3", "SL", -0.1, -7.3, 91.22, 4321.0, 89, 12.75,
                               overflow=0.5, objective=17.0, num_nets=70)
        rebuilt = RoutingResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert rebuilt == result

    def test_from_dict_tolerates_old_records(self):
        record = RoutingResult("c1", "CD", 0.0, 0.0, 1.0, 2.0, 3, 4.0).as_dict()
        for legacy_missing in ("Overflow", "Objective", "Nets"):
            record.pop(legacy_missing)
        rebuilt = RoutingResult.from_dict(record)
        assert rebuilt.overflow == 0.0 and rebuilt.num_nets == 0


class TestCheckpoint:
    def test_save_load_restores_exact_state(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        router = make_router(num_rounds=3)

        def hook(r, round_index):
            if round_index == 1:
                save_checkpoint(r, path)

        router.run(on_round_end=hook)
        checkpoint = load_checkpoint(path)
        assert checkpoint.rounds_completed == 2
        other = make_router(num_rounds=3)
        checkpoint.restore(other)
        assert other.rounds_completed == 2
        assert (other.congestion.usage >= 0).all()

    def test_interrupted_run_resumes_bit_for_bit(self, tmp_path):
        """The acceptance criterion: kill mid-flow, resume, identical result."""
        path = str(tmp_path / "run.ckpt")
        uninterrupted = make_router(num_rounds=4)
        expected = uninterrupted.run()

        class Killed(Exception):
            pass

        def killer(r, round_index):
            save_checkpoint(r, path)
            if round_index == 1:
                raise Killed()

        interrupted = make_router(num_rounds=4)
        with pytest.raises(Killed):
            interrupted.run(on_round_end=killer)

        resumed = make_router(num_rounds=4)
        assert resume_router(resumed, path)
        assert resumed.rounds_completed == 2
        actual = resumed.run()
        assert result_key(actual) == result_key(expected)
        assert tree_key(resumed.trees) == tree_key(uninterrupted.trees)

    def test_resume_after_final_round_returns_metrics(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        router = make_router(num_rounds=2)
        expected = router.run(on_round_end=lambda r, i: save_checkpoint(r, path))
        resumed = make_router(num_rounds=2)
        assert resume_router(resumed, path)
        assert resumed.rounds_completed == 2
        assert result_key(resumed.run()) == result_key(expected)

    def test_checkpoint_with_cache_round_trips_signatures(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        engine = EngineConfig(reroute_cache=True, cache_scope="global")
        expected = make_router(num_rounds=4, engine=engine).run()
        interrupted = make_router(num_rounds=4, engine=engine)

        class Killed(Exception):
            pass

        def killer(r, round_index):
            save_checkpoint(r, path)
            if round_index == 2:
                raise Killed()

        with pytest.raises(Killed):
            interrupted.run(on_round_end=killer)
        resumed = make_router(num_rounds=4, engine=engine)
        assert resume_router(resumed, path)
        assert len(resumed.engine.cache.export_signatures()) == 4
        assert result_key(resumed.run()) == result_key(expected)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        router = make_router(num_rounds=2)
        router.run(on_round_end=lambda r, i: save_checkpoint(r, path))
        different_seed = GlobalRouter(
            build_grid_graph(10, 10, 4),
            tiny_netlist(),
            CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=2, seed=7),
        )
        with pytest.raises(CheckpointError, match="seed"):
            load_checkpoint(path).restore(different_seed)
        # Flow-shaping config differences are rejected too (a resumed run
        # is only bit-for-bit under the exact same round structure) ...
        different_scheduling = make_router(
            num_rounds=2, engine=EngineConfig(scheduling="bbox")
        )
        with pytest.raises(CheckpointError, match="scheduling"):
            load_checkpoint(path).restore(different_scheduling)
        # ... while the executor backend may change freely: every backend
        # produces identical trees.
        different_backend = make_router(
            num_rounds=2, engine=EngineConfig(backend="process", num_workers=2)
        )
        load_checkpoint(path).restore(different_backend)
        assert different_backend.rounds_completed == 2

    def test_unreadable_checkpoints_rejected(self, tmp_path):
        missing = str(tmp_path / "nope.ckpt")
        assert not resume_router(make_router(), missing)
        with pytest.raises(CheckpointError):
            load_checkpoint(missing)
        bad = tmp_path / "bad.ckpt"
        bad.write_text('{"format": "something-else"}')
        with pytest.raises(CheckpointError, match="repro-checkpoint"):
            load_checkpoint(str(bad))


class TestEcoOps:
    def test_parse_round_trip(self):
        ops = [
            MovePin("n0", "n0:s0", 3, 3, 0),
            AddSink("n1", "n1:s9", 2, 2, 0),
            RemoveSink("n0", "n0:s1"),
            AddNet("n9", ("n9:d", 1, 1, 0), (("n9:s0", 2, 2, 0),)),
            RemoveNet("n2"),
            ReweightSink("n1", "n1:s0", 1.25),
        ]
        assert parse_ops([op.as_dict() for op in ops]) == ops

    def test_parse_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown ECO op"):
            parse_ops([{"op": "teleport_net"}])

    def test_move_driver_and_sink(self):
        eco = apply_eco(
            tiny_netlist(),
            [MovePin("n3", "n3:d", 7, 7, 1), MovePin("n3", "n3:s0", 9, 8, 0)],
        )
        net = eco.netlist.nets[3]
        assert net.driver.position == GridPoint(7, 7, 1)
        assert net.sinks[0].position == GridPoint(9, 8, 0)
        assert eco.touched == ["n3"]
        assert eco.index_map == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_add_and_remove_sink(self):
        eco = apply_eco(tiny_netlist(), [AddSink("n3", "n3:s1", 9, 7, 0)])
        assert eco.netlist.nets[3].num_sinks == 2
        eco = apply_eco(eco.netlist, [RemoveSink("n3", "n3:s0")])
        assert [p.name for p in eco.netlist.nets[3].sinks] == ["n3:s1"]

    def test_remove_sink_guards(self):
        with pytest.raises(ValueError, match="last sink"):
            apply_eco(tiny_netlist(), [RemoveSink("n3", "n3:s0")])
        with pytest.raises(ValueError, match="drives a stage"):
            apply_eco(tiny_netlist(), [RemoveSink("n0", "n0:s0")])

    def test_remove_sink_reindexes_stages(self):
        netlist = tiny_netlist()
        netlist.stages[0] = Stage(0, 1, 1, cell_delay=5.0)  # n0:s1 drives n1
        eco = apply_eco(netlist, [RemoveSink("n0", "n0:s0")])
        assert eco.netlist.stages[0].from_sink == 0

    def test_add_net_appends(self):
        eco = apply_eco(
            tiny_netlist(),
            [AddNet("n4", ("n4:d", 5, 5, 0), (("n4:s0", 6, 6, 0), ("n4:s1", 5, 7, 0)))],
        )
        assert eco.netlist.num_nets == 5
        assert eco.netlist.nets[4].num_sinks == 2
        assert eco.index_map == {0: 0, 1: 1, 2: 2, 3: 3}
        with pytest.raises(ValueError, match="already exists"):
            apply_eco(eco.netlist, [AddNet("n4", ("x", 0, 0, 0), (("y", 1, 1, 0),))])

    def test_remove_net_shifts_indices(self):
        eco = apply_eco(tiny_netlist(), [RemoveNet("n2")])
        assert [net.name for net in eco.netlist.nets] == ["n0", "n1", "n3"]
        assert eco.index_map == {0: 0, 1: 1, 3: 2}
        with pytest.raises(ValueError, match="participates in a stage"):
            apply_eco(tiny_netlist(), [RemoveNet("n0")])

    def test_reweight_collects_overrides(self):
        eco = apply_eco(tiny_netlist(), [ReweightSink("n0", "n0:s1", 2.5)])
        assert eco.weight_overrides == {"n0": {1: 2.5}}
        assert eco.netlist.nets[0].num_sinks == 2  # netlist untouched
        with pytest.raises(ValueError, match="non-negative"):
            apply_eco(tiny_netlist(), [ReweightSink("n0", "n0:s1", -1.0)])

    def test_unknown_references_rejected(self):
        with pytest.raises(ValueError, match="unknown net"):
            apply_eco(tiny_netlist(), [MovePin("zz", "p", 0, 0, 0)])
        with pytest.raises(ValueError, match="unknown sink"):
            apply_eco(tiny_netlist(), [RemoveSink("n0", "zz")])

    def test_input_netlist_never_mutated(self):
        netlist = tiny_netlist()
        apply_eco(netlist, [MovePin("n3", "n3:s0", 9, 8, 0), RemoveNet("n2")])
        assert netlist.num_nets == 4
        assert netlist.nets[3].sinks[0].position == GridPoint(9, 9, 0)


def cold_route(netlist, config, weight_overrides=None):
    """A from-scratch route of ``netlist`` (the ECO parity reference)."""
    graph = build_grid_graph(10, 10, 4)
    router = GlobalRouter(graph, netlist, CostDistanceSolver(), config)
    for net_name, per_sink in (weight_overrides or {}).items():
        index = next(i for i, net in enumerate(netlist.nets) if net.name == net_name)
        for sink_index, weight in per_sink.items():
            router.prices.delay_weights[index][sink_index] = weight
    return router, router.run()


class TestRoutingSession:
    ROUNDS = 3

    def make_session(self):
        return RoutingSession(
            build_grid_graph(10, 10, 4),
            tiny_netlist(),
            CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=self.ROUNDS),
        )

    def test_forces_reroute_cache_on(self):
        session = self.make_session()
        assert session.config.engine.reroute_cache

    def test_eco_requires_initial_route(self):
        with pytest.raises(RuntimeError, match="route\\(\\) first"):
            self.make_session().apply_eco([MovePin("n3", "n3:s0", 9, 8, 0)])

    def test_move_pin_reroutes_only_dirty_closure(self):
        """The acceptance criterion: incremental counters + cold parity."""
        session = self.make_session()
        session.route()
        ops = [MovePin("n3", "n3:s0", 9, 8, 0)]
        report = session.apply_eco(ops)
        num_nets = session.num_nets
        # Only the dirty closure was re-routed; the far-away nets replayed.
        assert report.nets_reused > 0
        assert report.nets_rerouted < self.ROUNDS * num_nets
        assert report.nets_rerouted + report.nets_reused == self.ROUNDS * num_nets
        assert report.touched == ["n3"]
        # Metrics match a cold full re-route of the edited netlist.
        _, cold = cold_route(apply_eco(tiny_netlist(), ops).netlist, session.config)
        assert result_key(report.result) == result_key(cold)

    def test_eco_ops_accepted_as_wire_dicts(self):
        session = self.make_session()
        session.route()
        report = session.apply_eco([MovePin("n3", "n3:s0", 9, 8, 0).as_dict()])
        assert report.touched == ["n3"]

    def test_add_net_parity(self):
        session = self.make_session()
        session.route()
        ops = [AddNet("n4", ("n4:d", 0, 9, 0), (("n4:s0", 2, 9, 0),))]
        report = session.apply_eco(ops)
        assert session.num_nets == 5
        assert report.result.num_nets == 5
        _, cold = cold_route(apply_eco(tiny_netlist(), ops).netlist, session.config)
        assert result_key(report.result) == result_key(cold)

    def test_remove_net_parity(self):
        session = self.make_session()
        session.route()
        ops = [RemoveNet("n2")]
        report = session.apply_eco(ops)
        assert session.num_nets == 3
        _, cold = cold_route(apply_eco(tiny_netlist(), ops).netlist, session.config)
        assert result_key(report.result) == result_key(cold)

    def test_reweight_parity_and_persistence(self):
        session = self.make_session()
        session.route()
        ops = [ReweightSink("n0", "n0:s1", 1.75)]
        report = session.apply_eco(ops)
        assert session.weight_overrides == {"n0": {1: 1.75}}
        _, cold = cold_route(
            tiny_netlist(), session.config, weight_overrides={"n0": {1: 1.75}}
        )
        assert result_key(report.result) == result_key(cold)
        # The override sticks for subsequent flows of the session.
        second = session.apply_eco([MovePin("n3", "n3:s0", 9, 8, 0)])
        _, cold2 = cold_route(
            apply_eco(tiny_netlist(), [MovePin("n3", "n3:s0", 9, 8, 0)]).netlist,
            session.config,
            weight_overrides={"n0": {1: 1.75}},
        )
        assert result_key(second.result) == result_key(cold2)

    def test_successive_ecos_keep_amortising(self):
        session = self.make_session()
        session.route()
        session.apply_eco([MovePin("n3", "n3:s0", 9, 8, 0)])
        second = session.apply_eco([MovePin("n3", "n3:s0", 9, 9, 0)])
        assert second.nets_reused > 0
        assert session.generation == 3
        _, cold = cold_route(tiny_netlist(), session.config)
        assert result_key(second.result) == result_key(cold)  # moved back

    def test_cancelled_eco_leaves_session_untouched(self):
        """A delta is committed only after its re-route completes."""
        session = self.make_session()
        session.route()

        class Cancelled(Exception):
            pass

        def cancel_immediately(router, round_index):
            raise Cancelled()

        with pytest.raises(Cancelled):
            session.apply_eco(
                [AddSink("n3", "n3:s1", 9, 7, 0), ReweightSink("n0", "n0:s1", 2.0)],
                on_round_end=cancel_immediately,
            )
        assert session.netlist.nets[3].num_sinks == 1
        assert session.weight_overrides == {}
        assert session.generation == 1
        # The same ECO succeeds afterwards (nothing was half-applied).
        report = session.apply_eco([AddSink("n3", "n3:s1", 9, 7, 0)])
        assert session.netlist.nets[3].num_sinks == 2
        assert report.result.num_nets == 4

    def test_identity_eco_replays_everything(self):
        session = self.make_session()
        baseline = session.route()
        report = session.apply_eco([ReweightSink("n1", "n1:s0", 0.15)])
        # The "override" equals the base weight, so no instance changed:
        # every net of every round replays and the result is unchanged.
        assert report.nets_rerouted == 0
        assert report.nets_reused == self.ROUNDS * session.num_nets
        assert result_key(report.result) == result_key(baseline)


class TestJobStore:
    def test_lifecycle(self):
        store = JobStore()
        job = store.submit("route", {"chip": "c1"})
        assert job.status == JobState.QUEUED
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"answer": 42})
        final = store.get(job.job_id)
        assert final.status == JobState.DONE
        assert final.result == {"answer": 42}
        assert final.finished_at is not None

    def test_terminal_states_are_immutable(self):
        store = JobStore()
        job = store.submit("route", {})
        store.mark_cancelled(job.job_id)
        store.mark_done(job.job_id, {"late": True})
        assert store.get(job.job_id).status == JobState.CANCELLED

    def test_unknown_job_rejected(self):
        with pytest.raises(KeyError):
            JobStore().get("job-99999")

    def test_persistence_across_restarts(self, tmp_path):
        state_dir = str(tmp_path / "jobs")
        store = JobStore(state_dir)
        done = store.submit("route", {"chip": "c1"})
        store.mark_running(done.job_id)
        store.mark_done(done.job_id, {"ok": 1})
        interrupted = store.submit("route", {"chip": "c2"})
        store.mark_running(interrupted.job_id)

        reborn = JobStore(state_dir)
        assert reborn.get(done.job_id).status == JobState.DONE
        assert reborn.get(done.job_id).result == {"ok": 1}
        recovered = reborn.get(interrupted.job_id)
        assert recovered.status == JobState.FAILED
        assert "interrupted" in recovered.error
        # Fresh ids never collide with persisted ones.
        assert reborn.submit("route", {}).job_id not in (done.job_id, interrupted.job_id)


@pytest.fixture()
def daemon(tmp_path):
    daemon = ServeDaemon(port=0, job_workers=2, state_dir=str(tmp_path / "state"))
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.fixture()
def client(daemon):
    host, port = daemon.address
    client = ServeClient(host, port, timeout=30.0)
    client.wait_until_up()
    return client


class TestDaemon:
    def test_ping_and_unknown_op(self, client):
        pong = client.ping()
        assert pong["pong"] is True
        with pytest.raises(ServeError, match="unknown op"):
            client.request("warp")

    def test_route_job_end_to_end(self, client):
        job_id = client.submit_route(chip="c1", net_scale=0.1, rounds=1)
        job = client.wait(job_id, timeout=300.0)
        assert job["status"] == JobState.DONE
        record = job["result"]["result"]
        assert record["chip"] == "c1"
        result = RoutingResult.from_dict(record)
        assert result.num_nets == 10
        # status omits the payload, result carries it
        assert "result" not in client.status(job_id)

    def test_session_route_then_eco(self, client):
        job_id = client.submit_route(chip="c1", net_scale=0.1, rounds=2, session="s1")
        assert client.wait(job_id, timeout=300.0)["status"] == JobState.DONE
        assert client.sessions() == [{"name": "s1", "nets": 10, "generation": 1}]
        # A second route under the same session name fails its job.
        duplicate = client.wait(
            client.submit_route(chip="c1", net_scale=0.1, session="s1"), timeout=300.0
        )
        assert duplicate["status"] == JobState.FAILED
        assert "already exists" in duplicate["error"]
        eco_id = client.submit_eco(
            "s1", [{"op": "move_pin", "net": "n0", "pin": "n0:s0", "x": 1, "y": 1}]
        )
        eco_job = client.wait(eco_id, timeout=300.0)
        assert eco_job["status"] == JobState.DONE
        payload = eco_job["result"]
        assert payload["touched"] == ["n0"]
        assert payload["nets_reused"] > 0
        assert client.sessions()[0]["generation"] == 2

    def test_eco_against_unknown_session_fails(self, client):
        job_id = client.submit_eco("ghost", [{"op": "remove_net", "net": "n0"}])
        job = client.wait(job_id, timeout=60.0)
        assert job["status"] == JobState.FAILED
        assert "unknown session" in job["error"]

    def test_bad_chip_fails_cleanly(self, client):
        job_id = client.submit_route(chip="c99")
        job = client.wait(job_id, timeout=60.0)
        assert job["status"] == JobState.FAILED
        assert "unknown chip" in job["error"]

    def test_queued_job_cancellation(self, tmp_path):
        # One worker: the first job occupies it, the second stays queued
        # and must cancel deterministically.
        with ServeDaemon(port=0, job_workers=1) as daemon:
            host, port = daemon.start()
            client = ServeClient(host, port, timeout=30.0)
            client.wait_until_up()
            blocker = client.submit_route(chip="c1", net_scale=0.3, rounds=3)
            queued = client.submit_route(chip="c1", net_scale=0.3, rounds=3)
            status = client.cancel(queued)
            assert status in (JobState.CANCELLED, JobState.QUEUED)
            assert client.wait(queued, timeout=300.0)["status"] == JobState.CANCELLED
            assert client.wait(blocker, timeout=300.0)["status"] == JobState.DONE

    def test_jobs_listing(self, client):
        job_id = client.submit_route(chip="c1", net_scale=0.1, rounds=1)
        client.wait(job_id, timeout=300.0)
        listed = client.jobs()
        assert [job["job_id"] for job in listed] == [job_id]

    def test_malformed_request_line(self, daemon):
        import socket as socket_module

        host, port = daemon.address
        with socket_module.create_connection((host, port), timeout=10.0) as conn:
            conn.sendall(b"this is not json\n")
            with conn.makefile("r") as reader:
                response = json.loads(reader.readline())
        assert response["ok"] is False

    def test_client_error_when_daemon_unreachable(self):
        client = ServeClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            client.ping()
