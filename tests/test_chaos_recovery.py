"""Chaos battery: injected faults must never change a routed bit.

The recovery contract under test (see DESIGN.md, "Recovery contract"):

* a killed engine-pool or region-pool worker costs walltime, never
  correctness -- its lost tasks re-execute (fresh worker or in-process)
  on their original name-keyed RNG streams, so the merged round is
  bit-identical to the unfaulted run;
* a dropped region outcome is recomputed in-process, same guarantee;
* a crash after a checkpointed round resumes bit-identically, because the
  checkpoint is durably renamed before the ``crash-run`` choke point;
* a daemon restart re-adopts interrupted route jobs and re-runs them to
  the same result, resuming from their auto-checkpoint when one exists.

The randomized sweep runs a bounded subset by default and is widened by
``REPRO_TEST_SWEEP=1`` (more seeds, more fault rounds) for nightly runs.
"""

import json
import os

import pytest

from repro import faults
from repro.core.cost_distance import CostDistanceSolver
from repro.engine.engine import EngineConfig
from repro.engine.executor import ProcessExecutor, run_tasks_with_recovery
from repro.grid.graph import build_grid_graph
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.metrics import PARITY_FIELDS
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import checkpoint_hook, try_resume_router
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon

#: Wide-sweep opt-in (nightly-style): more seeds, more fault rounds.
SWEEP = os.environ.get("REPRO_TEST_SWEEP") == "1"
SWEEP_SEEDS = (101, 202, 303) if SWEEP else (101,)
FAULT_ROUNDS = (1, 2) if SWEEP else (2,)


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def random_design(seed, num_nets=20, nx=12, ny=12, layers=4):
    graph = build_grid_graph(nx, ny, layers)
    netlist = generate_netlist(
        graph, NetlistGeneratorConfig(num_nets=num_nets), seed=seed, name=f"rand{seed}"
    )
    return graph, netlist


def run_router(graph, netlist, **config):
    router = GlobalRouter(
        graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**config)
    )
    return router, router.run()


def tree_key(trees):
    return [
        None if t is None else (t.root, tuple(t.sinks), tuple(t.edges)) for t in trees
    ]


def assert_bit_identical(router_a, result_a, router_b, result_b):
    for field in PARITY_FIELDS:
        assert getattr(result_a, field) == getattr(result_b, field), field
    assert tree_key(router_a.trees) == tree_key(router_b.trees)


class TestFaultParityBattery:
    """seeds x K in {1, 2, 4} x fault rounds: killed workers and dropped
    outcomes leave PARITY_FIELDS and the per-net trees bit-identical."""

    @pytest.mark.slow
    @pytest.mark.parametrize("fault_round", FAULT_ROUNDS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_killed_worker_changes_nothing(self, seed, shards, fault_round):
        graph, netlist = random_design(seed)
        if shards == 1:
            # K=1 exercises the engine's batch pool (kill-pool-worker).
            clean_router, clean = run_router(graph, netlist, num_rounds=3)
            faults.install_plan(f"kill-pool-worker:round={fault_round}")
            chaos_router, chaos = run_router(
                graph,
                netlist,
                num_rounds=3,
                engine=EngineConfig(backend="process", num_workers=2),
            )
        else:
            # K>1 exercises the shard layer's region pool.
            clean_router, clean = run_router(
                graph, netlist, num_rounds=3, shards=shards
            )
            faults.install_plan(f"kill-region-worker:round={fault_round}")
            chaos_router, chaos = run_router(
                graph, netlist, num_rounds=3, shards=shards, shard_workers=2
            )
        assert_bit_identical(clean_router, clean, chaos_router, chaos)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_dropped_outcome_is_recomputed(self, seed):
        graph, netlist = random_design(seed)
        clean_router, clean = run_router(graph, netlist, num_rounds=2, shards=2)
        faults.install_plan("drop-outcome:round=1")
        chaos_router, chaos = run_router(
            graph, netlist, num_rounds=2, shards=2, shard_workers=2
        )
        assert_bit_identical(clean_router, clean, chaos_router, chaos)

    def test_slow_oracle_changes_nothing(self):
        graph, netlist = random_design(17, num_nets=12, nx=10, ny=10)
        clean_router, clean = run_router(graph, netlist, num_rounds=2)
        faults.install_plan("slow-oracle:ms=1")
        chaos_router, chaos = run_router(
            graph,
            netlist,
            num_rounds=2,
            engine=EngineConfig(backend="process", num_workers=2),
        )
        assert_bit_identical(clean_router, clean, chaos_router, chaos)


class _SimulatedCrash(BaseException):
    """Stops a run mid-flow the way a crash would, without killing pytest."""


class TestKillThenResume:
    """The ISSUE's acceptance scenario: a worker killed mid-round, an
    auto-checkpoint taken, the run interrupted, and the resumed run must
    land bit-identical to the unfaulted straight-through run."""

    @pytest.mark.slow
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_kill_checkpoint_resume_parity(self, tmp_path, seed, shards):
        graph, netlist = random_design(seed)
        rounds = 3
        interrupt_after = 1  # 0-based round whose checkpoint the resume uses
        path = str(tmp_path / f"chaos-{seed}-{shards}.ckpt")

        if shards == 1:
            clean_router, clean = run_router(graph, netlist, num_rounds=rounds)
            fault = "kill-pool-worker:round=2"
            chaos_config = dict(
                num_rounds=rounds, engine=EngineConfig(backend="process", num_workers=2)
            )
        else:
            clean_router, clean = run_router(
                graph, netlist, num_rounds=rounds, shards=shards
            )
            fault = "kill-region-worker:round=2"
            chaos_config = dict(num_rounds=rounds, shards=shards, shard_workers=2)

        save = checkpoint_hook(path)

        def hook(router, round_index):
            save(router, round_index)
            if round_index == interrupt_after:
                raise _SimulatedCrash

        faults.install_plan(fault)
        interrupted = GlobalRouter(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**chaos_config)
        )
        with pytest.raises(_SimulatedCrash):
            interrupted.run(on_round_end=hook)
        interrupted.engine.close()
        faults.clear_plan()

        resumed = GlobalRouter(
            graph, netlist, CostDistanceSolver(), GlobalRouterConfig(**chaos_config)
        )
        assert try_resume_router(resumed, path)
        assert resumed.rounds_completed == interrupt_after + 1
        result = resumed.run()
        assert_bit_identical(clean_router, clean, resumed, result)


class TestRecoveryMachinery:
    """Direct tests of run_tasks_with_recovery and executor teardown."""

    def _executor(self):
        from repro.core.bifurcation import BifurcationModel

        graph = build_grid_graph(6, 6, 2)
        return ProcessExecutor(
            graph,
            CostDistanceSolver(),
            BifurcationModel(dbif=0.0, eta=0.25),
            seed=0,
            num_workers=2,
        )

    def test_recovery_retries_when_every_worker_dies(self):
        executor = self._executor()
        pool = executor._ensure_pool()
        if pool is None:
            pytest.skip("no process pool available in this environment")
        try:

            def kill_all(pool):
                for process in list(pool._pool):
                    if process.exitcode is None:
                        os.kill(process.pid, 9)

            results, pool_broken = run_tasks_with_recovery(
                pool,
                _slow_square,
                [1, 2, 3],
                retry=lambda task: task * task,
                backend="process",
                sabotage=kill_all,
                stall_timeout=1.0,
            )
            assert sorted(results) == [1, 4, 9]
            assert pool_broken
        finally:
            executor._discard_pool()
            executor.close()

    def test_engine_executor_double_close(self):
        executor = self._executor()
        executor._ensure_pool()
        executor.close()
        executor.close()  # idempotent

    def test_region_executor_double_close_after_fault(self):
        """Close (twice) after a faulted round: no hang, no error."""
        from repro.shard.executor import ProcessRegionExecutor

        graph, netlist = random_design(23, num_nets=14)
        faults.install_plan("kill-region-worker:round=1")
        router = GlobalRouter(
            graph,
            netlist,
            CostDistanceSolver(),
            GlobalRouterConfig(num_rounds=1, shards=2, shard_workers=2),
        )
        try:
            router.run()
        finally:
            executor = router.engine.region_executor
            router.engine.close()
            router.engine.close()
        assert isinstance(executor, ProcessRegionExecutor)
        assert executor.closed


def _slow_square(task):
    # Slow enough that the sabotage kill (0.05 s after dispatch) lands
    # while the tasks are still in flight -- the recoverable scenario.
    import time

    time.sleep(0.5)
    return task * task


class TestDaemonReadoption:
    """A restarted daemon re-queues interrupted route jobs and re-runs
    them to the same result, resuming from their auto-checkpoint."""

    FIELDS = ("WS", "TNS", "ACE4", "WL", "Vias", "Overflow", "Objective")

    def _route_params(self):
        return dict(chip="c1", net_scale=0.1, rounds=3, checkpoint_every=1)

    def _run_to_done(self, state_dir, params):
        with ServeDaemon(port=0, job_workers=1, state_dir=state_dir) as daemon:
            host, port = daemon.start()
            client = ServeClient(host, port, timeout=30.0)
            client.wait_until_up()
            job_id = client.submit_route(**params)
            job = client.wait(job_id, timeout=120)
        assert job["status"] == "done"
        return job_id, job["result"]["result"]

    def _mark_interrupted(self, state_dir, job_id):
        path = os.path.join(state_dir, f"{job_id}.json")
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        record["status"] = "running"
        record["result"] = None
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)

    def test_readopted_job_reaches_same_result(self, tmp_path):
        state = str(tmp_path / "state")
        job_id, want = self._run_to_done(state, self._route_params())
        self._mark_interrupted(state, job_id)

        with ServeDaemon(port=0, job_workers=1, state_dir=state) as daemon:
            assert daemon.store.adopted_jobs == [job_id]
            host, port = daemon.start()
            client = ServeClient(host, port, timeout=30.0)
            client.wait_until_up()
            job = client.wait(job_id, timeout=120)
        assert job["status"] == "done"
        for field in self.FIELDS:
            assert job["result"]["result"][field] == want[field], field

    def test_corrupt_checkpoint_restarts_from_round_zero(self, tmp_path, caplog):
        import logging

        state = str(tmp_path / "state")
        job_id, want = self._run_to_done(state, self._route_params())
        self._mark_interrupted(state, job_id)
        with open(os.path.join(state, f"{job_id}.ckpt"), "w") as handle:
            handle.write('{"format": "repro-checkpoint", "version": 2, "fing')

        with caplog.at_level(logging.WARNING, logger="repro.serve.checkpoint"):
            with ServeDaemon(port=0, job_workers=1, state_dir=state) as daemon:
                host, port = daemon.start()
                client = ServeClient(host, port, timeout=30.0)
                client.wait_until_up()
                job = client.wait(job_id, timeout=120)
        assert job["status"] == "done"
        for field in self.FIELDS:
            assert job["result"]["result"][field] == want[field], field
        warnings = [
            rec
            for rec in caplog.records
            if "ignoring unusable checkpoint" in rec.getMessage()
        ]
        assert len(warnings) == 1

    def test_eco_jobs_are_not_adopted(self, tmp_path):
        """Interrupted ECO jobs fail on restart (their session died)."""
        from repro.serve.jobs import JobStore

        state = str(tmp_path / "state")
        store = JobStore(state_dir=state)
        job = store.submit("eco", {"session": "s1", "ops": []})
        store.mark_running(job.job_id)

        reloaded = JobStore(state_dir=state, adopt=True)
        assert reloaded.adopted_jobs == []
        assert reloaded.get(job.job_id).status == "failed"
