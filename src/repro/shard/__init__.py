"""Multi-region (sharded) divide-and-conquer routing.

The shard layer splits one huge design into K rectangular regions (see
:mod:`repro.grid.partition`), routes region-interior nets through
independent per-region engines, and stitches congestion at the seams: nets
whose bounding box spans two or more regions are routed in a global pass
against the merged per-region congestion deltas.

* :mod:`repro.shard.coordinator` -- :class:`ShardCoordinator`, a drop-in
  replacement for :class:`repro.engine.engine.RoutingEngine` selected by
  ``GlobalRouterConfig.shards > 1``.
"""

from repro.shard.coordinator import ShardCoordinator, ShardStats

__all__ = ["ShardCoordinator", "ShardStats"]
