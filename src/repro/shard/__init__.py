"""Multi-region (sharded) divide-and-conquer routing.

The shard layer splits one huge design into K rectangular regions (see
:mod:`repro.grid.partition`), routes region-interior nets through
independent per-region engines, and stitches congestion at the seams: nets
whose bounding box spans two or more regions are routed in a global pass
against the merged per-region congestion deltas.

* :mod:`repro.shard.coordinator` -- :class:`ShardCoordinator`, a drop-in
  replacement for :class:`repro.engine.engine.RoutingEngine` selected by
  ``GlobalRouterConfig.shards > 1``.
* :mod:`repro.shard.executor` -- :class:`RegionExecutor` backends running
  one round's K interior passes either serially in-process or fanned out
  over a process pool (``GlobalRouterConfig.shard_workers > 1``), with a
  bit-identical-results contract between the two.
"""

from repro.shard.coordinator import ShardCoordinator, ShardStats
from repro.shard.executor import (
    ProcessRegionExecutor,
    RegionExecutor,
    SerialRegionExecutor,
    make_region_executor,
)

__all__ = [
    "ShardCoordinator",
    "ShardStats",
    "RegionExecutor",
    "SerialRegionExecutor",
    "ProcessRegionExecutor",
    "make_region_executor",
]
