"""The shard coordinator: multi-region routing with seam stitching.

:class:`ShardCoordinator` is a drop-in replacement for the single-region
:class:`repro.engine.engine.RoutingEngine` (selected by
``GlobalRouterConfig.shards > 1``).  Each rip-up-and-re-route round becomes

1. **Interior pass** -- every region routes its interior nets through an
   independent :class:`~repro.engine.engine.RoutingEngine` against a private
   :class:`~repro.grid.congestion.CongestionMap` initialised from the
   round-start snapshot of the shared map.  Regions never see each other's
   in-round deltas, which is what makes the decomposition independent (and
   deterministic in region order).  The pass runs through a pluggable
   :class:`~repro.shard.executor.RegionExecutor`: in-process and serial by
   default, or fanned out over a process pool with
   ``GlobalRouterConfig.shard_workers > 1`` -- both backends are
   bit-identical because every region is a pure function of the round-start
   state and the deltas are stitched in fixed region order either way.
2. **Stitching** -- each region's usage delta (``delta_since`` the
   round-start snapshot) is added back onto the shared map, exactly like a
   batch of tree deltas.
3. **Seam pass** -- nets whose bounding box spans two or more regions are
   routed by a global engine against the stitched congestion, with the
   normal windowed cost refreshes.

Two interior execution modes:

* **fast** (default) -- interior nets are routed on *extracted region
  subgraphs*: a region's prism is itself a grid graph, so per-net work that
  scales with the edge count (instance construction, cost vector
  materialisation, A* bookkeeping) shrinks by roughly the region count.
  Routes are confined to their region's prism; quality drift shows up as a
  seam-overflow delta and is tracked by ``benchmarks/test_shard_scaling.py``.
* **parity** -- interior nets are routed on the full graph and *all* nets of
  a round (seam included) see the round-start snapshot.  Because per-net RNG
  streams are name-keyed and usage quanta are exact binary fractions, this
  mode reproduces the unsharded router at ``cost_refresh_interval >=
  num_nets`` bit for bit -- the verification harness for the shard
  machinery.

The coordinator is stateless between rounds beyond the shared map and the
global trees list, so checkpoint/resume through :class:`GlobalRouter` works
unchanged.  Replay memo logs (ECO sessions, see
:class:`repro.engine.cache.RoundMemo`) are carried through every pass:
``route_round`` receives the round's global memo, each scope (region
interiors, seam super-region scopes, the global seam engine) localises its
slice -- signatures are only comparable between identical scopes, and a
memo tree that no longer fits a scope's prism is dropped rather than
mis-installed -- and the freshly computed lookup signatures are merged back
into the round's log in fixed region order.  On the region pool the memos
travel inside :class:`~repro.shard.executor.RegionTask` /
:class:`~repro.shard.executor.RegionOutcome`; worker engines build their
signature caches lazily and invalidate them per task, so memo flows stay
round-stateless on every backend.  This is what lets
:class:`repro.serve.session.RoutingSession` drive a sharded engine: clean
regions replay their memos without an oracle call while only the dirty-net
closure re-routes, bit-identical to a cold sharded re-route of the edited
netlist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.engine.cache import RoundMemo
from repro.engine.engine import EngineConfig, RoundReport, RoutingEngine
from repro.engine.executor import BatchExecutor, make_executor
from repro.grid.congestion import CongestionMap, CongestionSnapshot
from repro.grid.graph import RoutingGraph, extract_prism
from repro.grid.partition import NetClassification, RegionPartition, partition_grid
from repro.grid.geometry import BoundingBox, GridPoint, bounding_box
from repro.shard.executor import (
    RegionExecutor,
    RegionOutcome,
    RegionTask,
    decode_tree,
    encode_tree,
    make_region_executor,
)

if TYPE_CHECKING:  # circular at runtime: repro.router imports the engine API
    from repro.router.resource_sharing import ResourceSharingPrices

from repro.router.netlist import Net, Netlist, Pin

__all__ = ["ShardStats", "ShardCoordinator"]


def _prepare_memo_round(engine: RoutingEngine, memo_active: bool, stateless: bool) -> None:
    """Make a scope engine memo-capable for this round.

    Pooled scopes are configured cache-free (their worker twins must be
    round-stateless); when a memo round needs the signature machinery
    in-process -- the degraded serial fallback -- the cache is built lazily
    and, for stateless (pooled) scopes, invalidated per round: exactly the
    worker behavior, so degradation stays bit-identical to the live pool.
    Shared by the fast-path and parity scope twins so the cache contract
    cannot drift between them.
    """
    if not memo_active:
        return
    cache = engine.ensure_cache()
    if stateless:
        cache.invalidate()


@dataclass(frozen=True)
class ShardStats:
    """Static shape of a sharded flow (for reporting and tests).

    ``scoped_seam_nets`` counts seam-crossing nets confined to a
    super-region prism (fast path); ``global_seam_nets`` the nets routed by
    the full-graph engine.  They sum to ``seam_nets``.
    """

    num_regions: int
    interior_nets: Tuple[int, ...]
    seam_nets: int
    parity: bool
    scoped_seam_nets: int = 0
    global_seam_nets: int = 0

    @property
    def total_interior(self) -> int:
        return sum(self.interior_nets)


class _RegionPrices:
    """Per-region view of the shared resource-sharing prices.

    Exposes the two attributes the engine reads -- ``edge_prices`` (gathered
    onto the region's subgraph edges) and ``weights_of`` (local net index
    mapped back to the global netlist) -- and is refreshed at every round
    start, after the router's inter-round price updates.
    """

    def __init__(self, prices: "ResourceSharingPrices", edge_to_global: np.ndarray,
                 interior: Sequence[int]) -> None:
        self._prices = prices
        self._edge_to_global = edge_to_global
        self._interior = list(interior)
        self.edge_prices = prices.edge_prices[edge_to_global]

    def refresh(self) -> None:
        self.edge_prices = self._prices.edge_prices[self._edge_to_global]

    def weights_of(self, local_index: int) -> List[float]:
        return self._prices.weights_of(self._interior[local_index])


class _SubgraphScope:
    """A clipped routing scope of the fast path: an engine over the subgraph
    extracted for one prism of the die.

    Level 0 scopes are the partition's regions (interior nets); level 1
    scopes are "super-regions" -- the smallest union of whole regions
    covering a group of seam-crossing nets -- so even most seam nets route
    on a fraction of the full graph.  Nets spanning every cut stay with the
    coordinator's global engine.
    """

    def __init__(
        self,
        coordinator: "ShardCoordinator",
        box,
        nets: List[int],
        label: str,
        pooled: bool = False,
    ) -> None:
        """``pooled`` marks level-0 region scopes whose rounds may execute
        on the region pool; their local engines are then built cache-free
        (worker twins must be round-stateless).  Seam scopes always route
        in the parent process and keep the configured cache."""
        graph = coordinator.graph
        self.label = label
        self.box = box
        self.interior = nets
        #: Pooled scopes keep their caches round-stateless (see
        #: :meth:`route_round`): the degraded serial fallback must behave
        #: exactly like the worker twins, which invalidate per task.
        self.pooled = pooled
        self.xlo, self.ylo = box.xlo, box.ylo
        self.sub_graph, self.edge_to_global = extract_prism(
            graph, box.xlo, box.ylo, box.xhi, box.yhi
        )
        self._edge_to_global_list = self.edge_to_global.tolist()
        self._edge_to_local = np.full(graph.num_edges, -1, dtype=np.int64)
        self._edge_to_local[self.edge_to_global] = np.arange(
            len(self.edge_to_global), dtype=np.int64
        )
        self._edge_to_local_list = self._edge_to_local.tolist()
        # The sub-netlist keeps the parent's design name and the nets their
        # own names, so instance labels and name-keyed RNG streams line up
        # with the unsharded flow.
        self.sub_netlist = Netlist(
            name=coordinator.netlist.name,
            nets=[self._translate_net(coordinator.netlist.nets[i]) for i in nets],
            stages=[],
            clock_period=coordinator.netlist.clock_period,
        )
        self.prices = _RegionPrices(coordinator.prices, self.edge_to_global, nets)
        self.congestion = CongestionMap(
            self.sub_graph,
            overflow_penalty=coordinator.congestion.overflow_penalty,
            threshold=coordinator.congestion.threshold,
        )
        # Region subproblems are small and already run inside one round-start
        # snapshot; process pools per region would cost more in priming than
        # they return, so sub-engines always execute serially (the seam pass
        # still uses the configured backend through the shared executor).
        # Under region-parallel execution the region scopes are additionally
        # cache-free: a re-route cache would carry state across rounds
        # inside whichever worker process routed the region last, making
        # the region a function of pool scheduling history.
        sub_config = replace(
            coordinator.config,
            backend="serial",
            num_workers=None,
            scheduling="window",
            reroute_cache=coordinator.config.reroute_cache and not pooled,
        )
        self.engine = RoutingEngine(
            graph=self.sub_graph,
            netlist=self.sub_netlist,
            oracle=coordinator.oracle,
            bifurcation=coordinator.bifurcation,
            congestion=self.congestion,
            prices=self.prices,
            seed=coordinator.seed,
            cost_refresh_interval=max(1, len(nets)),
            config=sub_config,
        )

    # ----------------------------------------------------------- geometry
    def _translate_net(self, net: Net) -> Net:
        def shift(pin: Pin) -> Pin:
            p = pin.position
            return Pin(pin.name, GridPoint(p.x - self.xlo, p.y - self.ylo, p.layer))

        return Net(net.name, shift(net.driver), [shift(s) for s in net.sinks])

    def _node_to_global(self, graph: RoutingGraph, node: int) -> int:
        layer, rest = divmod(node, self.sub_graph.nx * self.sub_graph.ny)
        y, x = divmod(rest, self.sub_graph.nx)
        return (layer * graph.ny + (y + self.ylo)) * graph.nx + (x + self.xlo)

    def _node_to_local(self, graph: RoutingGraph, node: int) -> int:
        layer, rest = divmod(node, graph.nx * graph.ny)
        y, x = divmod(rest, graph.nx)
        return (layer * self.sub_graph.ny + (y - self.ylo)) * self.sub_graph.nx + (
            x - self.xlo
        )

    def tree_to_global(self, graph: RoutingGraph, tree: EmbeddedTree) -> EmbeddedTree:
        mapping = self._edge_to_global_list
        return EmbeddedTree(
            graph,
            self._node_to_global(graph, tree.root),
            tuple(self._node_to_global(graph, s) for s in tree.sinks),
            tuple(mapping[e] for e in tree.edges),
            tree.method,
        )

    def try_tree_to_local(
        self, graph: RoutingGraph, tree: EmbeddedTree
    ) -> Optional[EmbeddedTree]:
        """``tree`` translated onto this scope's subgraph, or ``None`` when
        it uses edges outside the prism (e.g. a replay memo recorded while
        the net belonged to a different scope)."""
        mapping = self._edge_to_local_list
        edges = tuple(mapping[int(e)] for e in tree.edges)
        if any(e < 0 for e in edges):
            return None
        return EmbeddedTree(
            self.sub_graph,
            self._node_to_local(graph, tree.root),
            tuple(self._node_to_local(graph, s) for s in tree.sinks),
            edges,
            tree.method,
        )

    def tree_to_local(self, graph: RoutingGraph, tree: EmbeddedTree) -> EmbeddedTree:
        local = self.try_tree_to_local(graph, tree)
        if local is None:
            # Only reachable with trees from outside this scope's flow, e.g.
            # a checkpoint taken under a different shard configuration whose
            # routes detour outside this prism; -1 would otherwise be
            # silently interpreted as the subgraph's last edge.
            raise ValueError(
                f"tree of a net in scope {self.label!r} uses edges outside "
                "the region prism; resume checkpoints with the shard "
                "configuration they were written under"
            )
        return local

    # ------------------------------------------------------------- memos
    def localize_replay(
        self, coordinator: "ShardCoordinator", replay_round: Optional[RoundMemo]
    ) -> Optional[RoundMemo]:
        """The slice of the global replay memo this scope can use, keyed by
        local net index with trees on the scope's subgraph.

        Nets without a memo entry, and nets whose memoised tree strays
        outside this prism (their scope changed across the ECO, so the
        signature could not have been computed here), are dropped -- they
        simply re-route, which is always sound.
        """
        if replay_round is None:
            return None
        graph = coordinator.graph
        memo = RoundMemo()
        for local_index, global_index in enumerate(self.interior):
            signature = replay_round.signatures.get(global_index)
            tree = replay_round.trees.get(global_index)
            if signature is None or tree is None:
                continue
            local_tree = self.try_tree_to_local(graph, tree)
            if local_tree is None:
                continue
            memo.signatures[local_index] = signature
            memo.trees[local_index] = local_tree
        return memo

    def merge_log(self, log_round: Optional[RoundMemo], local_log: Optional[RoundMemo]) -> None:
        """Fold a scope-local log into the round's global memo.

        Signatures move from local to global net indices; *only* signatures
        -- memo trees are recorded globally by the router after the round,
        so mid-round the global log never holds subgraph-indexed trees
        (matching the pool path, whose outcomes ship signatures alone).
        """
        if log_round is None or local_log is None:
            return
        log_round.signatures.update(
            {
                self.interior[local_index]: signature
                for local_index, signature in local_log.signatures.items()
            }
        )

    # -------------------------------------------------------------- round
    def route_round(
        self,
        coordinator: "ShardCoordinator",
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        usage: np.ndarray,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> np.ndarray:
        """Route the scope's nets against the given global usage state;
        returns the scope-local usage delta (global scatter is the
        coordinator's job)."""
        graph = coordinator.graph
        start_usage = usage[self.edge_to_global]
        self.congestion.usage = start_usage.copy()
        self.prices.refresh()
        # Local trees are derived from the global list every round (not kept
        # across rounds), so checkpoint restores stay consistent for free.
        local_trees: List[Optional[EmbeddedTree]] = [
            None if trees[g] is None else self.tree_to_local(graph, trees[g])
            for g in self.interior
        ]
        local_replay = self.localize_replay(coordinator, replay_round)
        local_log = RoundMemo() if log_round is not None else None
        _prepare_memo_round(
            self.engine, local_replay is not None or local_log is not None, self.pooled
        )
        self.engine.route_round(
            round_index, local_trees,
            replay_round=local_replay, log_round=local_log,
        )
        self.merge_log(log_round, local_log)
        for local_index, global_index in enumerate(self.interior):
            local_tree = local_trees[local_index]
            trees[global_index] = (
                None if local_tree is None else self.tree_to_global(graph, local_tree)
            )
        return self.congestion.usage - start_usage

    # --------------------------------------------- region-pool integration
    @property
    def key(self) -> str:
        """The scope's identity inside region-executor payloads and tasks."""
        return self.label

    def worker_spec(self) -> Dict[str, object]:
        """The static, picklable half of this scope for pool workers.
        Worker engines are always cache-free (round-stateless), whatever
        the local engine's config says."""
        return {
            "kind": "subgraph",
            "graph": self.sub_graph,
            "netlist": self.sub_netlist,
            "cost_refresh_interval": self.engine.cost_refresh_interval,
            "config": replace(self.engine.config, reroute_cache=False),
        }

    def make_task(
        self,
        coordinator: "ShardCoordinator",
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        snapshot: CongestionSnapshot,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> RegionTask:
        """The scope's dynamic round inputs, gathered onto its subgraph."""
        graph = coordinator.graph
        replay = None
        if replay_round is not None:
            local = self.localize_replay(coordinator, replay_round)
            replay = tuple(
                (local.signatures[i], encode_tree(local.trees[i]))
                if i in local.signatures
                else None
                for i in range(len(self.interior))
            )
        return RegionTask(
            key=self.key,
            round_index=round_index,
            usage=snapshot.usage[self.edge_to_global],
            edge_prices=coordinator.prices.edge_prices[self.edge_to_global],
            weights=tuple(
                tuple(coordinator.prices.weights_of(g)) for g in self.interior
            ),
            trees=tuple(
                None
                if trees[g] is None
                else encode_tree(self.tree_to_local(graph, trees[g]))
                for g in self.interior
            ),
            replay=replay,
            capture_log=log_round is not None,
        )

    def apply_outcome(
        self,
        coordinator: "ShardCoordinator",
        trees: List[Optional[EmbeddedTree]],
        outcome: RegionOutcome,
        log_round: Optional[RoundMemo] = None,
    ) -> np.ndarray:
        """Install a worker's routed trees; returns the scope-local delta."""
        graph = coordinator.graph
        for local_index, global_index in enumerate(self.interior):
            record = outcome.trees[local_index]
            trees[global_index] = (
                None
                if record is None
                else self.tree_to_global(graph, decode_tree(self.sub_graph, record))
            )
        if log_round is not None and outcome.log_signatures is not None:
            for local_index, global_index in enumerate(self.interior):
                signature = outcome.log_signatures[local_index]
                if signature is not None:
                    log_round.signatures[global_index] = signature
        return np.asarray(outcome.delta, dtype=np.float64)

    # ------------------------------------------------------- checkpointing
    def cache_signatures_by_name(self) -> Optional[Dict[str, bytes]]:
        """The local engine's stored re-route signatures keyed by net name
        (``None`` when the scope routes cache-free)."""
        if self.engine.cache is None:
            return None
        return {
            self.sub_netlist.nets[local_index].name: signature
            for local_index, signature in self.engine.cache.export_signatures().items()
        }

    def load_cache_signatures_by_name(self, by_name: Dict[str, bytes]) -> None:
        """Restore checkpointed signatures into the local engine's cache
        (no-op for cache-free scopes; unknown names are ignored)."""
        if self.engine.cache is None:
            return
        self.engine.cache.load_signatures(
            {
                local_index: by_name[net.name]
                for local_index, net in enumerate(self.sub_netlist.nets)
                if net.name in by_name
            }
        )


class _ParityRegion:
    """One region of the parity path: an engine over the full graph."""

    def __init__(self, coordinator: "ShardCoordinator", region_index: int,
                 interior: List[int]) -> None:
        self.index = region_index
        self.label = f"parity{region_index}"
        self.interior = interior
        self.pooled = coordinator.parallel_regions
        self.graph = coordinator.graph
        self.netlist = coordinator.netlist
        self.congestion = CongestionMap(
            coordinator.graph,
            overflow_penalty=coordinator.congestion.overflow_penalty,
            threshold=coordinator.congestion.threshold,
        )
        # Cache-free under region-parallel execution, like the subgraph
        # scopes: pool-side region engines must be round-stateless.
        config = replace(
            coordinator.config,
            scheduling="window",
            reroute_cache=(
                coordinator.config.reroute_cache and not coordinator.parallel_regions
            ),
        )
        self.engine = RoutingEngine(
            graph=coordinator.graph,
            netlist=coordinator.netlist,
            oracle=coordinator.oracle,
            bifurcation=coordinator.bifurcation,
            congestion=self.congestion,
            prices=coordinator.prices,
            seed=coordinator.seed,
            cost_refresh_interval=max(1, len(interior)),
            config=config,
            net_indices=interior,
            executor=coordinator.executor,
        )

    # ------------------------------------------------------------- memos
    def localize_replay(
        self, coordinator: "ShardCoordinator", replay_round: Optional[RoundMemo]
    ) -> Optional[RoundMemo]:
        """The replay slice of this region's nets (keys and trees are
        already global on the parity path)."""
        if replay_round is None:
            return None
        return replay_round.restrict_to(self.interior)

    def merge_log(self, log_round: Optional[RoundMemo], local_log: Optional[RoundMemo]) -> None:
        """Fold this region's log into the round memo (keys already global;
        signatures only, like the fast-path twin)."""
        if log_round is None or local_log is None:
            return
        log_round.signatures.update(local_log.signatures)

    def route_round(
        self,
        coordinator: "ShardCoordinator",
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        snapshot: CongestionSnapshot,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> np.ndarray:
        """Route on the full graph against the round-start snapshot; returns
        the full-graph usage delta."""
        self.congestion.restore(snapshot)
        local_replay = self.localize_replay(coordinator, replay_round)
        local_log = RoundMemo() if log_round is not None else None
        _prepare_memo_round(
            self.engine, local_replay is not None or local_log is not None, self.pooled
        )
        self.engine.route_round(
            round_index, trees, replay_round=local_replay, log_round=local_log
        )
        self.merge_log(log_round, local_log)
        return self.congestion.delta_since(snapshot)

    # --------------------------------------------- region-pool integration
    @property
    def key(self) -> str:
        return self.label

    def worker_spec(self) -> Dict[str, object]:
        """The static, picklable half of this region for pool workers.

        The engine backend is forced serial inside workers -- a nested
        process pool per region would oversubscribe the machine; the
        backends are bit-identical, so only the shape of the parallelism
        changes, never the trees.
        """
        return {
            "kind": "parity",
            "graph": self.graph,
            "netlist": self.netlist,
            "interior": list(self.interior),
            "cost_refresh_interval": self.engine.cost_refresh_interval,
            "config": replace(
                self.engine.config,
                backend="serial",
                num_workers=None,
                reroute_cache=False,
            ),
        }

    def make_task(
        self,
        coordinator: "ShardCoordinator",
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        snapshot: CongestionSnapshot,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> RegionTask:
        replay = None
        if replay_round is not None:
            local = self.localize_replay(coordinator, replay_round)
            replay = tuple(
                (local.signatures[g], encode_tree(local.trees[g]))
                if g in local.signatures and g in local.trees
                else None
                for g in self.interior
            )
        return RegionTask(
            key=self.key,
            round_index=round_index,
            usage=snapshot.usage,
            edge_prices=coordinator.prices.edge_prices,
            weights=tuple(
                tuple(coordinator.prices.weights_of(g)) for g in self.interior
            ),
            trees=tuple(encode_tree(trees[g]) for g in self.interior),
            replay=replay,
            capture_log=log_round is not None,
        )

    def apply_outcome(
        self,
        coordinator: "ShardCoordinator",
        trees: List[Optional[EmbeddedTree]],
        outcome: RegionOutcome,
        log_round: Optional[RoundMemo] = None,
    ) -> np.ndarray:
        for net_index, record in zip(self.interior, outcome.trees):
            trees[net_index] = decode_tree(self.graph, record)
        if log_round is not None and outcome.log_signatures is not None:
            for net_index, signature in zip(self.interior, outcome.log_signatures):
                if signature is not None:
                    log_round.signatures[net_index] = signature
        return np.asarray(outcome.delta, dtype=np.float64)

    # ------------------------------------------------------- checkpointing
    def cache_signatures_by_name(self) -> Optional[Dict[str, bytes]]:
        """Stored re-route signatures keyed by net name (``None`` when this
        region routes cache-free)."""
        if self.engine.cache is None:
            return None
        return {
            self.netlist.nets[net_index].name: signature
            for net_index, signature in self.engine.cache.export_signatures().items()
        }

    def load_cache_signatures_by_name(self, by_name: Dict[str, bytes]) -> None:
        if self.engine.cache is None:
            return
        self.engine.cache.load_signatures(
            {
                net_index: by_name[self.netlist.nets[net_index].name]
                for net_index in self.interior
                if self.netlist.nets[net_index].name in by_name
            }
        )


class ShardCoordinator:
    """Routes rounds as K independent region passes plus a seam stitch pass.

    Implements the engine interface :class:`GlobalRouter` consumes
    (``route_round`` / ``close`` / ``cache`` / ``round_reports``), so the
    router, checkpointing, the CLI, and the serve daemon all work unchanged
    with ``GlobalRouterConfig.shards > 1``.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        netlist: Netlist,
        oracle: SteinerOracle,
        bifurcation: BifurcationModel,
        congestion: CongestionMap,
        prices: "ResourceSharingPrices",
        seed: int,
        cost_refresh_interval: int,
        config: Optional[EngineConfig] = None,
        shards: int = 2,
        parity: bool = False,
        halo: int = 0,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        """``workers`` selects the region execution backend: ``None``/``1``
        routes the K interior passes serially in-process, ``> 1`` fans them
        out over a process pool of that size (see
        :mod:`repro.shard.executor`); ``start_method`` pins the pool's
        ``multiprocessing`` start method.  Both backends are bit-identical.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.graph = graph
        self.netlist = netlist
        self.oracle = oracle
        self.bifurcation = bifurcation
        self.congestion = congestion
        self.prices = prices
        self.seed = seed
        self.cost_refresh_interval = cost_refresh_interval
        self.config = config or EngineConfig()
        self.parity = parity
        self.partition: RegionPartition = partition_grid(graph.nx, graph.ny, shards)
        self.classification: NetClassification = self.partition.classify_nets(
            netlist, halo=halo
        )
        #: The engine-interface cache slot.  Scope engines keep private
        #: caches (serial region backend only); there is no global
        #: signature store to checkpoint, so this stays ``None``.
        self.cache = None
        self.round_reports: List[RoundReport] = []
        #: Walltime split of the most recent round (see :meth:`route_round`):
        #: ``{"regions": {key: seconds}, "interior_seconds", "seam_seconds",
        #: "overhead_seconds"}``.  Read by ``obs.round_sample`` for the
        #: router's per-round time-series; empty before the first round.
        self.last_round_timings: Dict[str, object] = {}
        self._closed = False
        #: Whether the interior pass runs on a process pool; scope engines
        #: are built cache-free in that case (round-stateless workers).
        self.parallel_regions = workers is not None and workers > 1

        #: Backend of the interior pass: the in-process serial loop, or a
        #: process pool fanning the K regions out (``workers > 1``).  Owned
        #: and closed by the coordinator.  Not part of the checkpoint
        #: fingerprint -- all backends are bit-identical, so a run
        #: checkpointed under one ``shard_workers`` value may resume under
        #: any other.
        self.region_executor: RegionExecutor = make_region_executor(
            workers, start_method
        )

        #: Executor shared by the full-graph engines (seam pass and parity
        #: interior passes); owned and closed by the coordinator.
        self.executor: BatchExecutor = make_executor(
            self.config.backend,
            graph,
            oracle,
            bifurcation,
            seed,
            num_workers=self.config.num_workers,
        )
        self.regions: List[object] = []
        for region_index, interior in enumerate(self.classification.interior):
            if not interior:
                continue  # empty regions need no engine (K may exceed the net count)
            box = self.partition.regions[region_index].box
            if parity:
                self.regions.append(_ParityRegion(self, region_index, interior))
            else:
                self.regions.append(
                    _SubgraphScope(
                        self, box, interior, f"region{region_index}",
                        pooled=self.parallel_regions,
                    )
                )

        seam = self.classification.seam
        #: Fast path: seam nets whose covering super-region is smaller than
        #: the whole die route on that prism's subgraph (level-1 scopes);
        #: only nets spanning every cut stay with the global engine.  Parity
        #: mode routes all seam nets globally against the round-start
        #: snapshot.
        self.seam_scopes: List[_SubgraphScope] = []
        global_seam = seam
        if not parity:
            full_box = BoundingBox(0, 0, graph.nx - 1, graph.ny - 1)
            groups: Dict[BoundingBox, List[int]] = {}
            for net_index in seam:
                box = BoundingBox(
                    *_net_bounding_box(netlist.nets[net_index])
                ).expanded(halo, graph.nx, graph.ny)
                cover = self.partition.covering_box(box)
                groups.setdefault(cover, []).append(net_index)
            global_seam = []
            for cover in sorted(
                groups, key=lambda b: (b.xlo, b.ylo, b.xhi, b.yhi)
            ):
                nets = groups[cover]
                if cover == full_box:
                    global_seam.extend(nets)
                else:
                    self.seam_scopes.append(
                        _SubgraphScope(self, cover, nets, f"seam{len(self.seam_scopes)}")
                    )
            global_seam.sort()

        self._global_seam = global_seam
        self._seam_congestion = (
            CongestionMap(
                graph,
                overflow_penalty=congestion.overflow_penalty,
                threshold=congestion.threshold,
            )
            if parity
            else congestion
        )
        seam_config = replace(self.config, scheduling="window") if parity else self.config
        self.seam_engine = RoutingEngine(
            graph=graph,
            netlist=netlist,
            oracle=oracle,
            bifurcation=bifurcation,
            congestion=self._seam_congestion,
            prices=prices,
            seed=seed,
            cost_refresh_interval=(
                max(1, len(global_seam)) if parity else cost_refresh_interval
            ),
            config=seam_config,
            net_indices=global_seam,
            executor=self.executor,
        )

    # ------------------------------------------------------------- queries
    @property
    def stats(self) -> ShardStats:
        return ShardStats(
            num_regions=self.partition.num_regions,
            interior_nets=tuple(len(r) for r in self.classification.interior),
            seam_nets=len(self.classification.seam),
            parity=self.parity,
            scoped_seam_nets=sum(len(s.interior) for s in self.seam_scopes),
            global_seam_nets=len(self._global_seam),
        )

    # ------------------------------------------------------------------ API
    def route_round(
        self,
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        record: bool = False,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> List[SteinerInstance]:
        """Route every net once: interior passes, stitch, seam pass.

        ``replay_round`` / ``log_round`` are the round's *global* replay and
        log memos (see :class:`~repro.engine.cache.RoundMemo`); every scope
        localises its slice and contributes its lookup signatures back in
        fixed region order, so session flows work through shards on every
        region backend.
        """
        if (replay_round is not None or log_round is not None) and not (
            self.config.reroute_cache
        ):
            raise ValueError("replay/memo rounds require reroute_cache=True")
        started = time.monotonic()
        snapshot = self.congestion.snapshot()
        round_costs = snapshot.edge_costs(self.prices.edge_prices) if record else None
        collected: List[SteinerInstance] = []
        # Interior pass: all regions route against the round-start snapshot,
        # serially or on the region executor's process pool -- either way the
        # deltas come back aligned with ``self.regions``.
        deltas, region_reports = self.region_executor.route_round(
            self, round_index, trees, snapshot,
            replay_round=replay_round, log_round=log_round,
        )
        interior_elapsed = time.monotonic() - started
        if record:
            for region in self.regions:
                collected.extend(
                    self._record_scope(region, round_costs)  # type: ignore[arg-type]
                )
        # Stitch: merge every region's usage delta onto the shared map, in
        # fixed region order so the floating-point sums are identical across
        # region backends.  The parity path produced full-graph deltas, the
        # fast path region-local ones scattered through the region's edge
        # map.
        for region, delta in zip(self.regions, deltas):
            if isinstance(region, _SubgraphScope):
                self.congestion.usage[region.edge_to_global] += delta
            else:
                self.congestion.usage += delta
        # Seam super-region scopes (fast path only) run against the live,
        # already-stitched map, one scope after the other.
        for scope in self.seam_scopes:
            with obs.span("seam_scope", key=scope.key, round=round_index):
                delta = scope.route_round(
                    self, round_index, trees, self.congestion.usage,
                    replay_round=replay_round, log_round=log_round,
                )
                self.congestion.usage[scope.edge_to_global] += delta
            if record:
                collected.extend(
                    self._record_scope(scope, round_costs)  # type: ignore[arg-type]
                )
        if self.parity:
            self._seam_congestion.restore(snapshot)
        seam_started = time.monotonic()
        with obs.span("seam", round=round_index, nets=len(self._global_seam)):
            collected.extend(
                self.seam_engine.route_round(
                    round_index, trees, record=record,
                    replay_round=replay_round, log_round=log_round,
                )
            )
        seam_elapsed = time.monotonic() - seam_started
        if self.parity:
            self.congestion.usage += self._seam_congestion.delta_since(snapshot)
        # Per-round walltime split for the telemetry sample: where the
        # interior pass's time went per region, the seam pass, and -- for
        # pooled interior passes -- the pool/IPC overhead (elapsed beyond
        # the slowest region; for serial passes, beyond the regions' sum).
        region_seconds = {
            region.key: float(report[4])
            for region, report in zip(self.regions, region_reports)
        }
        if region_seconds:
            busy = (
                max(region_seconds.values())
                if getattr(self.region_executor, "pool_active", False)
                else sum(region_seconds.values())
            )
        else:
            busy = 0.0
        self.last_round_timings = {
            "regions": region_seconds,
            "interior_seconds": interior_elapsed,
            "seam_seconds": seam_elapsed,
            "overhead_seconds": max(0.0, interior_elapsed - busy),
        }
        obs.publish(
            "seam_done",
            round=round_index + 1,
            nets=len(self._global_seam),
            seconds=round(seam_elapsed, 6),
        )
        self.round_reports.append(
            self._aggregate_report(round_index, started, region_reports)
        )
        return collected

    def close(self) -> None:
        """Release every sub-engine, the region pool, and the shared
        executor (idempotent).

        Runs every release even when one raises -- a round that failed
        mid-flight must not leak the remaining engines or either worker
        pool -- and re-raises the first error afterwards.
        """
        if self._closed:
            return
        self._closed = True
        closers = [
            region.engine.close for region in self.regions  # type: ignore[attr-defined]
        ]
        closers.extend(scope.engine.close for scope in self.seam_scopes)
        closers.extend(
            [self.seam_engine.close, self.region_executor.close, self.executor.close]
        )
        errors: List[BaseException] = []
        for closer in closers:
            try:
                closer()
            except BaseException as exc:  # release everything before raising
                errors.append(exc)
        if errors:
            raise errors[0]

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ internals
    def _record_scope(
        self, region: object, costs: np.ndarray
    ) -> List[SteinerInstance]:
        """Global-graph instances of a scope's nets, in scheduled order.

        Recording is done here rather than inside the scope engines because
        the fast path's sub-engines would record subgraph-indexed instances;
        building them once at the coordinator keeps both modes uniform.
        All recorded instances carry the round-start cost vector.
        """
        if isinstance(region, _ParityRegion):
            order = region.engine.scheduled_nets()
        else:
            order = [region.interior[i] for i in region.engine.scheduled_nets()]
        delay = self.graph.delay_array()
        instances = []
        for net_index in order:
            root, sinks = self.netlist.net_terminals(self.graph, net_index)
            instances.append(
                SteinerInstance(
                    graph=self.graph,
                    root=root,
                    sinks=sinks,
                    weights=self.prices.weights_of(net_index),
                    cost=costs,
                    delay=delay,
                    bifurcation=self.bifurcation,
                    name=f"{self.netlist.name}/{self.netlist.nets[net_index].name}",
                )
            )
        return instances

    def _aggregate_report(
        self,
        round_index: int,
        started: float,
        region_reports: Sequence[Tuple[int, int, int, int, float]],
    ) -> RoundReport:
        """Fold per-region executor counts and the in-process seam engines'
        last rounds into one coordinator-level report."""
        report = RoundReport(round_index=round_index)
        for num_batches, nets_routed, nets_cached, nets_replayed, _seconds in region_reports:
            report.num_batches += num_batches
            report.nets_routed += nets_routed
            report.nets_cached += nets_cached
            report.nets_replayed += nets_replayed
        for engine in [scope.engine for scope in self.seam_scopes] + [self.seam_engine]:
            last = engine.round_reports[-1]
            report.num_batches += last.num_batches
            report.nets_routed += last.nets_routed
            report.nets_cached += last.nets_cached
            report.nets_replayed += last.nets_replayed
        report.walltime_seconds = time.monotonic() - started
        return report

    # ------------------------------------------------------- checkpointing
    def export_cache_signatures(self) -> Optional[Dict[str, object]]:
        """The per-scope re-route signature sections of a checkpoint.

        Returns ``None`` when no scope holds a cache (``reroute_cache`` off,
        or every scope routes cache-free); otherwise a document of the shape
        ``{"layout": {"shards": K, "parity": bool}, "scopes": {scope_key:
        {net_name: signature_bytes}}}``.  Signatures are keyed by net *name*
        -- the same convention as RNG streams and replay memos -- so a
        restore can redistribute them across a different decomposition.
        """
        scopes: Dict[str, Dict[str, bytes]] = {}
        for region in self.regions:
            section = region.cache_signatures_by_name()  # type: ignore[attr-defined]
            if section is not None:
                scopes[region.key] = section  # type: ignore[attr-defined]
        for scope in self.seam_scopes:
            section = scope.cache_signatures_by_name()
            if section is not None:
                scopes[scope.key] = section
        if self.seam_engine.cache is not None:
            scopes["seam"] = {
                self.netlist.nets[net_index].name: signature
                for net_index, signature in (
                    self.seam_engine.cache.export_signatures().items()
                )
            }
        if not scopes:
            return None
        return {
            "layout": {"shards": self.partition.num_regions, "parity": self.parity},
            "scopes": scopes,
        }

    def load_cache_signatures(self, sections: Dict[str, object]) -> None:
        """Restore checkpointed signature sections into the scope caches.

        When the checkpoint's shard layout matches this coordinator's, each
        scope restores exactly its own section.  Under a different layout
        the sections are flattened by net name and every scope picks out its
        nets -- exact in the parity regime (parity signatures are
        scope-independent), and merely conservative on the fast path, where
        a foreign-prism signature can only produce a cache miss, never a
        wrong tree.
        """
        layout = sections.get("layout") or {}
        scopes: Dict[str, Dict[str, bytes]] = (  # type: ignore[assignment]
            sections.get("scopes") or {}
        )
        exact = (
            layout.get("shards") == self.partition.num_regions
            and layout.get("parity") == self.parity
        )
        flat: Dict[str, bytes] = {}
        for section in scopes.values():
            flat.update(section)
        for region in list(self.regions) + list(self.seam_scopes):
            source = scopes.get(region.key) if exact else None  # type: ignore[attr-defined]
            region.load_cache_signatures_by_name(  # type: ignore[attr-defined]
                source if source is not None else flat
            )
        if self.seam_engine.cache is not None:
            source = scopes.get("seam") if exact else None
            by_name = source if source is not None else flat
            self.seam_engine.cache.load_signatures(
                {
                    net_index: by_name[self.netlist.nets[net_index].name]
                    for net_index in self._global_seam
                    if self.netlist.nets[net_index].name in by_name
                }
            )

    def region_worker_payload(self) -> Dict[str, object]:
        """The read-only payload priming region-pool workers: the oracle,
        the bifurcation model, congestion parameters, and each region's
        static spec (subgraph or full-graph slice).  Shared objects -- the
        full graph and netlist referenced by every parity region -- are
        pickled once thanks to pickle's memo table."""
        return {
            "oracle": self.oracle,
            "bifurcation": self.bifurcation,
            "seed": self.seed,
            "overflow_penalty": self.congestion.overflow_penalty,
            "threshold": self.congestion.threshold,
            "regions": {  # type: ignore[attr-defined]
                region.key: region.worker_spec() for region in self.regions
            },
        }


def _net_bounding_box(net: Net) -> Tuple[int, int, int, int]:
    """Planar pin bounding box of one net (xmin, ymin, xmax, ymax)."""
    return bounding_box(p.position for p in net.pins())
