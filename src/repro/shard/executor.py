"""Region executors: run the interior passes of one shard round.

The :class:`~repro.shard.coordinator.ShardCoordinator` decomposes each
rip-up-and-re-route round into K independent region subproblems that all
read the *round-start* congestion snapshot and never see each other's
in-round deltas.  That independence is what makes them trivially
parallelisable: this module provides the pluggable execution backends that
route all regions of one round and hand their usage deltas back to the
coordinator, which stitches them onto the shared map **in fixed region
order** -- so the floating-point sums, and therefore every downstream
metric, are bit-identical across backends.

* :class:`SerialRegionExecutor` routes the regions in-process, one after the
  other -- the historical shard loop.
* :class:`ProcessRegionExecutor` fans the regions out over a
  ``multiprocessing`` pool, mirroring the worker-payload machinery of
  :class:`repro.engine.executor.ProcessExecutor`: each worker is primed once
  with a pickled read-only payload (per-region subgraphs, sub-netlists,
  engine configs, the oracle and bifurcation model), and per round only the
  small dynamic state travels -- start usage, gathered prices, and the
  region's trees encoded as plain tuples.  Worker-side engines are
  round-stateless (their re-route caches are disabled, see the coordinator),
  so it does not matter which worker routes which region in which round.
  When no pool can be started -- sandboxes routinely forbid ``fork`` or
  semaphores -- the executor degrades to the serial path with a warning,
  the same contract :class:`~repro.engine.executor.ProcessExecutor` honors:
  degradation costs parallelism, never correctness.

Replay memo logs (ECO sessions, see :class:`repro.engine.cache.RoundMemo`)
travel through both backends: a task carries the scope-localised
``(signature, tree)`` memo of each of its nets plus a ``capture_log`` flag,
and the outcome ships the scope's freshly computed lookup signatures back,
which the coordinator folds into the round's global memo **in fixed region
order**.  Worker-side engines build their signature cache lazily for such
tasks and invalidate it per task, so memo flows stay round-stateless on the
pool exactly like ordinary rounds.

Use :func:`make_region_executor` to construct a backend from a worker count.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.core.tree import EmbeddedTree
from repro.engine.cache import RoundMemo
from repro.engine.engine import RoutingEngine
from repro.engine.executor import (
    create_worker_pool,
    discard_broken_pool,
    run_tasks_with_recovery,
    validate_start_method,
)
from repro.grid.congestion import CongestionMap, CongestionSnapshot
from repro.grid.graph import RoutingGraph

if TYPE_CHECKING:  # circular at runtime: the coordinator imports this module
    from repro.shard.coordinator import ShardCoordinator

__all__ = [
    "TreeRecord",
    "RegionTask",
    "RegionOutcome",
    "RegionExecutor",
    "SerialRegionExecutor",
    "ProcessRegionExecutor",
    "SharedRegionStateStore",
    "make_region_executor",
    "encode_tree",
    "decode_tree",
]

#: One embedded tree as plain picklable values: ``(root, sinks, edges,
#: method)`` or ``None`` for an unrouted net.  Graph objects never travel
#: with trees -- both sides reattach their own graph.
TreeRecord = Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...], str]]


def encode_tree(tree: Optional[EmbeddedTree]) -> TreeRecord:
    """``tree`` as a :data:`TreeRecord` (cheap to pickle, graph-free)."""
    if tree is None:
        return None
    return (int(tree.root), tuple(tree.sinks), tuple(tree.edges), tree.method)


def decode_tree(graph: RoutingGraph, record: TreeRecord) -> Optional[EmbeddedTree]:
    """The exact inverse of :func:`encode_tree`, reattached to ``graph``."""
    if record is None:
        return None
    root, sinks, edges, method = record
    return EmbeddedTree(graph, root, tuple(sinks), tuple(edges), method)


# --------------------------------------------------------------------------
# Shared-memory transport of the per-round region state.
#
# The start-usage and gathered-price vectors are the only full-size arrays a
# RegionTask carries; pickling them into the pool's task queue every round
# costs two O(edges) serialisations per region per round.  The store below
# publishes both into one reusable ``multiprocessing.shared_memory`` block
# per region (row 0 = usage, row 1 = prices); the task then ships only the
# block's ``(name, length, creator_pid)`` reference and the worker copies
# the rows out on receipt.  Lifecycle contract:
#
# * The parent owns every block: created on first publish, *reused* (over-
#   written in place) every following round, and closed+unlinked in
#   ``close()``.  Reuse is safe because ``route_round`` collects all
#   outcomes before returning -- no worker can still be reading a block
#   when the next round's publish overwrites it.
# * Workers attach, copy both rows, and detach inside one call; they never
#   hold a mapping across tasks.  (On Python < 3.13 the attach side also
#   re-registers the segment with its ``resource_tracker``, which would
#   unlink the parent's block when the worker exits -- the attach helper
#   therefore unregisters it explicitly.)
# * Any failure to create or attach a block degrades to the pickle
#   transport: ``publish`` returns ``None`` and the task ships its arrays
#   inline, exactly as before.  Degradation costs speed, never correctness.
# --------------------------------------------------------------------------

#: ``(block_name, vector_length, creator_pid)`` -- the wire reference of one
#: region's shared state block.  The pid lets attachers distinguish foreign
#: blocks (drop the buggy < 3.13 tracker registration) from their own.
StateRef = Tuple[str, int, int]


def _untrack_shared_memory(shm) -> None:
    """Drop an *attached* block from this process's resource tracker.

    Creation registers a segment with the creator's tracker (correct: the
    creator owns cleanup).  On Python < 3.13 attaching registers it *again*
    with the attacher's tracker, which then unlinks the segment when the
    attaching process exits -- yanking it out from under the owner.  The
    explicit unregister restores single-ownership semantics; best-effort
    because the tracker API is private and platform-dependent.
    """
    try:  # pragma: no cover - depends on Python version / platform
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        pass


def _load_shared_state(state_ref: StateRef) -> Tuple[np.ndarray, np.ndarray]:
    """Copy ``(usage, prices)`` out of a published shared state block."""
    from multiprocessing import shared_memory

    name, length, creator_pid = state_ref
    shm = shared_memory.SharedMemory(name=name)
    try:
        rows = np.ndarray((2, length), dtype=np.float64, buffer=shm.buf)
        usage = rows[0].copy()
        prices = rows[1].copy()
    finally:
        shm.close()
        # Only foreign attachers must drop the tracker registration; in the
        # creator's own process (degraded inline rounds, tests) the single
        # registration stays until ``close()`` unlinks the block.
        if creator_pid != os.getpid():
            _untrack_shared_memory(shm)
    return usage, prices


class SharedRegionStateStore:
    """Parent-side registry of one reusable shared-memory block per region."""

    def __init__(self) -> None:
        self._blocks: Dict[str, Tuple[object, int]] = {}
        #: Flips to ``False`` on the first creation failure; later publishes
        #: return ``None`` immediately (pickle fallback) without re-probing.
        self.available = True

    def publish(
        self, key: str, usage: np.ndarray, edge_prices: np.ndarray
    ) -> Optional[StateRef]:
        """Write the region's state rows into its block; ``None`` on failure."""
        if not self.available:
            return None
        length = int(usage.shape[0])
        if edge_prices.shape[0] != length:
            return None
        entry = self._blocks.get(key)
        if entry is not None and entry[1] != length:
            self._release(key)
            entry = None
        if entry is None:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=2 * length * 8)
            except Exception as exc:  # OSError, PermissionError, ImportError...
                self.available = False
                obs.get_logger("shard").warning(
                    "shared-memory region-state transport unavailable (%s); "
                    "falling back to pickled task arrays",
                    exc,
                )
                obs.inc("shard.shm_unavailable")
                return None
            entry = (shm, length)
            self._blocks[key] = entry
        shm = entry[0]
        rows = np.ndarray((2, length), dtype=np.float64, buffer=shm.buf)
        rows[0] = usage
        rows[1] = edge_prices
        return (shm.name, length, os.getpid())

    def _release(self, key: str) -> None:
        shm, _ = self._blocks.pop(key)
        try:
            shm.close()
            # Under a fork start method the pool workers share this process's
            # resource tracker, so a worker's attach-side unregister (see
            # ``_untrack_shared_memory``) already removed the name from it and
            # ``unlink``'s own unregister would log a KeyError in the tracker
            # daemon.  Re-registering first is safe in every regime: the
            # tracker's cache is a set, so when the registration is still in
            # place (spawn workers, no worker ever attached) this is a no-op.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(getattr(shm, "_name", shm.name), "shared_memory")
            except Exception:
                pass
            shm.unlink()
        except Exception:  # pragma: no cover - teardown best-effort
            pass

    def close(self) -> None:
        """Close and unlink every block (idempotent)."""
        for key in list(self._blocks):
            self._release(key)


@dataclass(frozen=True)
class RegionTask:
    """The dynamic inputs of one region's round (cheap to pickle).

    ``usage`` and ``edge_prices`` are region-local (gathered onto the
    region's subgraph edges) for fast-path regions and full-graph vectors
    for parity regions; ``weights`` and ``trees`` are aligned with the
    region engine's net order (local indices for subgraph scopes, the
    interior index list for parity regions).

    ``replay`` carries the scope-localised replay memo of a session flow:
    one ``(lookup_signature, memoised_tree)`` entry per net (``None`` for
    nets without a usable memo), aligned like ``trees``; ``capture_log``
    asks the worker to record this round's lookup signatures into the
    outcome.  Both default to the memo-free ordinary round.

    On the pool path the two state arrays normally travel out-of-band:
    ``state_ref`` names a :class:`SharedRegionStateStore` block holding
    ``(usage, edge_prices)`` and both array fields are ``None``.  Exactly
    one representation is populated; :meth:`state` resolves either.
    """

    key: str
    round_index: int
    usage: Optional[np.ndarray]
    edge_prices: Optional[np.ndarray]
    weights: Tuple[Tuple[float, ...], ...]
    trees: Tuple[TreeRecord, ...]
    replay: Optional[Tuple[Optional[Tuple[bytes, TreeRecord]], ...]] = None
    capture_log: bool = False
    state_ref: Optional[StateRef] = None

    def state(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(start_usage, edge_prices)`` pair, from whichever
        transport carried it (shared memory or inline pickled arrays)."""
        if self.state_ref is not None:
            return _load_shared_state(self.state_ref)
        if self.usage is None or self.edge_prices is None:
            raise ValueError(f"region task {self.key!r} carries no state")
        return (
            np.asarray(self.usage, dtype=np.float64),
            np.asarray(self.edge_prices, dtype=np.float64),
        )


@dataclass(frozen=True)
class RegionOutcome:
    """One region's round result: routed trees, usage delta, report counts.

    ``trees`` uses the same alignment as the task's; ``delta`` the same
    edge indexing as the task's ``usage``.  ``report`` is
    ``(num_batches, nets_routed, nets_cached, nets_replayed,
    walltime_seconds)`` -- the walltime is the worker-side engine's own
    (monotonic) round time, which is what the coordinator's per-region
    telemetry reports for pooled rounds.
    ``log_signatures`` holds the round's lookup signatures (aligned like
    ``trees``) when the task asked for them with ``capture_log``.
    ``metrics`` is the worker's local :class:`repro.obs.MetricsRegistry`
    snapshot for this region round; the parent merges it in fixed region
    order so pooled runs report the same counters as serial ones.
    """

    key: str
    trees: Tuple[TreeRecord, ...]
    delta: np.ndarray
    report: Tuple[int, int, int, int, float]
    log_signatures: Optional[Tuple[Optional[bytes], ...]] = None
    metrics: Optional[Dict[str, object]] = None


class _TaskPrices:
    """The price view a worker-side engine reads: a gathered ``edge_prices``
    vector plus per-net sink weights, both refreshed from each task."""

    def __init__(self) -> None:
        self.edge_prices: Optional[np.ndarray] = None
        self._weights: Dict[int, Tuple[float, ...]] = {}

    def load(self, edge_prices: np.ndarray, nets: Sequence[int],
             weights: Sequence[Tuple[float, ...]]) -> None:
        self.edge_prices = np.asarray(edge_prices, dtype=np.float64)
        self._weights = dict(zip(nets, weights))

    def weights_of(self, net_index: int) -> List[float]:
        return list(self._weights[net_index])


class _RegionRunner:
    """Worker-side twin of one region: an engine rebuilt from its spec.

    Runners are cached per worker process, but their engines are
    round-stateless (no re-route cache, usage reset from every task), so a
    region may be routed by different workers in different rounds without
    changing a single bit of the result.
    """

    def __init__(self, spec: Dict[str, object], oracle, bifurcation, seed: int,
                 overflow_penalty: float, threshold: float) -> None:
        self.graph: RoutingGraph = spec["graph"]  # type: ignore[assignment]
        self.netlist = spec["netlist"]
        #: ``None`` for subgraph scopes (the engine routes the whole
        #: sub-netlist); the global interior index list for parity regions.
        self.interior: Optional[List[int]] = spec.get("interior")  # type: ignore[assignment]
        self.congestion = CongestionMap(
            self.graph, overflow_penalty=overflow_penalty, threshold=threshold
        )
        self.prices = _TaskPrices()
        self.engine = RoutingEngine(
            graph=self.graph,
            netlist=self.netlist,  # type: ignore[arg-type]
            oracle=oracle,
            bifurcation=bifurcation,
            congestion=self.congestion,
            prices=self.prices,  # type: ignore[arg-type]
            seed=seed,
            cost_refresh_interval=int(spec["cost_refresh_interval"]),  # type: ignore[arg-type]
            config=spec["config"],  # type: ignore[arg-type]
            net_indices=self.interior,
        )

    def route(self, task: RegionTask) -> RegionOutcome:
        start, edge_prices = task.state()
        self.congestion.usage = start.copy()
        engine_nets: Sequence[int] = (
            self.interior if self.interior is not None else range(len(task.trees))
        )
        self.prices.load(edge_prices, engine_nets, task.weights)
        replay_memo = self._replay_memo(task, engine_nets)
        log_memo = RoundMemo() if task.capture_log else None
        if replay_memo is not None or log_memo is not None:
            # Memo rounds need the signature machinery, which this engine
            # (configured cache-free for round-statelessness) builds lazily;
            # invalidating per task keeps the worker a pure function of the
            # task -- no signature survives into the next round.
            self.engine.ensure_cache().invalidate()
        if self.interior is None:
            trees = [decode_tree(self.graph, record) for record in task.trees]
            self.engine.route_round(
                task.round_index, trees,
                replay_round=replay_memo, log_round=log_memo,
            )
            routed = trees
        else:
            # Parity regions index the full netlist; nets outside the
            # region's interior are never touched by its engine.
            trees = [None] * self.netlist.num_nets  # type: ignore[union-attr]
            for net_index, record in zip(self.interior, task.trees):
                trees[net_index] = decode_tree(self.graph, record)
            self.engine.route_round(
                task.round_index, trees,
                replay_round=replay_memo, log_round=log_memo,
            )
            routed = [trees[net_index] for net_index in self.interior]
        last = self.engine.round_reports[-1]
        log_signatures = None
        if log_memo is not None:
            log_signatures = tuple(
                log_memo.signatures.get(key) for key in engine_nets
            )
        return RegionOutcome(
            key=task.key,
            trees=tuple(encode_tree(tree) for tree in routed),
            delta=self.congestion.usage - start,
            report=(last.num_batches, last.nets_routed, last.nets_cached,
                    last.nets_replayed, last.walltime_seconds),
            log_signatures=log_signatures,
        )

    def _replay_memo(
        self, task: RegionTask, engine_nets: Sequence[int]
    ) -> Optional[RoundMemo]:
        """The task's replay entries as a :class:`RoundMemo` keyed the way
        this runner's engine keys nets (local indices for subgraph scopes,
        global indices for parity regions)."""
        if task.replay is None:
            return None
        memo = RoundMemo()
        for key, entry in zip(engine_nets, task.replay):
            if entry is None:
                continue
            signature, record = entry
            tree = decode_tree(self.graph, record)
            if tree is None:
                continue
            memo.signatures[key] = signature
            memo.trees[key] = tree
        return memo


# --------------------------------------------------------------------------
# Worker plumbing.  Module-level so children can locate the functions under
# every multiprocessing start method (fork and spawn alike).
# --------------------------------------------------------------------------

_REGION_STATE: dict = {}
_REGION_RUNNERS: Dict[str, _RegionRunner] = {}


def _region_worker_init(payload_bytes: bytes) -> None:
    """Pool initializer: unpack the shared read-only region payload."""
    state = pickle.loads(payload_bytes)
    _REGION_STATE.clear()
    _REGION_STATE.update(state)
    _REGION_RUNNERS.clear()


def _route_region(task: RegionTask) -> RegionOutcome:
    """Route one region's round inside a worker process.

    The worker accumulates metrics (engine counters, A* pops) into a
    fresh local registry and ships its snapshot back on the outcome; the
    parent merges the snapshots in fixed region order.
    """
    runner = _REGION_RUNNERS.get(task.key)
    if runner is None:
        runner = _RegionRunner(
            _REGION_STATE["regions"][task.key],
            _REGION_STATE["oracle"],
            _REGION_STATE["bifurcation"],
            _REGION_STATE["seed"],
            _REGION_STATE["overflow_penalty"],
            _REGION_STATE["threshold"],
        )
        _REGION_RUNNERS[task.key] = runner
    local = obs.MetricsRegistry()
    previous = obs.swap_registry(local)
    try:
        outcome = runner.route(task)
    finally:
        obs.swap_registry(previous)
    return replace(outcome, metrics=local.snapshot())


class RegionExecutor:
    """Common interface of the region execution backends."""

    #: Backend name used in configuration and result reporting.
    backend = "?"

    def __init__(self) -> None:
        self.closed = False

    def route_round(
        self,
        coordinator: "ShardCoordinator",
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        snapshot: CongestionSnapshot,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> Tuple[List[np.ndarray], List[Tuple[int, int, int, int, float]]]:
        """Route every interior region of one round against ``snapshot``.

        Mutates ``trees`` in place and returns ``(deltas, reports)`` aligned
        with ``coordinator.regions`` -- the coordinator stitches the deltas
        in that fixed order, which is what keeps all backends bit-identical.

        ``replay_round`` / ``log_round`` are the round's *global* replay and
        log memos (session flows); each region localises its slice of the
        replay memo and its freshly computed lookup signatures are merged
        back into ``log_round``, again in fixed region order.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools).  Idempotent."""
        self.closed = True

    def __enter__(self) -> "RegionExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialRegionExecutor(RegionExecutor):
    """Routes the regions in-process, one after the other (the classic loop)."""

    backend = "serial"

    def route_round(self, coordinator, round_index, trees, snapshot,
                    replay_round=None, log_round=None):
        deltas: List[np.ndarray] = []
        reports: List[Tuple[int, int, int, int, float]] = []
        for region in coordinator.regions:
            with obs.span(
                "region", key=region.key, round=round_index, backend=self.backend
            ) as region_span:
                if coordinator.parity:
                    deltas.append(
                        region.route_round(
                            coordinator, round_index, trees, snapshot,
                            replay_round=replay_round, log_round=log_round,
                        )
                    )
                else:
                    deltas.append(
                        region.route_round(
                            coordinator, round_index, trees, snapshot.usage,
                            replay_round=replay_round, log_round=log_round,
                        )
                    )
                last = region.engine.round_reports[-1]
                reports.append(
                    (last.num_batches, last.nets_routed, last.nets_cached,
                     last.nets_replayed, last.walltime_seconds)
                )
                region_span.set(
                    batches=last.num_batches, nets_routed=last.nets_routed
                )
            obs.publish(
                "region_done",
                region=region.key,
                round=round_index + 1,
                backend=self.backend,
                nets_routed=last.nets_routed,
                seconds=round(float(last.walltime_seconds), 6),
            )
        return deltas, reports


class ProcessRegionExecutor(RegionExecutor):
    """Routes the regions of each round on a ``multiprocessing`` pool.

    Parameters
    ----------
    num_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.  The pool is
        additionally capped at the region count -- extra workers could never
        receive work.
    start_method:
        ``multiprocessing`` start method (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``).  ``None`` prefers ``fork`` (workers inherit
        ``sys.path``) and falls back to the platform default.
    """

    backend = "process"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__()
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers or min(os.cpu_count() or 2, 8)
        # Validated eagerly: a pinned-but-mistyped start method must raise
        # at construction, not silently degrade the run to the serial loop.
        self.start_method = validate_start_method(start_method)
        #: Whether a worker pool was ever started (stays ``True`` after
        #: :meth:`close`; benchmarks read it to tell real pool runs from
        #: degraded ones).
        self.pool_used = False
        self._pool = None
        self._pool_unavailable = False
        self._serial = SerialRegionExecutor()
        #: The un-pickled worker payload plus parent-side runner twins,
        #: built lazily by the recovery path: when a pool worker dies (or a
        #: chaos fault drops an outcome), the lost region round is routed
        #: right here in the parent from the same read-only payload the
        #: workers were primed with.
        self._worker_payload: Optional[Dict[str, object]] = None
        self._recovery_runners: Dict[str, _RegionRunner] = {}
        #: Shared-memory transport for the per-round region state arrays;
        #: degrades per-process to pickled arrays when unavailable.
        self._state_store = SharedRegionStateStore()

    # ----------------------------------------------------------- lifecycle
    @property
    def pool_active(self) -> bool:
        """Whether a live worker pool is routing the regions (``False``
        after degradation to the serial path or :meth:`close`)."""
        return self._pool is not None

    def _ensure_pool(self, coordinator: "ShardCoordinator"):
        """The worker pool, or ``None`` when this environment cannot start
        one (the degradation is remembered and warned about only once)."""
        if self._pool is None and not self._pool_unavailable:
            # Prefer fork (create_worker_pool's default): workers inherit
            # sys.path, which the repo's src/ layout relies on.
            self._worker_payload = coordinator.region_worker_payload()
            payload = pickle.dumps(
                self._worker_payload,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._pool = create_worker_pool(
                min(self.num_workers, max(1, len(coordinator.regions))),
                start_method=self.start_method,
                initializer=_region_worker_init,
                initargs=(payload,),
                degrade_message=(
                    "region-parallel shard execution degrades to the serial "
                    "region loop"
                ),
                backend="region-process",
            )
            if self._pool is None:
                self._pool_unavailable = True
            else:
                self.pool_used = True
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        # Blocks are unlinked only after the pool is gone: no worker can be
        # mid-attach on a block its parent is unlinking.
        self._state_store.close()
        super().close()

    def _discard_pool(self) -> None:
        """Drop a wedged pool without blocking on it; the next round
        starts a fresh one from the cached worker payload."""
        pool, self._pool = self._pool, None
        if pool is not None:
            discard_broken_pool(pool)

    # ------------------------------------------------------------------ API
    def route_round(self, coordinator, round_index, trees, snapshot,
                    replay_round=None, log_round=None):
        if len(coordinator.regions) <= 1:
            # One region cannot be overlapped with anything; skip the IPC.
            return self._serial.route_round(
                coordinator, round_index, trees, snapshot,
                replay_round=replay_round, log_round=log_round,
            )
        pool = self._ensure_pool(coordinator)
        if pool is None:
            # Degraded mode: no pool could be started in this environment.
            return self._serial.route_round(
                coordinator, round_index, trees, snapshot,
                replay_round=replay_round, log_round=log_round,
            )
        tasks = [
            self._publish_state(
                region.make_task(
                    coordinator, round_index, trees, snapshot,
                    replay_round=replay_round, log_round=log_round,
                )
            )
            for region in coordinator.regions
        ]
        plan = faults.get_plan()
        sabotage = None
        if plan is not None and plan.should("kill-region-worker", round_index):
            sabotage = faults.kill_pool_worker
        outcomes, pool_broken = run_tasks_with_recovery(
            pool,
            _route_region,
            tasks,
            retry=self._route_region_inline,
            backend="region-process",
            sabotage=sabotage,
        )
        if pool_broken or sabotage is not None:
            # A sabotaged pool is discarded even when no death was observed
            # during the call: a worker killed after its last task leaves no
            # pending work to recover, but it may die holding the shared
            # task-queue lock and wedge the next dispatch with no observable
            # deaths (the pool respawns its _pool entry).
            self._discard_pool()
        if plan is not None and plan.should("drop-outcome", round_index):
            # Discard one cleanly collected outcome: exercises the
            # in-process re-execution path without involving the pool.
            outcomes[0] = None
        for index, outcome in enumerate(outcomes):
            if outcome is None:
                outcomes[index] = self._route_region_inline(tasks[index])
                obs.inc("recovery.outcome_recomputed")
        deltas: List[np.ndarray] = []
        reports: List[Tuple[int, int, int, int, float]] = []
        # Apply in fixed region order regardless of worker completion order.
        # The worker-shipped metric snapshots merge in the same order, so
        # pooled counters land identically to a serial run's.
        for region, outcome in zip(coordinator.regions, outcomes):
            with obs.span(
                "region", key=region.key, round=round_index, backend=self.backend,
                batches=outcome.report[0], nets_routed=outcome.report[1],
            ):
                deltas.append(
                    region.apply_outcome(coordinator, trees, outcome, log_round=log_round)
                )
                reports.append(outcome.report)
            obs.merge_snapshot(outcome.metrics)
            obs.publish(
                "region_done",
                region=region.key,
                round=round_index + 1,
                backend=self.backend,
                nets_routed=outcome.report[1],
                seconds=round(float(outcome.report[4]), 6),
            )
        return deltas, reports

    def _publish_state(self, task: RegionTask) -> RegionTask:
        """Move the task's state arrays into shared memory when possible.

        On success the returned task carries only the block reference; on
        failure (no shared memory in this environment) the task is returned
        unchanged and travels fully pickled, as before.
        """
        if task.usage is None or task.edge_prices is None:
            return task
        ref = self._state_store.publish(task.key, task.usage, task.edge_prices)
        if ref is None:
            return task
        return replace(task, usage=None, edge_prices=None, state_ref=ref)

    def _route_region_inline(self, task: RegionTask) -> RegionOutcome:
        """Route one region's round in the parent process.

        The recovery path of this executor: runner twins are rebuilt from
        the same read-only payload the pool workers were primed with, and
        a :class:`RegionTask` is a pure function of that payload -- so the
        outcome is bit-identical to what the lost worker would have
        shipped.  The runner cache mirrors the per-worker cache (runners
        are round-stateless, see :class:`_RegionRunner`).  Oracle counters
        land in the parent registry directly; ``metrics`` stays ``None``.
        """
        payload = self._worker_payload
        assert payload is not None, "recovery before any pool round"
        runner = self._recovery_runners.get(task.key)
        if runner is None:
            runner = _RegionRunner(
                payload["regions"][task.key],  # type: ignore[index]
                payload["oracle"],
                payload["bifurcation"],
                payload["seed"],  # type: ignore[arg-type]
                payload["overflow_penalty"],  # type: ignore[arg-type]
                payload["threshold"],  # type: ignore[arg-type]
            )
            self._recovery_runners[task.key] = runner
        return runner.route(task)


def make_region_executor(
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
) -> RegionExecutor:
    """Construct the region backend for a worker count: ``None``/``1`` is
    the in-process serial loop, anything larger a process pool."""
    if workers is not None and workers < 1:
        raise ValueError("shard workers must be positive")
    if workers is None or workers == 1:
        return SerialRegionExecutor()
    return ProcessRegionExecutor(num_workers=workers, start_method=start_method)
