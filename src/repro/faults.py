"""Deterministic fault injection for chaos testing the routing stack.

A :class:`FaultPlan` is a small set of scripted faults -- "kill a region
pool worker in round 2", "slow every oracle call by 50 ms" -- that the
executors and the router honor at instrumented choke points.  The plan is
the *script* of a chaos experiment; the recovery machinery under test
(worker-loss retry in the executors, checkpoint/resume in the serve layer)
must absorb every scripted fault without changing a single bit of the
routed result.

Like the tracer (:mod:`repro.obs.trace`), injection is **zero-cost when
disabled**: :func:`get_plan` is a module-global check and every choke
point is guarded by ``plan is not None``.  Unlike the tracer, a plan is
*process-safe*: :func:`install_plan` mirrors the plan into the
``REPRO_FAULTS`` environment variable, so pool workers -- under ``fork``,
``spawn``, and ``forkserver`` alike -- lazily re-parse the same plan and
honor worker-side faults (``slow-oracle``).

Fault vocabulary (the spec syntax is ``kind[:arg=value[,arg=value]]``,
multiple specs separated by ``;`` or whitespace; ``round`` arguments are
1-based, matching the round numbers shown to users)::

    kill-region-worker[:round=N]   SIGKILL one region-pool worker as round
                                   N dispatches (parent-side, one-shot)
    kill-pool-worker[:round=N]     SIGKILL one engine-pool worker as a
                                   batch of round N dispatches (one-shot)
    drop-outcome[:round=N]         discard one region outcome after a
                                   clean pool round (one-shot; exercises
                                   the in-process re-execution path alone)
    slow-oracle:ms=K               sleep K ms before every oracle call
                                   (continuous, honored inside workers)
    crash-run[:round=N]            hard-exit the process (``os._exit``)
                                   at the end of round N, *after* the
                                   ``on_round_end`` hooks ran -- i.e.
                                   after the checkpoint of round N was
                                   durably written

Faults that fire are observable: ``fault.injected`` /
``fault.injected.<kind>`` counters, a ``fault`` bus event, and a WARNING
log record.  The recovery paths they trigger report themselves under
``recovery.*`` (see the executors).
"""

from __future__ import annotations

import os
import re
import signal
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "CRASH_EXIT_CODE",
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "parse_fault_plan",
    "get_plan",
    "install_plan",
    "clear_plan",
    "set_round",
    "current_round",
    "kill_pool_worker",
    "hard_crash",
]

#: Environment variable carrying the installed plan into worker processes.
ENV_VAR = "REPRO_FAULTS"

#: Exit code of a scripted ``crash-run`` (distinguishable from a Python
#: traceback's exit 1 and a SIGKILL's -9 in tests and CI).
CRASH_EXIT_CODE = 13

#: ``kind -> allowed argument names`` of the fault vocabulary.
FAULT_KINDS: Dict[str, frozenset] = {
    "kill-region-worker": frozenset({"round"}),
    "kill-pool-worker": frozenset({"round"}),
    "drop-outcome": frozenset({"round"}),
    "slow-oracle": frozenset({"ms"}),
    "crash-run": frozenset({"round"}),
}


class FaultError(ValueError):
    """A fault spec string could not be parsed."""


@dataclass
class FaultSpec:
    """One scripted fault: a kind plus its (validated) arguments.

    ``round`` is 1-based (``None`` = the first opportunity); ``fired``
    is the one-shot latch of round-scoped faults.  ``slow-oracle`` is
    continuous and never latches (``counted`` only gates its metrics so
    the per-net sleep does not flood the counters).
    """

    kind: str
    round: Optional[int] = None
    ms: float = 0.0
    fired: bool = field(default=False, compare=False)
    counted: bool = field(default=False, compare=False)

    def describe(self) -> str:
        """The spec back as parseable text (the env round-trip format)."""
        args = []
        if self.round is not None:
            args.append(f"round={self.round}")
        if self.kind == "slow-oracle":
            args.append(f"ms={self.ms:g}")
        return self.kind + (":" + ",".join(args) if args else "")


def _parse_spec(chunk: str) -> FaultSpec:
    kind, _, arg_text = chunk.partition(":")
    allowed = FAULT_KINDS.get(kind)
    if allowed is None:
        raise FaultError(f"unknown fault {kind!r}; available: {sorted(FAULT_KINDS)}")
    args: Dict[str, str] = {}
    if arg_text:
        for pair in arg_text.split(","):
            name, sep, value = pair.partition("=")
            if not sep or not name or not value:
                raise FaultError(f"malformed fault argument {pair!r} in {chunk!r}")
            if name not in allowed:
                raise FaultError(
                    f"fault {kind!r} does not take {name!r} (allowed: {sorted(allowed)})"
                )
            args[name] = value
    round_number: Optional[int] = None
    if "round" in args:
        try:
            round_number = int(args["round"])
        except ValueError as exc:
            raise FaultError(f"fault round must be an integer: {chunk!r}") from exc
        if round_number < 1:
            raise FaultError(f"fault rounds are 1-based: {chunk!r}")
    ms = 0.0
    if kind == "slow-oracle":
        if "ms" not in args:
            raise FaultError("slow-oracle requires ms=N (e.g. slow-oracle:ms=50)")
        try:
            ms = float(args["ms"])
        except ValueError as exc:
            raise FaultError(f"fault ms must be a number: {chunk!r}") from exc
        if ms < 0:
            raise FaultError(f"fault ms must be non-negative: {chunk!r}")
    return FaultSpec(kind=kind, round=round_number, ms=ms)


def parse_fault_plan(text: str) -> "FaultPlan":
    """Parse a plan from spec text (``;``/whitespace-separated specs)."""
    specs = [_parse_spec(chunk) for chunk in re.split(r"[;\s]+", text.strip()) if chunk]
    if not specs:
        raise FaultError("empty fault plan")
    return FaultPlan(specs)


class FaultPlan:
    """A parsed set of scripted faults, queried at the choke points.

    Thread-safe: the serve daemon runs jobs on a thread pool, and a
    one-shot fault must fire exactly once across all of them.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()

    def describe(self) -> str:
        """The whole plan as parseable text (see :data:`ENV_VAR`)."""
        return ";".join(spec.describe() for spec in self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r})"

    # ------------------------------------------------------------- queries
    def should(self, kind: str, round_index: Optional[int] = None) -> bool:
        """Whether a ``kind`` fault fires at this choke point (one-shot).

        ``round_index`` is the 0-based round of the choke point; specs
        carry 1-based rounds.  A spec without a round fires at the first
        opportunity.  Firing latches the spec and reports itself
        (counters, bus event, WARNING log).
        """
        with self._lock:
            for spec in self.specs:
                if spec.kind != kind or spec.fired:
                    continue
                if spec.round is not None:
                    if round_index is None or round_index + 1 != spec.round:
                        continue
                spec.fired = True
                _report_fired(spec, round_index)
                return True
        return False

    def delay_ms(self, kind: str = "slow-oracle") -> float:
        """The continuous delay of ``kind`` in ms (0.0 when not planned)."""
        for spec in self.specs:
            if spec.kind == kind:
                if not spec.counted:
                    with self._lock:
                        if not spec.counted:
                            spec.counted = True
                            _report_fired(spec, None)
                return spec.ms
        return 0.0

    def sleep(self, kind: str = "slow-oracle") -> None:
        """Honor a continuous delay fault (no-op when not planned)."""
        ms = self.delay_ms(kind)
        if ms > 0:
            import time

            time.sleep(ms / 1000.0)


def _report_fired(spec: FaultSpec, round_index: Optional[int]) -> None:
    obs.inc("fault.injected")
    obs.inc(f"fault.injected.{spec.kind}")
    payload: Dict[str, object] = {"kind": spec.kind}
    if round_index is not None:
        payload["round"] = round_index + 1
    if spec.kind == "slow-oracle":
        payload["ms"] = spec.ms
    obs.publish("fault", **payload)
    obs.get_logger("faults").warning(
        "injecting fault %s", spec.describe(), extra={"fault": spec.describe()}
    )


# --------------------------------------------------------------------------
# The installed plan.  Mirrors the tracer's module-global pattern; the env
# mirror is what makes the plan reach spawned/forked pool workers.
# --------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False

#: The 0-based round the parent flow is currently routing (set by
#: :meth:`repro.router.router.GlobalRouter.run`); choke points that do not
#: receive the round explicitly (the engine's batch path) read it here.
_ROUND: Optional[int] = None


def get_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the common, zero-cost case).

    The first call of a process consults :data:`ENV_VAR`, which is how a
    plan installed in the CLI parent reaches pool workers under every
    multiprocessing start method.
    """
    global _ENV_CHECKED, _PLAN
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        if _PLAN is None:
            text = os.environ.get(ENV_VAR)
            if text:
                _PLAN = parse_fault_plan(text)
    return _PLAN


def install_plan(plan) -> FaultPlan:
    """Install a plan (object or spec text) process-wide and return it.

    The plan is mirrored into :data:`ENV_VAR` so worker processes started
    *after* this call observe it too.  Install before creating pools.
    """
    global _PLAN, _ENV_CHECKED
    if isinstance(plan, str):
        plan = parse_fault_plan(plan)
    _PLAN = plan
    _ENV_CHECKED = True
    os.environ[ENV_VAR] = plan.describe()
    return plan


def clear_plan() -> None:
    """Remove the installed plan (and its env mirror)."""
    global _PLAN, _ENV_CHECKED, _ROUND
    _PLAN = None
    _ENV_CHECKED = True
    _ROUND = None
    os.environ.pop(ENV_VAR, None)


def set_round(round_index: Optional[int]) -> None:
    """Record the 0-based round the flow is currently routing."""
    global _ROUND
    _ROUND = round_index


def current_round() -> Optional[int]:
    """The 0-based round last recorded by :func:`set_round`."""
    return _ROUND


# --------------------------------------------------------------------------
# Fault actions (called by the choke points once ``should`` fired).
# --------------------------------------------------------------------------


def kill_pool_worker(pool) -> Optional[int]:
    """SIGKILL one live worker of a ``multiprocessing`` pool.

    Returns the victim's pid, or ``None`` when the pool has no live
    workers (the fault then degenerates to a no-op, which is fine -- the
    collection loop it was meant to exercise still runs).
    """
    for process in list(getattr(pool, "_pool", None) or []):
        if process.exitcode is None and process.pid is not None:
            os.kill(process.pid, signal.SIGKILL)
            return process.pid
    return None


def hard_crash(round_index: Optional[int] = None) -> None:
    """Exit the process the way a crash would: no cleanup, no teardown.

    ``os._exit`` skips ``atexit``/``finally`` on purpose -- the point of
    the ``crash-run`` fault is proving that the *durably written* state
    (the checkpoint renamed into place before this choke) is enough to
    resume, not that an orderly shutdown is.
    """
    obs.get_logger("faults").warning("crash-run fault: hard-exiting with code %d", CRASH_EXIT_CODE)
    os._exit(CRASH_EXIT_CODE)
