"""ECO-stream endurance ("soak") harness: chaos in, parity out.

``python -m repro soak`` replays one seeded ECO stream (see
:mod:`repro.instances.eco_stream`) twice against the same design:

* a **clean** run -- same decomposition, serial region execution, no
  faults -- which defines the ground truth, and
* a **chaos** run -- region worker pool plus whatever fault plan
  ``--inject`` installs (killed workers, dropped outcomes, slowed
  oracles) -- which must not be allowed to matter.

After the initial route and after every ECO batch the harness compares
the two runs' :data:`~repro.router.metrics.PARITY_FIELDS`, and at the end
of the stream it compares the per-net embedded trees edge for edge.  Any
difference is a recovery bug: the fault subsystem's contract is that an
injected fault may cost walltime but never changes a bit of the result.

The report is one JSON document on stdout (or ``--output``); the exit
status is 0 only when every comparison matched, so CI can run this as a
single assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import faults, obs
from repro.instances.chips import CHIP_SUITE, build_chip
from repro.instances.eco_stream import EcoStreamConfig, generate_eco_stream
from repro.router.metrics import PARITY_FIELDS, RoutingResult
from repro.router.oracles import ORACLES, make_oracle
from repro.router.router import GlobalRouterConfig
from repro.serve.session import RoutingSession

__all__ = ["build_parser", "run_soak", "main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro soak",
        description=(
            "Replay a seeded ECO stream against a clean session and a "
            "fault-injected sharded session; assert bit-identical results."
        ),
    )
    parser.add_argument(
        "--chip",
        default="c1",
        choices=[spec.name for spec in CHIP_SUITE],
        help="chip of the synthetic suite",
    )
    parser.add_argument("--oracle", default="CD", choices=sorted(ORACLES), help="Steiner oracle")
    parser.add_argument(
        "--net-scale",
        type=float,
        default=0.15,
        help="scale factor on the chip's net count",
    )
    parser.add_argument("--rounds", type=_positive_int, default=2, help="resource-sharing rounds")
    parser.add_argument("--seed", type=int, default=0, help="routing seed")
    parser.add_argument("--ops", type=_positive_int, default=60, help="total ECO operations")
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=5,
        help="ECO operations per request",
    )
    parser.add_argument(
        "--stream-seed",
        type=int,
        default=None,
        help="ECO stream seed (default: --seed)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=2,
        help="regions of the chaos run's decomposition (the clean run reuses it serially)",
    )
    parser.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=2,
        help="region worker processes of the chaos run",
    )
    parser.add_argument("--shard-halo", type=int, default=0, help="interior/seam halo tiles")
    parser.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "fault plan of the chaos run, e.g. 'kill-region-worker:round=2' "
            "or 'slow-oracle:ms=5'; repeatable (see repro.faults)"
        ),
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="write the JSON report here instead of stdout",
    )
    return parser


def _session_config(args: argparse.Namespace, shard_workers: Optional[int]) -> GlobalRouterConfig:
    return GlobalRouterConfig(
        num_rounds=args.rounds,
        seed=args.seed,
        shards=args.shards,
        shard_halo=args.shard_halo,
        shard_workers=shard_workers,
    )


def _tree_signature(session: RoutingSession) -> Dict[str, Optional[Tuple]]:
    """Per-net ``name -> (root, sinks, edges)`` of the session's trees."""
    router = session.router
    assert router is not None
    signature: Dict[str, Optional[Tuple]] = {}
    for net, tree in zip(session.netlist.nets, router.trees):
        if tree is None:
            signature[net.name] = None
        else:
            signature[net.name] = (int(tree.root), tuple(tree.sinks), tuple(tree.edges))
    return signature


def _replay(
    session: RoutingSession, batches: List[List[Dict[str, object]]], label: str
) -> Tuple[List[RoutingResult], float]:
    """Initial route plus the whole stream; per-flow terminal results."""
    logger = obs.get_logger("serve.soak")
    start = time.perf_counter()
    results = [session.route()]
    for index, batch in enumerate(batches):
        report = session.apply_eco(batch)
        results.append(report.result)
        logger.info(
            "%s: batch %d/%d (%d ops) rerouted=%d reused=%d",
            label,
            index + 1,
            len(batches),
            len(batch),
            report.nets_rerouted,
            report.nets_reused,
        )
    return results, time.perf_counter() - start


def run_soak(args: argparse.Namespace) -> Dict[str, object]:
    """Run the endurance comparison and return the report document."""
    spec = next(s for s in CHIP_SUITE if s.name == args.chip)
    if args.net_scale != 1.0:
        spec = spec.scaled(args.net_scale)
    graph, netlist = build_chip(spec)
    stream_seed = args.seed if args.stream_seed is None else args.stream_seed
    batches = generate_eco_stream(
        netlist,
        graph,
        EcoStreamConfig(ops=args.ops, batch_size=args.batch_size, seed=stream_seed),
    )
    plan_text = ";".join(args.inject) if args.inject else ""

    faults.clear_plan()
    clean = RoutingSession(graph, netlist, make_oracle(args.oracle), _session_config(args, None))
    clean_results, clean_walltime = _replay(clean, batches, "clean")

    if plan_text:
        faults.install_plan(plan_text)
    try:
        chaos = RoutingSession(
            graph,
            netlist,
            make_oracle(args.oracle),
            _session_config(args, args.shard_workers),
        )
        chaos_results, chaos_walltime = _replay(chaos, batches, "chaos")
    finally:
        faults.clear_plan()

    mismatches: List[Dict[str, object]] = []
    for flow, (want, got) in enumerate(zip(clean_results, chaos_results)):
        for name in PARITY_FIELDS:
            expected = getattr(want, name)
            actual = getattr(got, name)
            if expected != actual:
                mismatches.append({"flow": flow, "field": name, "clean": expected, "chaos": actual})
    clean_trees = _tree_signature(clean)
    chaos_trees = _tree_signature(chaos)
    tree_diff = sorted(
        name
        for name in set(clean_trees) | set(chaos_trees)
        if clean_trees.get(name) != chaos_trees.get(name)
    )
    if tree_diff:
        mismatches.append({"flow": len(clean_results) - 1, "trees": tree_diff})

    snapshot = obs.default_registry().snapshot()
    chaos_counters = {
        name: value
        for name, value in snapshot.get("counters", {}).items()  # type: ignore[union-attr]
        if name.startswith(("fault.", "recovery."))
    }
    return {
        "chip": spec.name,
        "nets": netlist.num_nets,
        "oracle": args.oracle,
        "rounds": args.rounds,
        "seed": args.seed,
        "stream_seed": stream_seed,
        "ops": args.ops,
        "batches": len(batches),
        "shards": args.shards,
        "shard_workers": args.shard_workers,
        "inject": plan_text,
        "flows": len(clean_results),
        "clean_walltime": clean_walltime,
        "chaos_walltime": chaos_walltime,
        "fault_counters": chaos_counters,
        "parity": not mismatches,
        "mismatches": mismatches,
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_soak(args)
    document = json.dumps(report, indent=2, default=float)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    else:
        print(document)
    if not report["parity"]:
        print(
            f"soak FAILED: {len(report['mismatches'])} mismatch(es) between clean and chaos runs",
            file=sys.stderr,
        )
        return 1
    print(
        f"soak OK: {report['flows']} flows ({report['ops']} ECO ops) "
        "bit-identical under fault plan "
        f"{report['inject'] or '<none>'}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
