"""Versioned on-disk checkpoints of a routing run.

A checkpoint captures everything :meth:`repro.router.router.GlobalRouter.export_state`
deems flow-determining -- routed trees, congestion usage, resource-sharing
prices, the round counter, and (when the engine cache is on) the stored
re-route signatures -- next to a fingerprint of the inputs (netlist, graph,
oracle, seed, round budget).  Restoring it into a freshly built router over
the same inputs resumes the flow *bit for bit*: the remaining rounds produce
exactly the trees and metrics an uninterrupted run would have produced,
because each round is a pure function of the restored state.

The format is a single JSON document.  Float scalars survive JSON exactly
(Python encodes them via ``repr``, which round-trips every finite double);
the large float64 arrays are stored as base64 of their raw bytes, which is
lossless by construction.  ``version`` guards the schema: readers refuse
checkpoints written by an incompatible layout rather than mis-restoring.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.router.router import GlobalRouter

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "Checkpoint",
    "router_fingerprint",
    "encode_region_signatures",
    "decode_region_signatures",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_hook",
    "checkpoint_every_hook",
    "resume_router",
    "try_resume_router",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
#: Version 2 added the per-region replay-memo sections
#: (``region_cache_signatures``): sharded flows keep their re-route
#: signatures inside per-scope engines, exported as name-keyed sections so a
#: resume -- under the same or a different decomposition, sharded or not --
#: restores them.  Version 1 checkpoints lack the sections and are rejected
#: with a clear error instead of being restored with silently dropped state.
CHECKPOINT_VERSION = 2


class CheckpointError(RuntimeError):
    """A checkpoint could not be read or does not match the router."""


def encode_array(array: np.ndarray) -> Dict[str, object]:
    """Lossless JSON encoding of a numpy array (dtype + shape + raw bytes)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(record: Dict[str, object]) -> np.ndarray:
    """The exact inverse of :func:`encode_array`."""
    raw = base64.b64decode(str(record["data"]))
    array = np.frombuffer(raw, dtype=np.dtype(str(record["dtype"])))
    return array.reshape([int(n) for n in record["shape"]]).copy()  # type: ignore[union-attr]


def router_fingerprint(router: GlobalRouter) -> Dict[str, object]:
    """The input identity a checkpoint is only valid against.

    Covers every configuration knob the remaining rounds depend on --
    bit-for-bit resume is only guaranteed when all of them match.  The
    executor backend and worker count are deliberately *excluded*: all
    backends produce identical trees (the engine's determinism contract),
    so a run checkpointed under ``serial`` may resume under ``process``.
    """
    config = router.config
    sharing = config.resource_sharing
    return {
        "netlist": router.netlist.name,
        "num_nets": router.netlist.num_nets,
        "grid": [router.graph.nx, router.graph.ny, router.graph.num_layers],
        "num_edges": router.graph.num_edges,
        "oracle": router.oracle.name,
        "seed": config.seed,
        "num_rounds": config.num_rounds,
        "dbif": config.dbif,
        "eta": config.eta,
        "cost_refresh_interval": config.cost_refresh_interval,
        "resource_sharing": [
            sharing.edge_price_strength,
            sharing.max_edge_price,
            sharing.base_delay_weight,
            sharing.critical_delay_weight,
            sharing.weight_smoothing,
        ],
        "scheduling": [
            config.engine.scheduling,
            config.engine.max_batch_size,
            config.engine.bbox_halo,
        ],
        "cache": [config.engine.reroute_cache, config.engine.cache_scope],
    }


@dataclass
class Checkpoint:
    """A loaded checkpoint: input fingerprint plus restorable router state."""

    fingerprint: Dict[str, object]
    state: Dict[str, object]

    @property
    def rounds_completed(self) -> int:
        return int(self.state["rounds_completed"])  # type: ignore[arg-type]

    def restore(self, router: GlobalRouter) -> None:
        """Install this checkpoint's state into ``router``.

        Raises
        ------
        CheckpointError
            If the router was built from different inputs than the run
            that wrote the checkpoint.
        """
        actual = router_fingerprint(router)
        if actual != self.fingerprint:
            mismatched = sorted(
                key
                for key in set(actual) | set(self.fingerprint)
                if actual.get(key) != self.fingerprint.get(key)
            )
            raise CheckpointError(
                f"checkpoint does not match this router (differs on {mismatched})"
            )
        router.import_state(self.state)


def encode_region_signatures(
    sections: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """JSON encoding of the per-region signature sections (hex digests)."""
    if sections is None:
        return None
    return {
        "layout": sections.get("layout") or {},
        "scopes": {
            scope_key: {name: sig.hex() for name, sig in by_name.items()}
            for scope_key, by_name in (  # type: ignore[union-attr]
                sections.get("scopes") or {}
            ).items()
        },
    }


def decode_region_signatures(
    record: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """The exact inverse of :func:`encode_region_signatures`."""
    if record is None:
        return None
    return {
        "layout": record.get("layout") or {},
        "scopes": {
            scope_key: {
                str(name): bytes.fromhex(str(sig)) for name, sig in by_name.items()
            }
            for scope_key, by_name in (  # type: ignore[union-attr]
                record.get("scopes") or {}
            ).items()
        },
    }


def save_checkpoint(router: GlobalRouter, path: str) -> None:
    """Write the router's current state to ``path`` (atomic replace)."""
    with obs.span("checkpoint_save", path=path, round=router.rounds_completed):
        _save_checkpoint(router, path)
    obs.inc("checkpoint.saves")


def _save_checkpoint(router: GlobalRouter, path: str) -> None:
    state = router.export_state()
    signatures: Optional[Dict[str, str]] = None
    if state["cache_signatures"] is not None:
        signatures = {
            str(index): sig.hex()
            for index, sig in state["cache_signatures"].items()  # type: ignore[union-attr]
        }
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "fingerprint": router_fingerprint(router),
        "state": {
            "rounds_completed": state["rounds_completed"],
            "trees": state["trees"],
            "congestion": {
                "overflow_penalty": state["congestion"]["overflow_penalty"],  # type: ignore[index]
                "threshold": state["congestion"]["threshold"],  # type: ignore[index]
                "usage": encode_array(state["congestion"]["usage"]),  # type: ignore[index]
            },
            "edge_prices": encode_array(state["edge_prices"]),  # type: ignore[arg-type]
            "delay_weights": state["delay_weights"],
            "cache_signatures": signatures,
            "region_cache_signatures": encode_region_signatures(
                state.get("region_cache_signatures")  # type: ignore[arg-type]
            ),
        },
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".checkpoint-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with obs.span("checkpoint_load", path=path):
        checkpoint = _load_checkpoint(path)
    obs.inc("checkpoint.loads")
    return checkpoint


def _load_checkpoint(path: str) -> Checkpoint:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(document, dict):
        raise CheckpointError(f"{path!r} is not a {CHECKPOINT_FORMAT} file")
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path!r} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        if document.get("version") == 1:
            raise CheckpointError(
                f"{path!r} is a version 1 checkpoint, which predates the "
                "per-region replay-memo sections (region_cache_signatures); "
                f"this build reads version {CHECKPOINT_VERSION} -- re-run "
                "the flow and write a fresh checkpoint"
            )
        raise CheckpointError(
            f"{path!r} has unsupported checkpoint version "
            f"{document.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    # Every shape assumption below is guarded: a truncated or hand-edited
    # document must surface as a CheckpointError naming the file, never as
    # a raw KeyError/ValueError traceback out of the decoding internals.
    try:
        fingerprint = document["fingerprint"]
        raw_state = document["state"]
        signatures = None
        if raw_state.get("cache_signatures") is not None:
            signatures = {
                int(index): bytes.fromhex(sig)
                for index, sig in raw_state["cache_signatures"].items()
            }
        state = {
            "rounds_completed": int(raw_state["rounds_completed"]),
            "trees": raw_state["trees"],
            "congestion": {
                "overflow_penalty": float(raw_state["congestion"]["overflow_penalty"]),
                "threshold": float(raw_state["congestion"]["threshold"]),
                "usage": decode_array(raw_state["congestion"]["usage"]),
            },
            "edge_prices": decode_array(raw_state["edge_prices"]),
            "delay_weights": raw_state["delay_weights"],
            "cache_signatures": signatures,
            "region_cache_signatures": decode_region_signatures(
                raw_state.get("region_cache_signatures")
            ),
        }
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt or truncated ({exc!r})"
        ) from exc
    return Checkpoint(fingerprint=fingerprint, state=state)


def checkpoint_every_hook(path: str, every: int = 1):
    """An ``on_round_end`` callback that checkpoints every ``every``-th
    round -- and always after the final round, so a completed flow never
    leaves a stale mid-flow checkpoint behind.

    Usage::

        router.run(on_round_end=checkpoint_every_hook("run.ckpt", 2))
    """
    if every < 1:
        raise ValueError("checkpoint interval must be positive")

    def hook(router: GlobalRouter, round_index: int) -> None:
        completed = round_index + 1
        if completed % every == 0 or completed >= router.config.num_rounds:
            save_checkpoint(router, path)

    return hook


def checkpoint_hook(path: str):
    """An ``on_round_end`` callback that checkpoints after every round.

    Usage::

        router.run(on_round_end=checkpoint_hook("run.ckpt"))
    """
    return checkpoint_every_hook(path, 1)


def resume_router(router: GlobalRouter, path: str) -> bool:
    """Restore ``path`` into ``router`` if it exists; returns whether it did."""
    if not os.path.exists(path):
        return False
    load_checkpoint(path).restore(router)
    return True


def try_resume_router(router: GlobalRouter, path: str) -> bool:
    """Like :func:`resume_router`, but an *unusable* checkpoint degrades to
    a fresh start instead of failing the run.

    The crash-recovery contract of the serve daemon: a checkpoint that is
    corrupt, truncated, or written against different inputs means the run
    restarts from round 0 -- with a structured warning and a
    ``recovery.checkpoint_corrupt`` counter -- because re-routing from
    scratch always converges to the same result, while refusing to start
    would leave the re-adopted job dead.  A *missing* checkpoint is the
    ordinary cold-start case and is not warned about.
    """
    try:
        return resume_router(router, path)
    except CheckpointError as exc:
        obs.get_logger("serve.checkpoint").warning(
            "ignoring unusable checkpoint %s (%s); restarting from round 0",
            path,
            exc,
            extra={"checkpoint": path},
        )
        obs.inc("recovery.checkpoint_corrupt")
        obs.publish("recovery", kind="checkpoint_corrupt", path=path)
        return False
