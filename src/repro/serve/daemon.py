"""The routing service daemon: JSON-lines over TCP, stdlib only.

:class:`ServeDaemon` multiplexes concurrent routing jobs across engine
backends.  A ``ThreadingTCPServer`` answers one JSON object per line
(``submit`` / ``status`` / ``result`` / ``cancel`` / ``jobs`` / ``sessions``
/ ``ping`` / ``shutdown``); actual routing runs on a small worker pool, so
slow jobs never block the control plane.  Each job is either a full route
(optionally opening a named persistent :class:`~repro.serve.session.RoutingSession`)
or an ECO delta against an existing session.

Cancellation is two-tier: a queued job's future is cancelled outright, a
running job is stopped cooperatively at its next round boundary (the
router's ``on_round_end`` hook raises :class:`~repro.serve.jobs.JobCancelled`),
which leaves no half-applied congestion state behind.

The wire protocol is deliberately primitive -- newline-delimited JSON over a
localhost socket -- so ``nc``/``telnet`` can poke it and the client needs
nothing beyond the standard library.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.engine import EngineConfig
from repro.grid.congestion import CongestionMap
from repro.grid.partition import partition_grid
from repro.instances.chips import CHIP_SUITE, ChipSpec, build_chip
from repro.router.metrics import RoutingResult
from repro.router.netlist import Netlist
from repro.router.oracles import make_oracle
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.jobs import JobCancelled, JobState, JobStore
from repro.serve.session import RoutingSession

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServeDaemon"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


def _engine_config_from_params(params: Dict[str, object]) -> EngineConfig:
    return EngineConfig(
        backend=str(params.get("backend", "serial")),
        num_workers=params.get("workers"),  # type: ignore[arg-type]
        scheduling=str(params.get("scheduling", "window")),
        reroute_cache=bool(params.get("cache", False)),
        cache_scope=str(params.get("cache_scope", "bbox")),
    )


def _router_config_from_params(
    params: Dict[str, object], force_single_shard: bool = False
) -> GlobalRouterConfig:
    return GlobalRouterConfig(
        num_rounds=int(params.get("rounds", 2)),  # type: ignore[arg-type]
        seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
        engine=_engine_config_from_params(params),
        shards=1 if force_single_shard else int(params.get("shards", 1)),  # type: ignore[arg-type]
        shard_parity=bool(params.get("shard_parity", False)),
        shard_halo=int(params.get("shard_halo", 0)),  # type: ignore[arg-type]
    )


def _chip_from_params(params: Dict[str, object]) -> ChipSpec:
    chip_name = str(params.get("chip", "c1"))
    spec = next((s for s in CHIP_SUITE if s.name == chip_name), None)
    if spec is None:
        raise ValueError(f"unknown chip {chip_name!r}")
    net_scale = float(params.get("net_scale", 1.0))  # type: ignore[arg-type]
    if net_scale != 1.0:
        spec = spec.scaled(net_scale)
    return spec


class _Handler(socketserver.StreamRequestHandler):
    """One connection: any number of JSON-line requests until EOF."""

    def handle(self) -> None:
        daemon: "ServeDaemon" = self.server.daemon_ref  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                response = daemon.handle(request)
            except Exception as exc:  # protocol surface: never kill the socket
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeDaemon:
    """The routing service: job store + worker pool + TCP control plane.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after construction).
    job_workers:
        Concurrent routing jobs (each may itself fan out over a process
        pool when its engine backend says so).
    state_dir:
        Optional directory for job persistence across daemon restarts.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        job_workers: int = 2,
        state_dir: Optional[str] = None,
    ) -> None:
        if job_workers < 1:
            raise ValueError("job_workers must be positive")
        self.store = JobStore(state_dir)
        #: ``None`` marks a name reserved by a route job still in flight.
        self.sessions: Dict[str, Optional[RoutingSession]] = {}
        self._session_locks: Dict[str, threading.Lock] = {}
        self._sessions_guard = threading.Lock()
        self._futures: Dict[str, Future] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-serve"
        )
        self._server = _Server((host, port), _Handler)
        self._server.daemon_ref = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False

    # ----------------------------------------------------------- lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> Tuple[str, int]:
        """Serve on a background thread; returns the bound address."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        return self.address

    def shutdown(self) -> None:
        """Stop accepting requests and release all resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for event in self._cancel_flags.values():
            event.set()
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------- protocol
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one request object to its ``op`` handler."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not isinstance(op, str) or op.startswith("_"):
            return {"ok": False, "error": f"unknown op {op!r}"}
        return handler(request)

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._sessions_guard:
            session_names = sorted(
                name for name, session in self.sessions.items() if session is not None
            )
        return {
            "ok": True,
            "pong": True,
            "jobs": self.store.counts(),
            "sessions": session_names,
        }

    def _op_submit(self, request: Dict[str, object]) -> Dict[str, object]:
        kind = request.get("kind")
        if kind not in ("route", "eco", "shard"):
            return {"ok": False, "error": f"unknown job kind {kind!r}"}
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return {"ok": False, "error": "params must be a JSON object"}
        job = self.store.submit(str(kind), params)
        self._cancel_flags[job.job_id] = threading.Event()
        self._futures[job.job_id] = self._pool.submit(self._run_job, job.job_id)
        return {"ok": True, "job_id": job.job_id}

    def _op_status(self, request: Dict[str, object]) -> Dict[str, object]:
        snapshot = self.store.snapshot(str(request.get("job_id")), with_result=False)
        return {"ok": True, "job": snapshot}

    def _op_result(self, request: Dict[str, object]) -> Dict[str, object]:
        snapshot = self.store.snapshot(str(request.get("job_id")), with_result=True)
        return {"ok": True, "job": snapshot}

    def _op_cancel(self, request: Dict[str, object]) -> Dict[str, object]:
        job_id = str(request.get("job_id"))
        job = self.store.get(job_id)  # raises for unknown ids
        future = self._futures.get(job_id)
        if future is not None and future.cancel():
            self.store.mark_cancelled(job_id)
            return {"ok": True, "status": JobState.CANCELLED}
        flag = self._cancel_flags.get(job_id)
        if flag is not None:
            flag.set()
        return {"ok": True, "status": self.store.get(job_id).status}

    def _op_jobs(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "jobs": self.store.snapshots(with_result=False)}

    def _op_sessions(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._sessions_guard:
            sessions = [
                {
                    "name": session.name,
                    "nets": session.num_nets,
                    "generation": session.generation,
                }
                for session in self.sessions.values()
                if session is not None
            ]
        return {"ok": True, "sessions": sorted(sessions, key=lambda s: s["name"])}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        # Respond first, then tear down from a separate thread so the
        # handler's socket write is not racing the server close.
        threading.Thread(target=self.shutdown, name="repro-serve-stop").start()
        return {"ok": True, "stopping": True}

    # ------------------------------------------------------------ job logic
    def _run_job(self, job_id: str) -> None:
        cancel = self._cancel_flags[job_id]
        try:
            if cancel.is_set():
                raise JobCancelled()
            self.store.mark_running(job_id)
            job = self.store.get(job_id)
            if job.kind == "route":
                result = self._run_route(job.params, cancel)
            elif job.kind == "shard":
                result = self._run_shard(job.job_id, job.params, cancel)
            else:
                result = self._run_eco(job.params, cancel)
            self.store.mark_done(job_id, result)
        except JobCancelled:
            self.store.mark_cancelled(job_id)
        except Exception as exc:
            self.store.mark_failed(job_id, f"{type(exc).__name__}: {exc}")
        finally:
            self._futures.pop(job_id, None)
            self._cancel_flags.pop(job_id, None)

    @staticmethod
    def _cancel_hook(cancel: threading.Event):
        def hook(router: GlobalRouter, round_index: int) -> None:
            if cancel.is_set():
                raise JobCancelled()

        return hook

    def _run_route(
        self, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        spec = _chip_from_params(params)
        graph, netlist = build_chip(spec)
        oracle = make_oracle(str(params.get("oracle", "CD")))
        # A shard child routes one region's interior sub-netlist; its own
        # flow is single-region (the parent owns the decomposition).
        shard_index = params.get("shard_index")
        config = _router_config_from_params(
            params, force_single_shard=shard_index is not None
        )
        if shard_index is not None:
            partition = partition_grid(
                graph.nx, graph.ny, int(params.get("shards", 1))  # type: ignore[arg-type]
            )
            classification = partition.classify_nets(
                netlist, halo=int(params.get("shard_halo", 0))  # type: ignore[arg-type]
            )
            interior = classification.interior[int(shard_index)]  # type: ignore[arg-type]
            netlist = netlist.subset(interior)
        session_name = params.get("session")
        if session_name is not None and config.shards > 1:
            raise ValueError(
                "sessions require an unsharded flow; submit without --shards "
                "or without --session"
            )
        if session_name is not None:
            session_name = str(session_name)
            # Reserve the name atomically so two concurrent route jobs
            # cannot both pass the duplicate check and race the insert.
            with self._sessions_guard:
                if session_name in self.sessions:
                    raise ValueError(
                        f"session {session_name!r} already exists; submit an "
                        "eco job against it instead"
                    )
                self.sessions[session_name] = None
            try:
                session = RoutingSession(
                    graph, netlist, oracle, config, name=session_name
                )
                result = session.route(on_round_end=self._cancel_hook(cancel))
            except BaseException:
                with self._sessions_guard:
                    if self.sessions.get(session_name) is None:
                        self.sessions.pop(session_name, None)
                raise
            with self._sessions_guard:
                self.sessions[session_name] = session
                self._session_locks[session_name] = threading.Lock()
            return {
                "result": result.as_dict(),
                "session": session_name,
                "backend": session.config.engine.backend,
            }
        router = GlobalRouter(graph, netlist, oracle, config)
        result = router.run(on_round_end=self._cancel_hook(cancel))
        payload: Dict[str, object] = {
            "result": result.as_dict(),
            "session": None,
            "backend": config.engine.backend,
        }
        if shard_index is not None:
            payload["shard_index"] = int(shard_index)  # type: ignore[arg-type]
        if params.get("emit_usage"):
            # Shard children ship their final congestion usage so the parent
            # can stitch the regions before routing the seam nets.
            payload["usage"] = router.congestion.usage.tolist()
        if router.engine.cache is not None:
            stats = router.engine.cache.stats
            payload["cache"] = {"hits": stats.hits, "lookups": stats.lookups}
        return payload

    def _run_shard(
        self, job_id: str, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        """Fan one design out as K region sub-jobs, then stitch and merge.

        Every region with interior nets becomes a real ``route`` job in the
        store (visible via ``status``), executed on a dedicated thread so a
        shard job can never deadlock the worker pool against its own
        children.  The parent stitches the children's congestion usage,
        routes the seam-crossing nets against it, and returns one merged
        :class:`RoutingResult` record: additive metrics (wire length, vias,
        TNS, objective, nets) are summed, worst slack is the minimum, and
        the congestion metrics (ACE4, overflow) are computed on the stitched
        full-design map.  Timing stages crossing region boundaries are
        relaxed in this path -- the in-process coordinator
        (``route --shards K``) keeps them.
        """
        started = time.perf_counter()
        spec = _chip_from_params(params)
        graph, netlist = build_chip(spec)
        oracle = make_oracle(str(params.get("oracle", "CD")))
        shards = int(params.get("shards", 2))  # type: ignore[arg-type]
        if shards < 2:
            raise ValueError("shard jobs need shards >= 2")
        halo = int(params.get("shard_halo", 0))  # type: ignore[arg-type]
        partition = partition_grid(graph.nx, graph.ny, shards)
        classification = partition.classify_nets(netlist, halo=halo)

        child_params_base = {
            key: value
            for key, value in params.items()
            if key not in ("session", "shard_index", "emit_usage")
        }
        children: List[str] = []
        threads: List[threading.Thread] = []
        for region_index, interior in enumerate(classification.interior):
            if not interior:
                continue
            child = self.store.submit(
                "route",
                {
                    **child_params_base,
                    "shard_index": region_index,
                    "emit_usage": True,
                    "parent": job_id,
                },
            )
            children.append(child.job_id)
            self._cancel_flags[child.job_id] = threading.Event()
            thread = threading.Thread(
                target=self._run_job,
                args=(child.job_id,),
                name=f"repro-shard-{child.job_id}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
        try:
            for thread in threads:
                while thread.is_alive():
                    thread.join(timeout=0.1)
                    if cancel.is_set():
                        for child_id in children:
                            flag = self._cancel_flags.get(child_id)
                            if flag is not None:
                                flag.set()
        finally:
            for thread in threads:
                thread.join()
        if cancel.is_set():
            raise JobCancelled()

        stitched = np.zeros(graph.num_edges, dtype=np.float64)
        child_results: List[RoutingResult] = []
        for child_id in children:
            child = self.store.get(child_id)
            if child.status != JobState.DONE:
                raise RuntimeError(
                    f"shard sub-job {child_id} ended {child.status}: {child.error}"
                )
            payload = child.result or {}
            child_results.append(
                RoutingResult.from_dict(payload["result"])  # type: ignore[arg-type]
            )
            stitched += np.asarray(payload["usage"], dtype=np.float64)

        seam_result: Optional[RoutingResult] = None
        seam = classification.seam
        if seam:
            seam_config = _router_config_from_params(params, force_single_shard=True)
            seam_router = GlobalRouter(
                graph, netlist.subset(seam), oracle, seam_config
            )
            # Seed the seam flow with the stitched interior congestion: seam
            # nets are priced against the regions' combined usage, exactly
            # like the in-process coordinator's seam pass.
            seam_router.congestion.usage[:] = stitched
            seam_result = seam_router.run(on_round_end=self._cancel_hook(cancel))
            final_map = seam_router.congestion
        else:
            final_map = CongestionMap(graph)
            final_map.usage[:] = stitched

        merged = self._merge_results(
            spec.name, child_results, seam_result, final_map, netlist,
            time.perf_counter() - started,
        )
        return {
            "result": merged.as_dict(),
            "shards": shards,
            "subjobs": children,
            "seam_nets": len(seam),
            "interior_nets": [len(r) for r in classification.interior],
            "backend": str(params.get("backend", "serial")),
        }

    @staticmethod
    def _merge_results(
        chip: str,
        child_results: List[RoutingResult],
        seam_result: Optional[RoutingResult],
        final_map: CongestionMap,
        netlist: Netlist,
        walltime: float,
    ) -> RoutingResult:
        parts = list(child_results)
        if seam_result is not None:
            parts.append(seam_result)
        if not parts:
            raise ValueError("shard job produced no partial results")
        return RoutingResult(
            chip=chip,
            method=parts[0].method,
            worst_slack=min(p.worst_slack for p in parts),
            total_negative_slack=sum(p.total_negative_slack for p in parts),
            ace4=final_map.ace4(),
            wire_length=sum(p.wire_length for p in parts),
            via_count=sum(p.via_count for p in parts),
            walltime_seconds=walltime,
            overflow=final_map.overflow(),
            objective=sum(p.objective for p in parts),
            num_nets=netlist.num_nets,
        )

    def _run_eco(
        self, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        session_name = str(params.get("session"))
        with self._sessions_guard:
            if self.sessions.get(session_name, "absent") is None:
                raise ValueError(
                    f"session {session_name!r} is still being created; retry "
                    "once its route job finishes"
                )
            session = self.sessions.get(session_name)
            lock = self._session_locks.get(session_name)
        if session is None or lock is None:
            raise ValueError(f"unknown session {session_name!r}")
        ops = params.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ValueError("eco jobs need a non-empty 'ops' list")
        with lock:  # ECOs against one session are serialised
            report = session.apply_eco(ops, on_round_end=self._cancel_hook(cancel))
        payload = report.as_dict()
        payload["session"] = session_name
        return payload
