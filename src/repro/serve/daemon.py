"""The routing service daemon: JSON-lines over TCP, stdlib only.

:class:`ServeDaemon` multiplexes concurrent routing jobs across engine
backends.  A ``ThreadingTCPServer`` answers one JSON object per line
(``submit`` / ``status`` / ``result`` / ``cancel`` / ``jobs`` / ``sessions``
/ ``history`` / ``health`` / ``metrics`` / ``ping`` / ``shutdown``); actual
routing runs on a small worker pool, so slow jobs never block the control
plane.  The one exception to one-line-per-request is ``watch``: it holds
the connection open and streams JSON-lines events from the daemon's
:class:`~repro.obs.bus.EventBus` (``round`` / ``region_done`` /
``seam_done`` / ``pool_degraded`` / ``job_state``) until the watched job
reaches a terminal state.  Publishing never blocks -- a stalled watcher
loses events to its bounded queue (``bus.dropped``), never stalls routing.
Each job is either a full route
(optionally opening a named persistent :class:`~repro.serve.session.RoutingSession`)
or an ECO delta against an existing session.

Cancellation is two-tier: a queued job's future is cancelled outright, a
running job is stopped cooperatively at its next round boundary (the
router's ``on_round_end`` hook raises :class:`~repro.serve.jobs.JobCancelled`),
which leaves no half-applied congestion state behind.

The wire protocol is deliberately primitive -- newline-delimited JSON over a
localhost socket -- so ``nc``/``telnet`` can poke it and the client needs
nothing beyond the standard library.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.engine.engine import EngineConfig
from repro.engine.executor import create_worker_pool
from repro.grid.congestion import CongestionMap
from repro.grid.partition import partition_grid
from repro.instances.chips import CHIP_SUITE, ChipSpec, build_chip
from repro.router.metrics import RoutingResult
from repro.router.netlist import Netlist
from repro.router.oracles import make_oracle
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.serve.checkpoint import checkpoint_every_hook, try_resume_router
from repro.serve.jobs import JobCancelled, JobState, JobStore
from repro.serve.session import RoutingSession

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServeDaemon"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


def _engine_config_from_params(params: Dict[str, object]) -> EngineConfig:
    return EngineConfig(
        backend=str(params.get("backend", "serial")),
        num_workers=params.get("workers"),  # type: ignore[arg-type]
        scheduling=str(params.get("scheduling", "window")),
        reroute_cache=bool(params.get("cache", False)),
        cache_scope=str(params.get("cache_scope", "bbox")),
    )


def _daemon_safe_start_method() -> str:
    """The region-pool start method for routers living inside the daemon.

    The daemon process is multi-threaded (listener, handler threads, job
    workers); ``fork`` -- the region pool's usual preference -- can copy a
    held lock into the child there, so in-daemon routers pin ``forkserver``
    (or ``spawn`` where unavailable) instead.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def _router_config_from_params(
    params: Dict[str, object], force_single_shard: bool = False
) -> GlobalRouterConfig:
    shard_workers = params.get("shard_workers")
    shards = 1 if force_single_shard else int(params.get("shards", 1))  # type: ignore[arg-type]
    return GlobalRouterConfig(
        num_rounds=int(params.get("rounds", 2)),  # type: ignore[arg-type]
        seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
        engine=_engine_config_from_params(params),
        shards=shards,
        shard_parity=bool(params.get("shard_parity", False)),
        shard_halo=int(params.get("shard_halo", 0)),  # type: ignore[arg-type]
        shard_workers=(
            None if shard_workers is None else int(shard_workers)  # type: ignore[arg-type]
        ),
        shard_start_method=(
            _daemon_safe_start_method()
            if shards > 1
            and shard_workers is not None
            and int(shard_workers) > 1  # type: ignore[arg-type]
            else None
        ),
    )


def _chip_from_params(params: Dict[str, object]) -> ChipSpec:
    chip_name = str(params.get("chip", "c1"))
    spec = next((s for s in CHIP_SUITE if s.name == chip_name), None)
    if spec is None:
        raise ValueError(f"unknown chip {chip_name!r}")
    net_scale = float(params.get("net_scale", 1.0))  # type: ignore[arg-type]
    if net_scale != 1.0:
        spec = spec.scaled(net_scale)
    return spec


def _chain_hooks(*hooks):
    """Compose ``on_round_end`` callbacks, invoked left to right."""

    def hook(router, round_index):
        for callback in hooks:
            callback(router, round_index)

    return hook


def _route_shard_child(
    params: Dict[str, object], on_round_end=None
) -> Dict[str, object]:
    """Route one region child of a shard job: pure ``params -> payload``.

    Module-level (and free of daemon state) so the region pool of
    :meth:`ServeDaemon._run_children_on_pool` can execute children in
    worker processes; the dedicated-thread fallback runs the same function
    in-process with a cancellation hook, so both paths produce identical
    payloads.
    """
    spec = _chip_from_params(params)
    graph, netlist = build_chip(spec)
    oracle = make_oracle(str(params.get("oracle", "CD")))
    # A shard child routes one region's interior sub-netlist; its own flow
    # is single-region (the parent owns the decomposition).
    config = _router_config_from_params(params, force_single_shard=True)
    partition = partition_grid(
        graph.nx, graph.ny, int(params.get("shards", 1))  # type: ignore[arg-type]
    )
    classification = partition.classify_nets(
        netlist, halo=int(params.get("shard_halo", 0))  # type: ignore[arg-type]
    )
    shard_index = int(params["shard_index"])  # type: ignore[arg-type]
    netlist = netlist.subset(classification.interior[shard_index])
    router = GlobalRouter(graph, netlist, oracle, config)
    result = router.run(on_round_end=on_round_end)
    payload: Dict[str, object] = {
        "result": result.as_dict(),
        "session": None,
        "backend": config.engine.backend,
        "shard_index": shard_index,
    }
    if params.get("emit_usage"):
        # Shard children ship their final congestion usage so the parent
        # can stitch the regions before routing the seam nets.
        payload["usage"] = router.congestion.usage.tolist()
    if router.engine.cache is not None:
        stats = router.engine.cache.stats
        payload["cache"] = {"hits": stats.hits, "lookups": stats.lookups}
    return payload


class _Handler(socketserver.StreamRequestHandler):
    """One connection: any number of JSON-line requests until EOF.

    ``watch`` is the streaming exception: it takes over the connection and
    writes event lines until the watched job finishes (or the client goes
    away), then the connection is done.
    """

    def handle(self) -> None:
        daemon: "ServeDaemon" = self.server.daemon_ref  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                if request.get("op") == "watch":
                    daemon.handle_watch(request, self.wfile)
                    return
                response = daemon.handle(request)
            except Exception as exc:  # protocol surface: never kill the socket
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeDaemon:
    """The routing service: job store + worker pool + TCP control plane.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after construction).
    job_workers:
        Concurrent routing jobs (each may itself fan out over a process
        pool when its engine backend says so).
    state_dir:
        Optional directory for job persistence across daemon restarts.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        job_workers: int = 2,
        state_dir: Optional[str] = None,
    ) -> None:
        if job_workers < 1:
            raise ValueError("job_workers must be positive")
        self.store = JobStore(state_dir, adopt=True)
        #: Lazily created fallback directory for auto-checkpoints of
        #: daemons running without a ``state_dir``.
        self._checkpoint_scratch: Optional[str] = None
        #: ``None`` marks a name reserved by a route job still in flight.
        self.sessions: Dict[str, Optional[RoutingSession]] = {}
        self._session_locks: Dict[str, threading.Lock] = {}
        self._sessions_guard = threading.Lock()
        self._futures: Dict[str, Future] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-serve"
        )
        self._server = _Server((host, port), _Handler)
        self._server.daemon_ref = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False
        self._started_monotonic = time.monotonic()
        #: The live event bus ``watch`` connections subscribe to.  Also
        #: installed as the process-global bus (unless the host application
        #: already installed one) so deeper layers -- the shard
        #: coordinator's ``region_done``/``seam_done``, the pool degradation
        #: warning -- publish onto it via ``obs.publish``.
        self.bus = obs.EventBus()
        self._owns_global_bus = obs.get_bus() is None
        if self._owns_global_bus:
            obs.configure_bus(self.bus)
        # Jobs a crashed predecessor left mid-flight: the store re-queued
        # the re-runnable ones (see JobStore adopt); resubmit them now that
        # the bus exists.  A job that auto-checkpointed resumes from its
        # last durable round, the rest re-run from round 0 -- either way
        # the result is bit-identical to an uninterrupted run.
        if self.store.adopted_jobs:
            obs.inc("recovery.jobs_adopted", len(self.store.adopted_jobs))
            obs.get_logger("serve").warning(
                "re-adopted %d interrupted job(s): %s",
                len(self.store.adopted_jobs),
                ", ".join(self.store.adopted_jobs),
                extra={"adopted": list(self.store.adopted_jobs)},
            )
            for job_id in self.store.adopted_jobs:
                self._cancel_flags[job_id] = threading.Event()
                self._publish_job_state(job_id, adopted=True)
                self._futures[job_id] = self._pool.submit(self._run_job, job_id)

    # ----------------------------------------------------------- lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> Tuple[str, int]:
        """Serve on a background thread; returns the bound address."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        return self.address

    def shutdown(self) -> None:
        """Stop accepting requests and release all resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for event in self._cancel_flags.values():
            event.set()
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self._owns_global_bus and obs.get_bus() is self.bus:
            obs.configure_bus(None)

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------- protocol
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one request object to its ``op`` handler."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not isinstance(op, str) or op.startswith("_"):
            return {"ok": False, "error": f"unknown op {op!r}"}
        return handler(request)

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._sessions_guard:
            session_names = sorted(
                name for name, session in self.sessions.items() if session is not None
            )
        return {
            "ok": True,
            "pong": True,
            "jobs": self.store.counts(),
            "sessions": session_names,
        }

    def _op_submit(self, request: Dict[str, object]) -> Dict[str, object]:
        kind = request.get("kind")
        if kind not in ("route", "eco", "shard"):
            return {"ok": False, "error": f"unknown job kind {kind!r}"}
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return {"ok": False, "error": "params must be a JSON object"}
        job = self.store.submit(str(kind), params)
        self._cancel_flags[job.job_id] = threading.Event()
        self._publish_job_state(job.job_id)
        self._futures[job.job_id] = self._pool.submit(self._run_job, job.job_id)
        return {"ok": True, "job_id": job.job_id}

    def _op_status(self, request: Dict[str, object]) -> Dict[str, object]:
        snapshot = self.store.snapshot(str(request.get("job_id")), with_result=False)
        return {"ok": True, "job": snapshot}

    def _op_result(self, request: Dict[str, object]) -> Dict[str, object]:
        snapshot = self.store.snapshot(str(request.get("job_id")), with_result=True)
        return {"ok": True, "job": snapshot}

    def _op_cancel(self, request: Dict[str, object]) -> Dict[str, object]:
        job_id = str(request.get("job_id"))
        self.store.get(job_id)  # raises for unknown ids
        future = self._futures.get(job_id)
        if future is not None and future.cancel():
            self.store.mark_cancelled(job_id)
            self._publish_job_state(job_id)
            return {"ok": True, "status": JobState.CANCELLED}
        flag = self._cancel_flags.get(job_id)
        if flag is not None:
            flag.set()
        return {"ok": True, "status": self.store.get(job_id).status}

    def _op_jobs(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "jobs": self.store.snapshots(with_result=False)}

    def _op_metrics(self, request: Dict[str, object]) -> Dict[str, object]:
        """Dump the daemon-wide metrics registry (counters/gauges/histograms).

        ``format: "prometheus"`` returns the same snapshot rendered in the
        Prometheus text exposition format instead of the raw JSON.
        """
        fmt = str(request.get("format") or "json")
        snapshot = obs.default_registry().snapshot()
        if fmt == "prometheus":
            return {
                "ok": True,
                "format": "prometheus",
                "text": obs.render_prometheus(snapshot),
            }
        if fmt != "json":
            return {"ok": False, "error": f"unknown metrics format {fmt!r}"}
        return {"ok": True, "metrics": snapshot}

    def _op_history(self, request: Dict[str, object]) -> Dict[str, object]:
        """A job's per-round time-series samples (oldest first)."""
        job_id = str(request.get("job_id"))
        return {"ok": True, "job_id": job_id, "history": self.store.history(job_id)}

    def _op_health(self, request: Dict[str, object]) -> Dict[str, object]:
        """The daemon heartbeat: uptime, queue depth, bus and pool state."""
        counts = self.store.counts()
        counters = obs.default_registry().snapshot().get("counters", {})
        pool_degradations = {
            name[len("pool.degraded.") :]: value
            for name, value in counters.items()  # type: ignore[union-attr]
            if name.startswith("pool.degraded.")
        }
        with self._sessions_guard:
            sessions = sum(1 for s in self.sessions.values() if s is not None)
        return {
            "ok": True,
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "jobs": counts,
            "queue_depth": counts.get(JobState.QUEUED, 0),
            "active_jobs": counts.get(JobState.RUNNING, 0),
            "sessions": sessions,
            "watchers": self.bus.subscriber_count,
            "events_published": self.bus.published,
            "events_dropped": counters.get("bus.dropped", 0),  # type: ignore[union-attr]
            "pool_degradations": pool_degradations,
            "event_schema": obs.EVENT_SCHEMA_VERSION,
            "trace_schema": obs.TRACE_SCHEMA_VERSION,
        }

    def _op_sessions(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._sessions_guard:
            sessions = [
                {
                    "name": session.name,
                    "nets": session.num_nets,
                    "generation": session.generation,
                }
                for session in self.sessions.values()
                if session is not None
            ]
        return {"ok": True, "sessions": sorted(sessions, key=lambda s: s["name"])}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        # Respond first, then tear down from a separate thread so the
        # handler's socket write is not racing the server close.
        threading.Thread(target=self.shutdown, name="repro-serve-stop").start()
        return {"ok": True, "stopping": True}

    # ------------------------------------------------------------- watching
    def _publish_job_state(self, job_id: str, **extra: object) -> None:
        """Publish the job's *current* store state as a ``job_state`` event.

        Reading the status back from the store (instead of trusting the
        caller) respects the terminal-state guard: a ``mark_done`` racing a
        cancellation publishes the state that actually stuck.
        """
        try:
            job = self.store.get(job_id)
        except KeyError:
            return
        self.bus.publish("job_state", job_id=job_id, status=job.status, kind=job.kind, **extra)

    def handle_watch(self, request: Dict[str, object], wfile) -> None:
        """Stream a job's events as JSON lines until it reaches a terminal
        state (called by the connection handler; owns the connection).

        The subscription is taken out *before* the job's status is read so
        no event can fall between the snapshot and the stream.  A watcher
        that stops reading fills its bounded queue and loses oldest events
        (``bus.dropped``); the publishing side never blocks on it.  Socket
        writes happen on this handler thread only, so a dead client at most
        ends this stream.
        """

        def write_line(record: Dict[str, object]) -> bool:
            try:
                wfile.write((json.dumps(record) + "\n").encode("utf-8"))
                wfile.flush()
                return True
            except (OSError, ValueError):
                return False

        job_id = str(request.get("job_id"))
        sub = self.bus.subscribe(match=lambda e: e.get("job_id") == job_id)
        try:
            try:
                job = self.store.get(job_id)
            except KeyError:
                write_line({"ok": False, "error": f"unknown job {job_id!r}"})
                return
            if not write_line(
                {
                    "ok": True,
                    "watching": job_id,
                    "schema": obs.EVENT_SCHEMA_VERSION,
                    "status": job.status,
                }
            ):
                return
            terminal_sent = False
            while not self._closed:
                event = sub.get(timeout=0.2)
                if event is not None:
                    if not write_line(event):
                        return
                    if event.get("event") == "job_state" and (
                        event.get("status") in JobState.TERMINAL
                    ):
                        terminal_sent = True
                        break
                    continue
                # Queue idle: poll the store so a watcher attached after the
                # job finished (or whose terminal event was dropped) still
                # terminates with a synthesized job_state line.
                try:
                    job = self.store.get(job_id)
                except KeyError:
                    break
                if job.status in JobState.TERMINAL:
                    for event in sub.drain():
                        if not write_line(event):
                            return
                        if event.get("event") == "job_state" and (
                            event.get("status") in JobState.TERMINAL
                        ):
                            terminal_sent = True
                    if not terminal_sent:
                        write_line(
                            {
                                "event": "job_state",
                                "schema": obs.EVENT_SCHEMA_VERSION,
                                "job_id": job_id,
                                "status": job.status,
                                "kind": job.kind,
                                "time": time.time(),
                            }
                        )
                    break
        finally:
            self.bus.unsubscribe(sub)

    # ------------------------------------------------------------ job logic
    def _run_job(self, job_id: str) -> None:
        cancel = self._cancel_flags[job_id]
        # Every event published from this thread (and anything routing calls
        # on it: the shard coordinator's region_done/seam_done, the pool
        # degradation warning) carries the owning job's id.
        with obs.bus_context(job_id=job_id):
            try:
                if cancel.is_set():
                    raise JobCancelled()
                self.store.mark_running(job_id)
                self._publish_job_state(job_id)
                job = self.store.get(job_id)
                job_tracer = None
                trace_path = job.params.get("trace")
                if trace_path is not None and obs.get_tracer() is None:
                    # Job-scoped tracing (``submit --trace``).  A daemon-wide
                    # tracer (``serve --trace``) takes precedence, and only one
                    # job-scoped trace can be active at a time -- the tracer is
                    # a process-global single-writer.
                    job_tracer = obs.configure_tracing(str(trace_path))
                try:
                    with obs.span("job", job_id=job_id, kind=job.kind):
                        if job.kind == "route":
                            result = self._run_route(job_id, job.params, cancel)
                        elif job.kind == "shard":
                            result = self._run_shard(job.job_id, job.params, cancel)
                        else:
                            result = self._run_eco(job_id, job.params, cancel)
                finally:
                    if job_tracer is not None and obs.get_tracer() is job_tracer:
                        obs.close_tracing(obs.default_registry().snapshot())
                self.store.mark_done(job_id, result)
                obs.inc("serve.jobs_done")
            except JobCancelled:
                self.store.mark_cancelled(job_id)
                obs.inc("serve.jobs_cancelled")
            except Exception as exc:
                self.store.mark_failed(job_id, f"{type(exc).__name__}: {exc}")
                obs.inc("serve.jobs_failed")
            finally:
                self._publish_job_state(job_id)
                self._futures.pop(job_id, None)
                self._cancel_flags.pop(job_id, None)

    def _round_hook(self, job_id: str, cancel: threading.Event):
        """The per-round callback of an in-daemon routing flow: cooperative
        cancellation plus live progress into the job store (``status`` then
        reports round counts while the job runs) and onto the trace."""

        def hook(router: GlobalRouter, round_index: int) -> None:
            if cancel.is_set():
                raise JobCancelled()
            progress = {
                "round": round_index + 1,
                "rounds_total": router.config.num_rounds,
                "overflow": router.congestion.overflow(),
            }
            self.store.update_progress(job_id, progress)
            # The router recorded its full round sample just before calling
            # this hook; copy it into the job's persisted time-series and
            # stream it to watchers.
            sample = router.series.latest() or progress
            self.store.append_history(job_id, sample)
            self.bus.publish(
                "round",
                job_id=job_id,
                rounds_remaining=router.config.num_rounds - (round_index + 1),
                **sample,
            )
            obs.event("job_round", job_id=job_id, **progress)
            obs.inc("serve.rounds")

        return hook

    def _checkpoint_plan(
        self, job_id: str, params: Dict[str, object]
    ) -> Tuple[Optional[str], int]:
        """The ``(path, every)`` of a route job's auto-checkpointing, or
        ``(None, 0)`` when the job did not ask for it.

        The path is derived, not user-supplied: ``<state_dir>/<job_id>.ckpt``
        next to the job's persisted record, so a restarted daemon that
        re-adopts the job derives the same path and resumes from it.
        """
        every = params.get("checkpoint_every")
        if every is None:
            return None, 0
        base = self.store.state_dir
        if base is None:
            if self._checkpoint_scratch is None:
                self._checkpoint_scratch = tempfile.mkdtemp(prefix="repro-serve-ckpt-")
            base = self._checkpoint_scratch
        return os.path.join(base, f"{job_id}.ckpt"), int(every)  # type: ignore[arg-type]

    def _run_route(
        self, job_id: str, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        if params.get("shard_index") is not None:
            # Region child of a shard job (dedicated-thread path); identical
            # to the pool path modulo the cancellation/progress hook.
            return _route_shard_child(
                params, on_round_end=self._round_hook(job_id, cancel)
            )
        spec = _chip_from_params(params)
        graph, netlist = build_chip(spec)
        oracle = make_oracle(str(params.get("oracle", "CD")))
        config = _router_config_from_params(params)
        hook = self._round_hook(job_id, cancel)
        checkpoint_path, checkpoint_every = self._checkpoint_plan(job_id, params)
        if checkpoint_path is not None:
            # Cancellation/progress first, then the durable write: a round
            # whose checkpoint exists has definitely run its hooks.
            hook = _chain_hooks(
                hook, checkpoint_every_hook(checkpoint_path, checkpoint_every)
            )
        session_name = params.get("session")
        if session_name is not None:
            session_name = str(session_name)
            # Reserve the name atomically so two concurrent route jobs
            # cannot both pass the duplicate check and race the insert.
            with self._sessions_guard:
                if session_name in self.sessions:
                    raise ValueError(
                        f"session {session_name!r} already exists; submit an "
                        "eco job against it instead"
                    )
                self.sessions[session_name] = None
            try:
                session = RoutingSession(
                    graph, netlist, oracle, config, name=session_name
                )
                result = session.route(on_round_end=hook, resume_from=checkpoint_path)
            except BaseException:
                with self._sessions_guard:
                    if self.sessions.get(session_name) is None:
                        self.sessions.pop(session_name, None)
                raise
            with self._sessions_guard:
                self.sessions[session_name] = session
                self._session_locks[session_name] = threading.Lock()
            return {
                "result": result.as_dict(),
                "session": session_name,
                "backend": session.config.engine.backend,
            }
        router = GlobalRouter(graph, netlist, oracle, config)
        if checkpoint_path is not None:
            try_resume_router(router, checkpoint_path)
        result = router.run(on_round_end=hook)
        payload: Dict[str, object] = {
            "result": result.as_dict(),
            "session": None,
            "backend": config.engine.backend,
        }
        if params.get("emit_usage"):
            payload["usage"] = router.congestion.usage.tolist()
        if router.engine.cache is not None:
            stats = router.engine.cache.stats
            payload["cache"] = {"hits": stats.hits, "lookups": stats.lookups}
        return payload

    def _run_shard(
        self, job_id: str, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        """Fan one design out as K region sub-jobs, then stitch and merge.

        Every region with interior nets becomes a real ``route`` job in the
        store (visible via ``status``).  With ``shard_workers > 1`` the
        children execute on a ``multiprocessing`` pool
        (:meth:`_run_children_on_pool`); otherwise -- and when no pool can
        be started in this environment -- each child runs on a dedicated
        thread, so a shard job can never deadlock the daemon's worker pool
        against its own children.  Both paths produce bit-identical child
        payloads (children are pure functions of their params).  The parent
        stitches the children's congestion usage, routes the seam-crossing
        nets against it, and returns one merged :class:`RoutingResult`
        record: additive metrics (wire length, vias, TNS, objective, nets)
        are summed, worst slack is the minimum, and the congestion metrics
        (ACE4, overflow) are computed on the stitched full-design map.
        Timing stages crossing region boundaries are relaxed in this path --
        the in-process coordinator (``route --shards K``) keeps them.
        """
        started = time.monotonic()
        spec = _chip_from_params(params)
        graph, netlist = build_chip(spec)
        oracle = make_oracle(str(params.get("oracle", "CD")))
        shards = int(params.get("shards", 2))  # type: ignore[arg-type]
        if shards < 2:
            raise ValueError("shard jobs need shards >= 2")
        halo = int(params.get("shard_halo", 0))  # type: ignore[arg-type]
        partition = partition_grid(graph.nx, graph.ny, shards)
        classification = partition.classify_nets(netlist, halo=halo)

        child_params_base = {
            key: value
            for key, value in params.items()
            if key not in ("session", "shard_index", "emit_usage", "shard_workers")
        }
        children: List[str] = []
        child_params_list: List[Dict[str, object]] = []
        for region_index, interior in enumerate(classification.interior):
            if not interior:
                continue
            child_params = {
                **child_params_base,
                "shard_index": region_index,
                "emit_usage": True,
                "parent": job_id,
            }
            child = self.store.submit("route", child_params)
            children.append(child.job_id)
            child_params_list.append(child_params)
            # Registered up front so `cancel` requests against individual
            # children work on both execution paths.
            self._cancel_flags[child.job_id] = threading.Event()

        workers = int(params.get("shard_workers") or 1)  # type: ignore[arg-type]
        region_backend = "threads"
        try:
            if workers > 1 and len(children) > 1:
                if self._run_children_on_pool(
                    children, child_params_list, cancel, workers
                ):
                    region_backend = "process"
            if region_backend == "threads":
                self._run_children_on_threads(children, cancel)
        finally:
            for child_id in children:
                self._cancel_flags.pop(child_id, None)
        if cancel.is_set():
            raise JobCancelled()

        stitched = np.zeros(graph.num_edges, dtype=np.float64)
        child_results: List[RoutingResult] = []
        for child_id in children:
            child = self.store.get(child_id)
            if child.status != JobState.DONE:
                raise RuntimeError(
                    f"shard sub-job {child_id} ended {child.status}: {child.error}"
                )
            payload = child.result or {}
            child_results.append(
                RoutingResult.from_dict(payload["result"])  # type: ignore[arg-type]
            )
            stitched += np.asarray(payload["usage"], dtype=np.float64)

        seam_result: Optional[RoutingResult] = None
        seam = classification.seam
        if seam:
            seam_config = _router_config_from_params(params, force_single_shard=True)
            seam_router = GlobalRouter(
                graph, netlist.subset(seam), oracle, seam_config
            )
            # Seed the seam flow with the stitched interior congestion: seam
            # nets are priced against the regions' combined usage, exactly
            # like the in-process coordinator's seam pass.
            seam_router.congestion.usage[:] = stitched
            seam_result = seam_router.run(
                on_round_end=self._round_hook(job_id, cancel)
            )
            final_map = seam_router.congestion
        else:
            final_map = CongestionMap(graph)
            final_map.usage[:] = stitched

        merged = self._merge_results(
            spec.name, child_results, seam_result, final_map, netlist,
            time.monotonic() - started,
        )
        return {
            "result": merged.as_dict(),
            "shards": shards,
            "subjobs": children,
            "seam_nets": len(seam),
            "interior_nets": [len(r) for r in classification.interior],
            "backend": str(params.get("backend", "serial")),
            "region_backend": region_backend,
            "shard_workers": workers,
        }

    def _run_children_on_threads(
        self, children: List[str], cancel: threading.Event
    ) -> None:
        """The dedicated-thread child path (and the pool's fallback).
        Child cancel flags are registered by the caller."""
        threads: List[threading.Thread] = []
        for child_id in children:
            thread = threading.Thread(
                target=self._run_job,
                args=(child_id,),
                name=f"repro-shard-{child_id}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
        try:
            for thread in threads:
                while thread.is_alive():
                    thread.join(timeout=0.1)
                    if cancel.is_set():
                        for child_id in children:
                            flag = self._cancel_flags.get(child_id)
                            if flag is not None:
                                flag.set()
        finally:
            for thread in threads:
                thread.join()

    def _run_children_on_pool(
        self,
        children: List[str],
        child_params_list: List[Dict[str, object]],
        cancel: threading.Event,
        workers: int,
    ) -> bool:
        """Route the child jobs on a ``multiprocessing`` pool.

        Returns ``False`` when no pool could be started in this environment
        (sandboxes routinely forbid process pools); the caller then falls
        back to the dedicated-thread path -- same results, no parallelism.
        The pool prefers ``forkserver``/``spawn``: the daemon process is
        multi-threaded (listener, handler threads, job workers), where
        ``fork`` can copy held locks into the child; the children are
        module-level pure functions, so a clean interpreter works.

        Cancelling the *parent* tears the pool down immediately (there is
        no cooperative handshake with a worker process, and children are
        pure, so discarding half-finished work is safe).  Cancelling an
        *individual child* marks it cancelled as soon as the flag is seen
        -- its in-flight computation cannot be interrupted, but its result
        is discarded and the parent's stitch step then fails, exactly like
        on the thread path.
        """
        import multiprocessing

        pool = create_worker_pool(
            min(workers, len(children)),
            prefer=("forkserver", "spawn"),
            degrade_message="shard children fall back to dedicated threads",
            backend="serve-shard",
        )
        if pool is None:
            return False

        def sweep_child_cancels() -> None:
            # Flagged children flip terminal right away; a later mark_done
            # for them is a no-op (terminal states are sticky), which is
            # what discards the worker's result.
            for child_id in children:
                flag = self._cancel_flags.get(child_id)
                if flag is not None and flag.is_set():
                    self.store.mark_cancelled(child_id)

        failed: List[str] = []
        try:
            for child_id in children:
                self.store.mark_running(child_id)
            results = pool.imap(_route_shard_child, child_params_list)
            # imap yields per-child outcomes in submission order, each one
            # either a payload or that child's own exception -- so errors
            # land on the child that raised them, and siblings keep their
            # real results, exactly like on the thread path.
            for child_id in children:
                payload = None
                error: Optional[str] = None
                while True:
                    sweep_child_cancels()
                    if cancel.is_set():
                        raise JobCancelled()
                    try:
                        payload = results.next(timeout=0.2)
                    except multiprocessing.TimeoutError:
                        continue
                    except Exception as exc:  # this child's own failure
                        error = f"{type(exc).__name__}: {exc}"
                    break
                if error is not None:
                    self.store.mark_failed(child_id, error)
                    failed.append(child_id)
                else:
                    self.store.mark_done(child_id, payload)  # no-op if cancelled
        except JobCancelled:
            for child_id in children:
                self.store.mark_cancelled(child_id)  # no-op on finished ones
            raise
        except Exception as exc:
            # Infrastructure failure (store, pool plumbing): make sure no
            # child is left dangling in a running state.
            message = f"region pool aborted: {type(exc).__name__}: {exc}"
            for child_id in children:
                if self.store.get(child_id).status not in JobState.TERMINAL:
                    self.store.mark_failed(child_id, message)
            raise RuntimeError(message)
        finally:
            pool.terminate()
            pool.join()
        if failed:
            raise RuntimeError(
                f"shard sub-jobs failed on the region pool: {', '.join(failed)}"
            )
        return True

    @staticmethod
    def _merge_results(
        chip: str,
        child_results: List[RoutingResult],
        seam_result: Optional[RoutingResult],
        final_map: CongestionMap,
        netlist: Netlist,
        walltime: float,
    ) -> RoutingResult:
        parts = list(child_results)
        if seam_result is not None:
            parts.append(seam_result)
        if not parts:
            raise ValueError("shard job produced no partial results")
        return RoutingResult(
            chip=chip,
            method=parts[0].method,
            worst_slack=min(p.worst_slack for p in parts),
            total_negative_slack=sum(p.total_negative_slack for p in parts),
            ace4=final_map.ace4(),
            wire_length=sum(p.wire_length for p in parts),
            via_count=sum(p.via_count for p in parts),
            walltime_seconds=walltime,
            overflow=final_map.overflow(),
            objective=sum(p.objective for p in parts),
            num_nets=netlist.num_nets,
        )

    def _run_eco(
        self, job_id: str, params: Dict[str, object], cancel: threading.Event
    ) -> Dict[str, object]:
        session_name = str(params.get("session"))
        with self._sessions_guard:
            if self.sessions.get(session_name, "absent") is None:
                raise ValueError(
                    f"session {session_name!r} is still being created; retry "
                    "once its route job finishes"
                )
            session = self.sessions.get(session_name)
            lock = self._session_locks.get(session_name)
        if session is None or lock is None:
            raise ValueError(f"unknown session {session_name!r}")
        ops = params.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ValueError("eco jobs need a non-empty 'ops' list")
        with lock:  # ECOs against one session are serialised
            # ECO jobs may re-point the session's flow at a different shard
            # configuration (``eco --shards K --shard-workers N``); worker
            # counts are result-neutral, a changed K makes this re-route a
            # cold-equivalent one under the new decomposition.  The previous
            # configuration is restored when the flow fails or is cancelled:
            # a failed ECO must leave the session *exactly* as it was,
            # decomposition included.
            shards = params.get("shards")
            shard_workers = params.get("shard_workers")
            previous_config = session.config
            try:
                session.configure_sharding(
                    shards=(
                        None if shards is None else int(shards)  # type: ignore[arg-type]
                    ),
                    shard_workers=(
                        None
                        if shard_workers is None
                        else int(shard_workers)  # type: ignore[arg-type]
                    ),
                    shard_halo=(
                        None
                        if params.get("shard_halo") is None
                        else int(params["shard_halo"])  # type: ignore[arg-type]
                    ),
                    shard_start_method=(
                        # The daemon is multi-threaded; in-daemon region pools
                        # must not fork (see _daemon_safe_start_method).
                        _daemon_safe_start_method()
                        if session.config.shards > 1
                        or (shards is not None and int(shards) > 1)  # type: ignore[arg-type]
                        else None
                    ),
                )
                report = session.apply_eco(
                    ops, on_round_end=self._round_hook(job_id, cancel)
                )
            except BaseException:
                session.config = previous_config
                raise
        payload = report.as_dict()
        payload["session"] = session_name
        return payload
