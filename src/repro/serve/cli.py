"""Command-line surface of the routing service.

Implements the ``python -m repro
serve|submit|status|result|watch|history|health|eco|metrics|shutdown``
subcommands on top of :class:`~repro.serve.daemon.ServeDaemon` and
:class:`~repro.serve.client.ServeClient`.  All query output is JSON on
stdout (one document per invocation; ``watch`` streams one JSON event per
line) so shell pipelines and the CI smoke job can consume it; progress
chatter goes to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro import obs
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
from repro.serve.jobs import JobState

__all__ = ["SERVE_COMMANDS", "main"]

#: Subcommand names dispatched away from the legacy one-shot CLI.
SERVE_COMMANDS = (
    "serve",
    "submit",
    "status",
    "result",
    "watch",
    "history",
    "health",
    "eco",
    "metrics",
    "shutdown",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default=DEFAULT_HOST, help="daemon host")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="daemon port")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Routing service subcommands (see 'python -m repro --help' "
        "for the one-shot flow).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the routing daemon in the foreground")
    _add_endpoint_arguments(serve)
    serve.add_argument(
        "--job-workers", type=int, default=2, help="concurrent routing jobs"
    )
    serve.add_argument(
        "--state-dir", default=None, help="persist job records under this directory"
    )
    serve.add_argument(
        "--trace",
        default=None,
        help="write a daemon-wide JSON-lines trace (spans of every job) to this path",
    )
    serve.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="stderr logging level for the repro.* logger tree",
    )
    serve.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "install a daemon-wide fault plan for chaos testing, e.g. "
            "'kill-region-worker:round=2'; repeatable (see repro.faults)"
        ),
    )

    submit = commands.add_parser("submit", help="submit a routing job")
    _add_endpoint_arguments(submit)
    submit.add_argument("--chip", default="c1", help="chip of the synthetic suite")
    submit.add_argument("--oracle", default="CD", help="Steiner oracle (CD/L1/SL/PD)")
    submit.add_argument("--rounds", type=int, default=2, help="resource-sharing rounds")
    submit.add_argument("--seed", type=int, default=0, help="routing seed")
    submit.add_argument("--net-scale", type=float, default=1.0, help="net count scale")
    submit.add_argument(
        "--backend", default="serial", choices=["serial", "process"], help="engine backend"
    )
    submit.add_argument("--workers", type=int, default=None, help="process-pool size")
    submit.add_argument(
        "--scheduling", default="window", choices=["window", "bbox"], help="batch policy"
    )
    submit.add_argument("--cache", action="store_true", help="enable the re-route cache")
    submit.add_argument(
        "--cache-scope", default="bbox", choices=["bbox", "global"], help="cache scope"
    )
    submit.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "fan the design out as this many region sub-jobs with seam "
            "stitching and a merged result (1 = ordinary route job); "
            "combined with --session, the session itself routes through "
            "the in-process shard coordinator and later eco jobs replay "
            "their memos through it"
        ),
    )
    submit.add_argument(
        "--shard-halo",
        type=_non_negative_int,
        default=0,
        help="halo tiles around net boxes for interior/seam classification",
    )
    submit.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for the region fan-out of a --shards job "
            "(default: one dedicated thread per region; results are "
            "bit-identical either way)"
        ),
    )
    submit.add_argument(
        "--session",
        default=None,
        help="open a persistent session under this name (target of later eco jobs)",
    )
    submit.add_argument(
        "--trace",
        default=None,
        help=(
            "ask the daemon to trace this job to the given path (daemon-side "
            "file; ignored while a daemon-wide --trace is active)"
        ),
    )
    submit.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "auto-checkpoint the route every N rounds to a daemon-side file "
            "next to the job record; a restarted daemon re-adopts the job "
            "and resumes from the last saved round"
        ),
    )
    submit.add_argument("--wait", action="store_true", help="block until the job finishes")
    submit.add_argument("--timeout", type=float, default=600.0, help="--wait timeout (s)")

    status = commands.add_parser("status", help="query job status")
    _add_endpoint_arguments(status)
    status.add_argument("job_id", nargs="?", help="job id (omit with --all)")
    status.add_argument("--all", action="store_true", help="list all jobs")

    result = commands.add_parser("result", help="fetch a job's result")
    _add_endpoint_arguments(result)
    result.add_argument("job_id", help="job id")
    result.add_argument("--wait", action="store_true", help="block until terminal")
    result.add_argument("--timeout", type=float, default=600.0, help="--wait timeout (s)")

    watch = commands.add_parser(
        "watch", help="stream a job's live events (one JSON line per event)"
    )
    _add_endpoint_arguments(watch)
    watch.add_argument("job_id", help="job id")
    watch.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="give up after this many seconds without any event",
    )

    history = commands.add_parser(
        "history", help="dump a job's per-round time-series samples"
    )
    _add_endpoint_arguments(history)
    history.add_argument("job_id", help="job id")

    health = commands.add_parser(
        "health", help="daemon heartbeat: uptime, queue depth, bus state"
    )
    _add_endpoint_arguments(health)

    eco = commands.add_parser("eco", help="submit an ECO delta against a session")
    _add_endpoint_arguments(eco)
    eco.add_argument("--session", required=True, help="target session name")
    eco.add_argument("--ops", default=None, help="JSON list of ECO ops")
    eco.add_argument("--ops-file", default=None, help="file with a JSON list of ECO ops")
    eco.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help=(
            "re-point the session's flow at this many regions before "
            "replaying (omit to keep the session's current decomposition)"
        ),
    )
    eco.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help=(
            "region worker processes for the session's sharded replay "
            "(results are bit-identical for every worker count)"
        ),
    )
    eco.add_argument(
        "--shard-halo",
        type=_non_negative_int,
        default=None,
        help="halo tiles for interior/seam classification of the session's flow",
    )
    eco.add_argument("--wait", action="store_true", help="block until the job finishes")
    eco.add_argument("--timeout", type=float, default=600.0, help="--wait timeout (s)")

    metrics = commands.add_parser(
        "metrics", help="dump the daemon-wide metrics registry"
    )
    _add_endpoint_arguments(metrics)
    metrics.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="json (default) or the Prometheus text exposition format",
    )

    shutdown = commands.add_parser("shutdown", help="stop the daemon")
    _add_endpoint_arguments(shutdown)

    return parser


def _emit(document: object) -> None:
    print(json.dumps(document, indent=2, default=float))


def _finish(job: Dict[str, object]) -> int:
    _emit(job)
    return 0 if job.get("status") == JobState.DONE else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.log_level is not None:
        obs.configure_logging(args.log_level)
    if args.trace is not None:
        obs.configure_tracing(args.trace)
    if args.inject:
        from repro import faults

        faults.install_plan(";".join(args.inject))
    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        state_dir=args.state_dir,
    )
    host, port = daemon.address
    print(f"repro routing daemon listening on {host}:{port}", file=sys.stderr)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        daemon.shutdown()
        if args.trace is not None:
            obs.close_tracing(obs.default_registry().snapshot())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    params: Dict[str, object] = {
        "chip": args.chip,
        "oracle": args.oracle,
        "rounds": args.rounds,
        "seed": args.seed,
        "net_scale": args.net_scale,
        "backend": args.backend,
        "workers": args.workers,
        "scheduling": args.scheduling,
        "cache": args.cache,
        "cache_scope": args.cache_scope,
    }
    if args.trace is not None:
        params["trace"] = args.trace
    if args.checkpoint_every is not None:
        params["checkpoint_every"] = args.checkpoint_every
    if args.session:
        # A session with --shards routes through the in-process shard
        # coordinator (memo-capable), not the daemon's fan-out job kind.
        params["session"] = args.session
        if args.shards > 1:
            params["shards"] = args.shards
            params["shard_halo"] = args.shard_halo
            if args.shard_workers is not None:
                params["shard_workers"] = args.shard_workers
        job_id = client.submit_route(**params)
    elif args.shards > 1:
        params["shards"] = args.shards
        params["shard_halo"] = args.shard_halo
        if args.shard_workers is not None:
            params["shard_workers"] = args.shard_workers
        job_id = client.submit_shard(**params)
    else:
        job_id = client.submit_route(**params)
    if args.wait:
        return _finish(client.wait(job_id, timeout=args.timeout))
    _emit({"job_id": job_id})
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    if args.all or args.job_id is None:
        _emit(client.jobs())
    else:
        _emit(client.status(args.job_id))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    if args.wait:
        return _finish(client.wait(args.job_id, timeout=args.timeout))
    return _finish(client.result(args.job_id))


def _load_ops(args: argparse.Namespace) -> List[Dict[str, object]]:
    if (args.ops is None) == (args.ops_file is None):
        raise ServeError("pass exactly one of --ops or --ops-file")
    if args.ops is not None:
        text = args.ops
    else:
        with open(args.ops_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    ops = json.loads(text)
    if not isinstance(ops, list) or not all(isinstance(op, dict) for op in ops):
        raise ServeError("ECO ops must be a JSON list of objects")
    return ops


def _cmd_eco(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    params: Dict[str, object] = {}
    if args.shards is not None:
        params["shards"] = args.shards
    if args.shard_workers is not None:
        params["shard_workers"] = args.shard_workers
    if args.shard_halo is not None:
        params["shard_halo"] = args.shard_halo
    job_id = client.submit_eco(args.session, _load_ops(args), **params)
    if args.wait:
        return _finish(client.wait(job_id, timeout=args.timeout))
    _emit({"job_id": job_id})
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    final_status: Optional[str] = None
    for event in client.watch(args.job_id, timeout=args.timeout):
        print(json.dumps(event, default=float), flush=True)
        if event.get("event") == "job_state":
            final_status = str(event.get("status"))
    return 0 if final_status == JobState.DONE else 1


def _cmd_history(args: argparse.Namespace) -> int:
    _emit(ServeClient(args.host, args.port).history(args.job_id))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    _emit(ServeClient(args.host, args.port).health())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    if args.format == "prometheus":
        sys.stdout.write(str(client.metrics(format="prometheus")))
        sys.stdout.flush()
    else:
        _emit(client.metrics())
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    ServeClient(args.host, args.port).shutdown()
    print("daemon stopping", file=sys.stderr)
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
    "watch": _cmd_watch,
    "history": _cmd_history,
    "health": _cmd_health,
    "eco": _cmd_eco,
    "metrics": _cmd_metrics,
    "shutdown": _cmd_shutdown,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ServeError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
