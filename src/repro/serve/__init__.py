"""The routing service layer.

``repro.serve`` turns the one-shot routing flow into an amortised service:

* :mod:`~repro.serve.checkpoint` -- versioned on-disk snapshots of a run;
  an interrupted flow resumes bit for bit.
* :mod:`~repro.serve.session` -- :class:`RoutingSession`, a long-lived
  wrapper that absorbs ECO netlist deltas and re-routes only the dirty-net
  closure by replaying against per-round memos.
* :mod:`~repro.serve.jobs` / :mod:`~repro.serve.daemon` -- a persistent job
  store and a stdlib-only JSON-lines daemon multiplexing concurrent routing
  jobs across engine backends.
* :mod:`~repro.serve.client` -- the matching client, used by the
  ``python -m repro serve|submit|status|result|eco`` subcommands.
"""

from repro.serve.checkpoint import (
    Checkpoint,
    CheckpointError,
    checkpoint_hook,
    load_checkpoint,
    resume_router,
    save_checkpoint,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
from repro.serve.jobs import Job, JobCancelled, JobState, JobStore
from repro.serve.session import EcoReport, RoutingSession

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "checkpoint_hook",
    "load_checkpoint",
    "resume_router",
    "save_checkpoint",
    "ServeClient",
    "ServeError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServeDaemon",
    "Job",
    "JobCancelled",
    "JobState",
    "JobStore",
    "EcoReport",
    "RoutingSession",
]
