"""The daemon's job store: submitted work, its lifecycle, its results.

A :class:`Job` is one unit of routing work (a full route or an ECO delta)
travelling through ``queued -> running -> done | failed | cancelled``.  The
:class:`JobStore` is thread-safe (the daemon mutates it from its worker pool
and reads it from socket handler threads) and optionally *persistent*: given
a state directory it mirrors every job to one JSON file, so a restarted
daemon still answers ``status``/``result`` for jobs of previous lifetimes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["HISTORY_LIMIT", "JobState", "Job", "JobStore", "JobCancelled"]

#: Per-job bound on retained round-history samples (drop-oldest), matching
#: the router's own RoundSeries bound in spirit: generous for real flows,
#: finite for persistence.
HISTORY_LIMIT = 256


class JobCancelled(Exception):
    """Raised inside a worker when a job's cancellation flag is set."""


class JobState:
    """The job lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted routing job.

    ``started_at``/``finished_at`` are wall-clock stamps (human-readable,
    comparable across processes); ``duration_seconds`` is measured on the
    monotonic clock between ``mark_running`` and the terminal transition,
    so it stays correct across wall-clock adjustments.  ``progress`` is
    the job's latest live-progress payload (per-round events emitted
    through the router's ``on_round_end`` hook); ``history`` is the full
    per-round time-series of such samples (bounded by
    :data:`HISTORY_LIMIT`), persisted with the job and served by the
    ``history`` op.
    """

    job_id: str
    kind: str
    params: Dict[str, object]
    status: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    duration_seconds: Optional[float] = None
    progress: Optional[Dict[str, object]] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    history: List[Dict[str, object]] = field(default_factory=list)
    #: Monotonic mark of ``mark_running`` (process-local; never persisted).
    started_monotonic: Optional[float] = field(default=None, repr=False, compare=False)

    def as_dict(
        self, with_result: bool = True, with_history: bool = False
    ) -> Dict[str, object]:
        record: Dict[str, object] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_seconds": self.duration_seconds,
            "progress": self.progress,
            "error": self.error,
        }
        if with_result:
            record["result"] = self.result
        if with_history:
            record["history"] = [dict(sample) for sample in self.history]
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Job":
        return cls(
            job_id=str(record["job_id"]),
            kind=str(record["kind"]),
            params=dict(record.get("params") or {}),  # type: ignore[arg-type]
            status=str(record.get("status", JobState.QUEUED)),
            submitted_at=float(record.get("submitted_at") or 0.0),  # type: ignore[arg-type]
            started_at=record.get("started_at"),  # type: ignore[arg-type]
            finished_at=record.get("finished_at"),  # type: ignore[arg-type]
            duration_seconds=record.get("duration_seconds"),  # type: ignore[arg-type]
            progress=record.get("progress"),  # type: ignore[arg-type]
            result=record.get("result"),  # type: ignore[arg-type]
            error=record.get("error"),  # type: ignore[arg-type]
            history=list(record.get("history") or []),  # type: ignore[arg-type]
        )


class JobStore:
    """Thread-safe registry of jobs with optional JSON persistence.

    Parameters
    ----------
    state_dir:
        When given, every job is mirrored to ``<state_dir>/<job_id>.json``
        on each state change, and existing files are loaded on startup.
    adopt:
        What happens to jobs found in a non-terminal state (interrupted
        by a daemon crash or shutdown).  ``False`` (default) marks them
        failed.  ``True`` re-queues the *re-runnable* ones -- standalone
        ``route`` jobs, whose runs are pure functions of their params and
        pick up mid-flow from their auto-checkpoint when they kept one --
        and records their ids in :attr:`adopted_jobs` so the daemon can
        resubmit them.  ECO jobs (their session state died with the old
        daemon) and shard children (their parent coordinates them) are
        always marked failed.
    """

    def __init__(self, state_dir: Optional[str] = None, adopt: bool = False) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self.state_dir = state_dir
        #: Ids of interrupted jobs re-queued by ``adopt=True``, in id order.
        self.adopted_jobs: List[str] = []
        if state_dir:
            os.makedirs(state_dir, exist_ok=True)
            self._load_existing(state_dir, adopt)

    # ----------------------------------------------------------- lifecycle
    def submit(self, kind: str, params: Dict[str, object]) -> Job:
        """Register a new queued job and return it."""
        with self._lock:
            self._counter += 1
            job = Job(job_id=f"job-{self._counter:05d}", kind=kind, params=params)
            self._jobs[job.job_id] = job
            self._persist(job)
            return job

    def mark_running(self, job_id: str) -> None:
        self._transition(
            job_id,
            JobState.RUNNING,
            started_at=time.time(),
            started_monotonic=time.monotonic(),
        )

    def update_progress(self, job_id: str, progress: Dict[str, object]) -> None:
        """Record a live-progress payload on a running job.

        Late progress events racing a terminal transition are dropped by
        ``_transition``'s terminal-state guard, so a finished job's last
        observed progress stays frozen.
        """
        self._transition(job_id, JobState.RUNNING, progress=progress)

    def append_history(self, job_id: str, sample: Dict[str, object]) -> None:
        """Append one per-round sample to a running job's time-series.

        Shares ``_transition``'s terminal guard: samples racing a terminal
        transition are dropped, and the retained list is bounded at
        :data:`HISTORY_LIMIT` (drop-oldest).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.status in JobState.TERMINAL:
                return  # late sample after done/failed/cancelled: dropped
            job.history.append(dict(sample))
            if len(job.history) > HISTORY_LIMIT:
                del job.history[: len(job.history) - HISTORY_LIMIT]
            self._persist(job)

    def history(self, job_id: str) -> List[Dict[str, object]]:
        """Detached copies of a job's round samples, oldest first."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return [dict(sample) for sample in job.history]

    def mark_done(self, job_id: str, result: Dict[str, object]) -> None:
        self._transition(
            job_id, JobState.DONE, finished_at=time.time(), result=result
        )

    def mark_failed(self, job_id: str, error: str) -> None:
        self._transition(job_id, JobState.FAILED, finished_at=time.time(), error=error)

    def mark_cancelled(self, job_id: str) -> None:
        self._transition(job_id, JobState.CANCELLED, finished_at=time.time())

    # ------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job

    def snapshot(self, job_id: str, with_result: bool = True) -> Dict[str, object]:
        """A consistent ``as_dict`` view taken under the store lock, so a
        reader can never observe a terminal status with its payload still
        missing."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job.as_dict(with_result=with_result)

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.job_id)

    def snapshots(self, with_result: bool = False) -> List[Dict[str, object]]:
        """Consistent ``as_dict`` views of every job, in id order."""
        with self._lock:
            return [
                job.as_dict(with_result=with_result)
                for job in sorted(self._jobs.values(), key=lambda job: job.job_id)
            ]

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (for ping/health responses)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    # ------------------------------------------------------------ internals
    def _transition(self, job_id: str, status: str, **fields: object) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.status in JobState.TERMINAL:
                return  # a finished job never changes state again
            # Payload fields land before the status flips so that even an
            # unlocked reader never sees "done" without its result.
            for name, value in fields.items():
                setattr(job, name, value)
            if status in JobState.TERMINAL and job.started_monotonic is not None:
                job.duration_seconds = time.monotonic() - job.started_monotonic
            job.status = status
            self._persist(job)

    def _persist(self, job: Job) -> None:
        if not self.state_dir:
            return
        path = os.path.join(self.state_dir, f"{job.job_id}.json")
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(job.as_dict(with_history=True), handle)
        os.replace(tmp_path, path)

    @staticmethod
    def _adoptable(job: Job) -> bool:
        """Whether an interrupted job can simply be re-run (see ``adopt``)."""
        return job.kind == "route" and job.params.get("shard_index") is None

    def _load_existing(self, state_dir: str, adopt: bool = False) -> None:
        for entry in sorted(os.listdir(state_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(state_dir, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    job = Job.from_dict(json.load(handle))
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue  # unreadable leftovers never block a restart
            if job.status not in JobState.TERMINAL:
                if adopt and self._adoptable(job):
                    job.status = JobState.QUEUED
                    job.error = None
                    job.result = None
                    job.started_at = None
                    job.finished_at = None
                    job.duration_seconds = None
                    self.adopted_jobs.append(job.job_id)
                else:
                    job.status = JobState.FAILED
                    job.error = "interrupted by daemon shutdown"
                    job.finished_at = job.finished_at or time.time()
            self._jobs[job.job_id] = job
            try:
                number = int(job.job_id.rsplit("-", 1)[-1])
            except ValueError:
                number = 0
            self._counter = max(self._counter, number)
        for job in self._jobs.values():
            self._persist(job)
