"""Client for the routing service daemon (stdlib sockets + JSON lines).

:class:`ServeClient` opens one short-lived TCP connection per request,
writes a single JSON line, and reads a single JSON-line response -- the
simplest protocol that survives daemon restarts, thread pools, and shell
pipelines.  All CLI subcommands (``python -m repro submit`` etc.) and the
CI smoke job are built on it.  :meth:`ServeClient.watch` is the one
long-lived exception: it keeps its connection open and yields the job's
streamed events until the job reaches a terminal state.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Iterator, List, Sequence

from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.jobs import JobState

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """The daemon rejected a request or could not be reached."""


class ServeClient:
    """Talks the daemon's JSON-lines protocol.

    Parameters
    ----------
    host / port:
        The daemon's bind address.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def request(self, op: str, **payload: object) -> Dict[str, object]:
        """Send one request and return the response body.

        Raises :class:`ServeError` on transport failures and on responses
        with ``ok: false``.
        """
        message = dict(payload)
        message["op"] = op
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as conn:
                conn.sendall((json.dumps(message) + "\n").encode("utf-8"))
                with conn.makefile("r", encoding="utf-8") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServeError(
                f"cannot reach routing daemon at {self.host}:{self.port} ({exc})"
            ) from exc
        if not line:
            raise ServeError("daemon closed the connection without responding")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed daemon response: {line!r}") from exc
        if not response.get("ok"):
            raise ServeError(str(response.get("error", "daemon refused the request")))
        return response

    # ------------------------------------------------------------- commands
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def wait_until_up(self, timeout: float = 10.0, poll: float = 0.1) -> None:
        """Block until the daemon answers a ping (for CI/startup scripts)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.ping()
                return
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def submit_route(self, **params: object) -> str:
        """Submit a full-route job; returns the job id."""
        response = self.request("submit", kind="route", params=params)
        return str(response["job_id"])

    def submit_shard(self, **params: object) -> str:
        """Submit a sharded (fan-out) route job; returns the parent job id.

        The daemon splits the design into ``params["shards"]`` regions,
        routes each region's interior nets as a child ``route`` job, and
        merges the results (see ``ServeDaemon._run_shard``).
        """
        response = self.request("submit", kind="shard", params=params)
        return str(response["job_id"])

    def submit_eco(
        self, session: str, ops: Sequence[Dict[str, object]], **params: object
    ) -> str:
        """Submit an ECO job against a named session; returns the job id."""
        payload = dict(params)
        payload["session"] = session
        payload["ops"] = list(ops)
        response = self.request("submit", kind="eco", params=payload)
        return str(response["job_id"])

    def status(self, job_id: str) -> Dict[str, object]:
        """The job's lifecycle record, without the result payload."""
        return self.request("status", job_id=job_id)["job"]  # type: ignore[return-value]

    def result(self, job_id: str) -> Dict[str, object]:
        """The job's full record including the result payload."""
        return self.request("result", job_id=job_id)["job"]  # type: ignore[return-value]

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.1
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.result(job_id)
            if job["status"] in JobState.TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(f"timed out waiting for {job_id}")
            time.sleep(poll)

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's status after the attempt."""
        return str(self.request("cancel", job_id=job_id)["status"])

    def jobs(self) -> List[Dict[str, object]]:
        return self.request("jobs")["jobs"]  # type: ignore[return-value]

    def metrics(self, format: str = "json") -> object:
        """The daemon-wide metrics registry snapshot.

        ``format="json"`` (default) returns the snapshot dict;
        ``format="prometheus"`` returns the text-exposition rendering.
        """
        if format == "prometheus":
            return self.request("metrics", format="prometheus")["text"]
        return self.request("metrics")["metrics"]

    def history(self, job_id: str) -> List[Dict[str, object]]:
        """The job's per-round time-series samples (oldest first)."""
        return self.request("history", job_id=job_id)["history"]  # type: ignore[return-value]

    def health(self) -> Dict[str, object]:
        """The daemon's heartbeat record (uptime, queue depth, bus state)."""
        return self.request("health")  # type: ignore[return-value]

    def watch(
        self, job_id: str, timeout: float = 600.0
    ) -> Iterator[Dict[str, object]]:
        """Stream a job's live events until it reaches a terminal state.

        Yields each event dict as the daemon publishes it (``round``,
        ``region_done``, ``seam_done``, ``pool_degraded``, ``job_state``).
        The stream ends when the daemon closes it -- after a terminal
        ``job_state`` -- or raises :class:`ServeError` after ``timeout``
        seconds without a single event line.
        """
        message = {"op": "watch", "job_id": job_id}
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=timeout
            ) as conn:
                conn.sendall((json.dumps(message) + "\n").encode("utf-8"))
                with conn.makefile("r", encoding="utf-8") as reader:
                    ack_line = reader.readline()
                    if not ack_line:
                        raise ServeError(
                            "daemon closed the watch stream without responding"
                        )
                    ack = json.loads(ack_line)
                    if not ack.get("ok"):
                        raise ServeError(
                            str(ack.get("error", "daemon refused the watch"))
                        )
                    for line in reader:
                        line = line.strip()
                        if not line:
                            continue
                        yield json.loads(line)
        except socket.timeout as exc:
            raise ServeError(
                f"watch of {job_id} timed out after {timeout}s"
            ) from exc
        except OSError as exc:
            raise ServeError(
                f"cannot reach routing daemon at {self.host}:{self.port} ({exc})"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed watch event: {exc}") from exc

    def sessions(self) -> List[Dict[str, object]]:
        return self.request("sessions")["sessions"]  # type: ignore[return-value]

    def shutdown(self) -> None:
        self.request("shutdown")
