"""Client for the routing service daemon (stdlib sockets + JSON lines).

:class:`ServeClient` opens one short-lived TCP connection per request,
writes a single JSON line, and reads a single JSON-line response -- the
simplest protocol that survives daemon restarts, thread pools, and shell
pipelines.  All CLI subcommands (``python -m repro submit`` etc.) and the
CI smoke job are built on it.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional, Sequence

from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.jobs import JobState

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """The daemon rejected a request or could not be reached."""


class ServeClient:
    """Talks the daemon's JSON-lines protocol.

    Parameters
    ----------
    host / port:
        The daemon's bind address.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def request(self, op: str, **payload: object) -> Dict[str, object]:
        """Send one request and return the response body.

        Raises :class:`ServeError` on transport failures and on responses
        with ``ok: false``.
        """
        message = dict(payload)
        message["op"] = op
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as conn:
                conn.sendall((json.dumps(message) + "\n").encode("utf-8"))
                with conn.makefile("r", encoding="utf-8") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServeError(
                f"cannot reach routing daemon at {self.host}:{self.port} ({exc})"
            ) from exc
        if not line:
            raise ServeError("daemon closed the connection without responding")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed daemon response: {line!r}") from exc
        if not response.get("ok"):
            raise ServeError(str(response.get("error", "daemon refused the request")))
        return response

    # ------------------------------------------------------------- commands
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def wait_until_up(self, timeout: float = 10.0, poll: float = 0.1) -> None:
        """Block until the daemon answers a ping (for CI/startup scripts)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.ping()
                return
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def submit_route(self, **params: object) -> str:
        """Submit a full-route job; returns the job id."""
        response = self.request("submit", kind="route", params=params)
        return str(response["job_id"])

    def submit_shard(self, **params: object) -> str:
        """Submit a sharded (fan-out) route job; returns the parent job id.

        The daemon splits the design into ``params["shards"]`` regions,
        routes each region's interior nets as a child ``route`` job, and
        merges the results (see ``ServeDaemon._run_shard``).
        """
        response = self.request("submit", kind="shard", params=params)
        return str(response["job_id"])

    def submit_eco(
        self, session: str, ops: Sequence[Dict[str, object]], **params: object
    ) -> str:
        """Submit an ECO job against a named session; returns the job id."""
        payload = dict(params)
        payload["session"] = session
        payload["ops"] = list(ops)
        response = self.request("submit", kind="eco", params=payload)
        return str(response["job_id"])

    def status(self, job_id: str) -> Dict[str, object]:
        """The job's lifecycle record, without the result payload."""
        return self.request("status", job_id=job_id)["job"]  # type: ignore[return-value]

    def result(self, job_id: str) -> Dict[str, object]:
        """The job's full record including the result payload."""
        return self.request("result", job_id=job_id)["job"]  # type: ignore[return-value]

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.1
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.result(job_id)
            if job["status"] in JobState.TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(f"timed out waiting for {job_id}")
            time.sleep(poll)

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's status after the attempt."""
        return str(self.request("cancel", job_id=job_id)["status"])

    def jobs(self) -> List[Dict[str, object]]:
        return self.request("jobs")["jobs"]  # type: ignore[return-value]

    def metrics(self) -> Dict[str, object]:
        """The daemon-wide metrics registry snapshot."""
        return self.request("metrics")["metrics"]  # type: ignore[return-value]

    def sessions(self) -> List[Dict[str, object]]:
        return self.request("sessions")["sessions"]  # type: ignore[return-value]

    def shutdown(self) -> None:
        self.request("shutdown")
