"""Long-lived routing sessions with incremental ECO re-routing.

A :class:`RoutingSession` keeps a design routed across many requests.  The
first :meth:`~RoutingSession.route` pays the full resource-sharing flow and
records a per-round memo log (lookup signatures + trees, see
:class:`repro.engine.cache.RoundMemo`).  Every subsequent
:meth:`~RoutingSession.apply_eco` applies a netlist delta and *replays* the
flow against that log: round by round, a net whose lookup signature is
unchanged reuses the memoised tree without an oracle call, while nets whose
instances changed -- the ECO'd nets themselves plus everything their
congestion ripples reach, i.e. the dirty-net closure -- are re-routed.

Because a replay executes the exact same deterministic flow as a cold run of
the edited netlist (the memo only short-circuits oracle calls whose outcome
the signature proves, to the accuracy of the cache scope), the session's
post-ECO metrics are identical to a from-scratch re-route; only the oracle
work shrinks to the dirty closure.  The signature scope carries the same
caveat as the engine's re-route cache: the default ``bbox`` scope is a
(well-tested) heuristic, ``global`` scope is exact but dirties every net on
any cost change.

Sessions always start each flow from fresh prices, so results never depend
on how many ECOs preceded them -- state amortised across requests is the
memo log, not the Lagrangean trajectory.

Sessions drive sharded engines too (``GlobalRouterConfig.shards > 1``,
optionally with a region worker pool): the shard coordinator carries the
memo log through every pass -- clean regions replay their memos without an
oracle call, and only the regions and seam scopes owning dirty nets
re-route -- so a sharded ECO replay is bit-identical to a cold sharded
re-route of the edited netlist on every region backend.
:meth:`RoutingSession.configure_sharding` re-points an existing session at
a different decomposition or worker count between flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.oracle import SteinerOracle
from repro.engine.cache import RoundMemo
from repro.grid.graph import RoutingGraph
from repro.instances.eco import EcoOp, RemoveNet, RemoveSink, apply_eco, parse_ops
from repro.router.metrics import RoutingResult
from repro.router.netlist import Netlist
from repro.router.router import GlobalRouter, GlobalRouterConfig

__all__ = ["EcoReport", "RoutingSession"]


@dataclass
class EcoReport:
    """What one ECO request did to the session.

    ``nets_rerouted`` counts oracle calls across all replay rounds and
    ``nets_reused`` the memoised trees installed without an oracle call;
    their per-round breakdown is in ``rounds`` as ``(rerouted, reused)``
    tuples.  ``touched`` lists the nets the delta edited directly -- the
    dirty closure is typically larger.
    """

    result: RoutingResult
    touched: List[str] = field(default_factory=list)
    nets_rerouted: int = 0
    nets_reused: int = 0
    rounds: List[Tuple[int, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "result": self.result.as_dict(),
            "touched": list(self.touched),
            "nets_rerouted": self.nets_rerouted,
            "nets_reused": self.nets_reused,
            "rounds": [list(r) for r in self.rounds],
        }


class RoutingSession:
    """A persistent routing context for one design on one graph.

    Parameters
    ----------
    graph:
        The routing graph; fixed for the session's lifetime.
    netlist:
        The initial netlist.  ECO deltas evolve the session's own copy.
    oracle:
        The Steiner oracle shared by all runs of the session.
    config:
        Flow configuration.  The engine's re-route cache is forced on --
        the replay machinery needs its signatures.
    name:
        Session identifier used by the daemon (defaults to the netlist name).
    """

    def __init__(
        self,
        graph: RoutingGraph,
        netlist: Netlist,
        oracle: SteinerOracle,
        config: Optional[GlobalRouterConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        base = config or GlobalRouterConfig()
        if not base.engine.reroute_cache:
            base = replace(base, engine=replace(base.engine, reroute_cache=True))
        self.graph = graph
        self.netlist = netlist
        self.oracle = oracle
        self.config = base
        self.name = name or netlist.name
        #: ``{net_name: {sink_index: weight}}`` initial delay-weight
        #: overrides accumulated from ``reweight_sink`` ECOs.
        self.weight_overrides: Dict[str, Dict[int, float]] = {}
        self.router: Optional[GlobalRouter] = None
        self.last_result: Optional[RoutingResult] = None
        #: Completed flows (initial route + ECOs) of this session.
        self.generation: int = 0
        self._log: Optional[List[RoundMemo]] = None

    # ------------------------------------------------------------------ API
    @property
    def num_nets(self) -> int:
        return self.netlist.num_nets

    @property
    def series(self):
        """The last flow's per-round time-series (``None`` before the
        initial route); see :class:`repro.obs.timeseries.RoundSeries`."""
        return self.router.series if self.router is not None else None

    def configure_sharding(
        self,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        shard_halo: Optional[int] = None,
        shard_start_method: Optional[str] = None,
    ) -> None:
        """Re-point the session's later flows at a different decomposition.

        Arguments left ``None`` keep their current value.  Changing
        ``shard_workers`` (or the start method) never changes results --
        region backends are bit-identical.  Changing ``shards`` or the halo
        changes the flow itself: the next ECO is still bit-identical to a
        cold re-route of the edited netlist *under the new configuration*,
        but memos recorded under the old decomposition mostly miss (scope
        signatures are only comparable between identical scopes), so that
        first re-route amortises little.
        """
        updates: Dict[str, object] = {}
        if shards is not None:
            updates["shards"] = int(shards)
        if shard_workers is not None:
            updates["shard_workers"] = int(shard_workers)
        if shard_halo is not None:
            updates["shard_halo"] = int(shard_halo)
        if shard_start_method is not None:
            updates["shard_start_method"] = str(shard_start_method)
        if updates:
            self.config = replace(self.config, **updates)  # validated by __post_init__

    def route(self, on_round_end=None, resume_from: Optional[str] = None) -> RoutingResult:
        """Route the session's current netlist from scratch (records the
        replay memo log that later ECOs amortise against).

        ``resume_from`` names a checkpoint file: when it exists and is
        usable, the flow continues from its round counter instead of round
        0 (see :func:`repro.serve.checkpoint.try_resume_router`); a
        missing or unusable checkpoint falls back to the full flow.
        """
        return self._run_flow(
            self.netlist,
            self.weight_overrides,
            replay=None,
            on_round_end=on_round_end,
            resume_from=resume_from,
        )

    def apply_eco(
        self,
        ops: Sequence[EcoOp] | Sequence[Dict[str, object]],
        on_round_end=None,
    ) -> EcoReport:
        """Apply an ECO delta and incrementally re-route the dirty closure.

        ``ops`` may be :class:`~repro.instances.eco.EcoOp` objects or their
        wire-format dicts.  Requires a prior :meth:`route`.  The delta is
        committed only when the re-route completes: a cancelled or failed
        flow leaves the session exactly as it was.
        """
        if self._log is None:
            raise RuntimeError("session has no routed state yet; call route() first")
        if ops and isinstance(ops[0], dict):
            ops = parse_ops(ops)  # type: ignore[arg-type]
        eco = apply_eco(self.netlist, ops)  # type: ignore[arg-type]
        eco.netlist.validate_on_graph(self.graph)

        # Removed sinks/nets invalidate previously accumulated per-sink
        # weight overrides of that net (sink indices may have shifted).
        overrides = {name: dict(per_sink) for name, per_sink in self.weight_overrides.items()}
        for op in ops:
            if isinstance(op, (RemoveSink, RemoveNet)):
                overrides.pop(op.net, None)
        for net_name, per_sink in eco.weight_overrides.items():
            overrides.setdefault(net_name, {}).update(per_sink)

        # RNG streams and lookup signatures are keyed by net *name*, so a
        # net keeps its memo wherever its index lands: removed nets simply
        # drop out of the index map and every survivor's memo is carried to
        # its new index.  (Index-keyed streams used to drop the memo of
        # every net behind a removal.)
        replay = [memo.remapped(eco.index_map) for memo in self._log]

        result = self._run_flow(
            eco.netlist, overrides, replay=replay, on_round_end=on_round_end
        )
        assert self.router is not None
        reports = self.router.engine.round_reports
        return EcoReport(
            result=result,
            touched=eco.touched,
            nets_rerouted=sum(r.nets_routed for r in reports),
            nets_reused=sum(r.nets_replayed for r in reports),
            rounds=[(r.nets_routed, r.nets_replayed) for r in reports],
        )

    # ------------------------------------------------------------ internals
    def _build_router(
        self, netlist: Netlist, overrides: Dict[str, Dict[int, float]]
    ) -> GlobalRouter:
        router = GlobalRouter(self.graph, netlist, self.oracle, self.config)
        index_by_name = {net.name: i for i, net in enumerate(netlist.nets)}
        for net_name, per_sink in overrides.items():
            net_index = index_by_name.get(net_name)
            if net_index is None:
                continue
            weights = router.prices.delay_weights[net_index]
            for sink_index, weight in per_sink.items():
                if not 0 <= sink_index < len(weights):
                    raise ValueError(
                        f"weight override for sink {sink_index} of net "
                        f"{net_name!r} is out of range"
                    )
                weights[sink_index] = float(weight)
        return router

    def _run_flow(
        self,
        netlist: Netlist,
        overrides: Dict[str, Dict[int, float]],
        replay: Optional[List[RoundMemo]],
        on_round_end=None,
        resume_from: Optional[str] = None,
    ) -> RoutingResult:
        """Run one flow over ``netlist`` and, only on success, commit it
        (netlist, overrides, router, memo log) as the session's state."""
        router = self._build_router(netlist, overrides)
        if resume_from is not None:
            # Imported here: checkpoint sits above the router like this
            # module, but is only needed on the recovery path.
            from repro.serve.checkpoint import try_resume_router

            try_resume_router(router, resume_from)
        result = router.run(on_round_end=on_round_end, replay=replay, record_log=True)
        self.netlist = netlist
        self.weight_overrides = overrides
        self.router = router
        self._log = router.replay_log
        self.last_result = result
        self.generation += 1
        return result
