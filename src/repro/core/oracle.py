"""The Steiner tree oracle interface.

Timing-constrained global routing (Held et al., TCAD 2018) repeatedly asks a
*Steiner tree oracle* for a tree of a single net under the current congestion
prices and delay weights.  Every algorithm in this library -- the new
cost-distance algorithm and the three baselines -- implements this interface
so the router and the instance-level comparison of paper Tables I/II share
one code path.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.core.instance import SteinerInstance
from repro.core.tree import EmbeddedTree

__all__ = ["SteinerOracle"]


class SteinerOracle(abc.ABC):
    """Abstract base class of all Steiner tree constructions."""

    #: Short name used in result tables ("CD", "L1", "SL", "PD").
    name: str = "?"

    #: Whether the tree this oracle builds depends (essentially) only on the
    #: edge costs near the net -- its terminals' bounding region -- plus the
    #: global cost floor that scales A* potentials.  Only then may the
    #: engine's re-route cache use its region-digest ("bbox") scope; oracles
    #: whose construction consults the full cost vector (e.g. global
    #: shortest-path embeddings) must leave this False so the cache falls
    #: back to exact full-vector signatures.
    region_cache_safe: bool = False

    @abc.abstractmethod
    def build(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        """Build an embedded Steiner tree for ``instance``.

        Parameters
        ----------
        instance:
            The cost-distance Steiner tree instance (graph, terminals,
            weights, edge costs/delays, bifurcation model).
        rng:
            Source of randomness for randomized constructions.  Passing the
            same seeded generator reproduces the same tree.

        Returns
        -------
        EmbeddedTree
            A tree spanning the instance's root and sinks, tagged with the
            oracle's :attr:`name`.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
