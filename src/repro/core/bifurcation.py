"""Bifurcation delay penalty model.

Bifurcations on a root-sink path increase capacitance and therefore delay
after buffering.  Following the paper (Section I), every bifurcation carries
a total delay penalty ``dbif`` that is distributed to its two branches:
branch ``x`` receives ``lambda_x * dbif`` and branch ``y`` receives
``(1 - lambda_x) * dbif`` with ``lambda_x`` restricted to
``[eta, 1 - eta]`` for a parameter ``0 <= eta <= 1/2``.

For the weighted-delay objective the optimal split only depends on the total
delay weights of the two subtrees (paper Eq. (2)): the heavier subtree gets
the smaller share ``eta``.

The merge penalty

    beta(w, w') = dbif * (eta * max(w, w') + (1 - eta) * min(w, w'))

is the minimum possible weighted delay penalty incurred when two components
with delay weights ``w`` and ``w'`` are joined; it appears in the pair
selection cost ``L(u, v)`` of the algorithm (paper Eq. (5)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["BifurcationModel"]


@dataclass(frozen=True)
class BifurcationModel:
    """Parameters of the bifurcation delay penalty.

    Attributes
    ----------
    dbif:
        Total delay penalty of one bifurcation (both branches together), in
        the same time unit as the edge delays.  ``0`` disables penalties
        (the setting of paper Tables I and IV).
    eta:
        Lower bound on the share either branch must absorb,
        ``0 <= eta <= 1/2``.  ``eta = 0.5`` forces an even split (the model
        of Bartoschek et al.); smaller values give buffering more freedom to
        shield the critical branch.
    """

    dbif: float = 0.0
    eta: float = 0.25

    def __post_init__(self) -> None:
        if self.dbif < 0:
            raise ValueError("dbif must be non-negative")
        if not 0.0 <= self.eta <= 0.5:
            raise ValueError("eta must lie in [0, 0.5]")

    # ----------------------------------------------------------------- api
    @property
    def enabled(self) -> bool:
        """Whether bifurcation penalties are active (``dbif > 0``)."""
        return self.dbif > 0.0

    def beta(self, weight_a: float, weight_b: float) -> float:
        """Minimum weighted delay penalty of merging two components.

        ``beta(w, w') = dbif * (eta * max(w, w') + (1 - eta) * min(w, w'))``.
        """
        if weight_a < 0 or weight_b < 0:
            raise ValueError("delay weights must be non-negative")
        high = max(weight_a, weight_b)
        low = min(weight_a, weight_b)
        return self.dbif * (self.eta * high + (1.0 - self.eta) * low)

    def split(self, weight_x: float, weight_y: float) -> Tuple[float, float]:
        """Optimal penalty shares ``(lambda_x, lambda_y)`` for two branches.

        Implements paper Eq. (2): the branch with the larger total delay
        weight receives the smaller share ``eta``; on a tie both receive
        ``0.5``.
        """
        if weight_x < 0 or weight_y < 0:
            raise ValueError("delay weights must be non-negative")
        if weight_x > weight_y:
            return self.eta, 1.0 - self.eta
        if weight_x < weight_y:
            return 1.0 - self.eta, self.eta
        return 0.5, 0.5

    def branch_penalties(self, weights: Sequence[float]) -> List[float]:
        """Extra delay added to each branch of a (possibly >2-way) branching.

        A vertex with two outgoing branches is a single bifurcation and the
        shares follow :meth:`split`.  A vertex with ``k > 2`` branches is not
        bifurcation compatible; it is interpreted as ``k - 1`` stacked binary
        bifurcations at the same position.  The stacking order is chosen
        greedily (the two lightest groups merge first, Huffman style), which
        keeps the weighted penalty of the heavy branches small -- the same
        intent as Eq. (2).

        Returns a list of the additional delay each branch's subtree incurs
        at this vertex (to be added to every root-sink delay through that
        branch).
        """
        weights = list(weights)
        if any(w < 0 for w in weights):
            raise ValueError("delay weights must be non-negative")
        n = len(weights)
        if n <= 1:
            return [0.0] * n
        if not self.enabled:
            return [0.0] * n
        if n == 2:
            lx, ly = self.split(weights[0], weights[1])
            return [lx * self.dbif, ly * self.dbif]

        # Huffman-style stacking for non-binary branchings.
        penalties = [0.0] * n
        groups: List[Tuple[float, List[int]]] = [(w, [i]) for i, w in enumerate(weights)]
        while len(groups) > 1:
            groups.sort(key=lambda item: item[0])
            (wa, members_a), (wb, members_b) = groups[0], groups[1]
            la, lb = self.split(wa, wb)
            for i in members_a:
                penalties[i] += la * self.dbif
            for i in members_b:
                penalties[i] += lb * self.dbif
            groups = groups[2:]
            groups.append((wa + wb, members_a + members_b))
        return penalties

    def with_dbif(self, dbif: float) -> "BifurcationModel":
        """A copy of this model with a different ``dbif``."""
        return BifurcationModel(dbif=dbif, eta=self.eta)

    @classmethod
    def disabled(cls) -> "BifurcationModel":
        """A model with no bifurcation penalties (``dbif = 0``)."""
        return cls(dbif=0.0)
