"""The cost-distance Steiner tree algorithm (paper Algorithm 1).

The algorithm works like Kruskal's algorithm: it keeps a set of *active*
terminals (initially the sinks), runs a Dijkstra search from every active
terminal simultaneously -- each search ``u`` uses its own edge length
``l_u(e) = c(e) + w(u) * d(e)`` -- and merges the first pair of components
whose searches meet.  Merging two sinks creates a new active Steiner terminal
whose weight is the sum of the merged weights and whose position is chosen
randomly proportional to the weights (or by the improved placement of
Section III-D).  Merging with the root simply deactivates the sink.  The
bifurcation penalty ``b(u, v)`` of Eq. (5) is added when a search reaches
another component, so the pair minimising ``L(u, v)`` is extracted first.

Enhancements of Section III (all individually switchable via
:class:`CostDistanceConfig`):

* **A. Component discounting** -- edges already in the tree component a search
  starts from cost ``0`` (their delay still counts), and a search connects as
  soon as it reaches *any* vertex of another component, which implicitly
  places Steiner vertices at the points where paths enter existing trees.
* **B. Two-level heap** -- one binary heap per active search plus a top-level
  heap over the sub-heap minima.
* **C. Goal-oriented search** -- A* potentials from L1 / landmark lower
  bounds on connection cost and delay.
* **D. Better Steiner vertex embedding** -- instead of the random endpoint,
  the new Steiner vertex is placed on the freshly added path at the position
  minimising an estimate of the cost of extending the path to the root.
* **E. Encouraged root connections** -- the expected penalty of a root
  connection is reduced by the future savings ``eta * dbif * w(u)``.

The plain configuration (:meth:`CostDistanceConfig.plain`) disables all
enhancements and matches the analysed algorithm, which carries the
``O(log t)`` approximation guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.future_cost import FutureCostEstimator
from repro.core.heap import AddressableBinaryHeap, TwoLevelHeap
from repro.core.instance import SteinerInstance
from repro.core.objective import prune_dangling_branches
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree

__all__ = [
    "CostDistanceConfig",
    "MergeRecord",
    "CostDistanceResult",
    "CostDistanceSolver",
]

#: Identifier of the root component in merge records.
ROOT_ID = -1


@dataclass(frozen=True)
class CostDistanceConfig:
    """Configuration of the cost-distance solver.

    The default configuration enables all practical enhancements of
    Section III; :meth:`plain` returns the analysed variant of Section II.
    """

    discount_components: bool = True
    use_two_level_heap: bool = True
    use_future_costs: bool = True
    improved_steiner_placement: bool = True
    encourage_root_connections: bool = True
    num_landmarks: int = 0
    record_trace: bool = False
    seed: int = 0

    @classmethod
    def plain(cls, record_trace: bool = False, seed: int = 0) -> "CostDistanceConfig":
        """The unenhanced algorithm of Section II (keeps the O(log t) guarantee)."""
        return cls(
            discount_components=False,
            use_two_level_heap=False,
            use_future_costs=False,
            improved_steiner_placement=False,
            encourage_root_connections=False,
            num_landmarks=0,
            record_trace=record_trace,
            seed=seed,
        )


@dataclass(frozen=True)
class MergeRecord:
    """One iteration of the algorithm, for tracing / Figure 3."""

    iteration: int
    source_node: int
    source_weight: float
    target_node: int
    target_weight: float
    meeting_node: int
    steiner_node: Optional[int]
    path_edges: Tuple[int, ...]
    is_root_merge: bool
    active_after: int
    active_terminals: Tuple[Tuple[int, float], ...] = ()


@dataclass
class CostDistanceResult:
    """Tree plus bookkeeping returned by :meth:`CostDistanceSolver.solve_with_details`."""

    tree: EmbeddedTree
    merges: List[MergeRecord]
    num_iterations: int
    num_labels: int


class _Terminal:
    """An active terminal (sink or Steiner vertex) of the algorithm."""

    __slots__ = ("node", "weight", "comp")

    def __init__(self, node: int, weight: float, comp: int) -> None:
        self.node = node
        self.weight = weight
        self.comp = comp


class _Search:
    """The persistent Dijkstra search of one active terminal."""

    __slots__ = ("weight", "comp", "tentative", "parent", "permanent")

    def __init__(self, weight: float, comp: int, seed_node: int) -> None:
        self.weight = weight
        self.comp = comp
        self.tentative: Dict[int, float] = {seed_node: 0.0}
        self.parent: Dict[int, int] = {}
        self.permanent: Set[int] = set()


class _FlatQueue:
    """Single addressable heap with the same API as :class:`TwoLevelHeap`."""

    def __init__(self) -> None:
        self._heap: AddressableBinaryHeap = AddressableBinaryHeap()
        self._by_search: Dict[int, Set[object]] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def add_search(self, search_id: int) -> None:
        self._by_search.setdefault(search_id, set())

    def remove_search(self, search_id: int) -> None:
        for item in self._by_search.pop(search_id, set()):
            self._heap.remove((search_id, item))

    def push(self, search_id: int, item, key: float) -> bool:
        self._by_search.setdefault(search_id, set()).add(item)
        return self._heap.push((search_id, item), key)

    def pop(self):
        key, (search_id, item) = self._heap.pop()
        members = self._by_search.get(search_id)
        if members is not None:
            members.discard(item)
        return key, search_id, item


class _UnionFind:
    """Union-find over graph nodes, used to keep the output edge set acyclic."""

    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class CostDistanceSolver(SteinerOracle):
    """The cost-distance Steiner tree oracle (paper Algorithm 1)."""

    name = "CD"

    #: The searches grow outward from the net's terminals, so the tree
    #: depends on costs near the net plus the global cost floor (A*
    #: potentials).  With landmarks (``num_landmarks > 0``) this no longer
    #: holds -- the engine checks for that separately.
    region_cache_safe = True

    def __init__(self, config: Optional[CostDistanceConfig] = None) -> None:
        self.config = config or CostDistanceConfig()

    # ------------------------------------------------------------------ API
    def build(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        """Build an embedded cost-distance Steiner tree for ``instance``."""
        return self.solve_with_details(instance, rng).tree

    def solve(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        """Alias of :meth:`build`."""
        return self.build(instance, rng)

    # --------------------------------------------------------------- solver
    def solve_with_details(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> CostDistanceResult:
        """Run the algorithm and return the tree together with its trace."""
        config = self.config
        rng = rng if rng is not None else random.Random(config.seed)
        graph = instance.graph
        # One batch routes many nets against one cost vector; the context
        # (when attached and covering these exact arrays) shares the O(edges)
        # list conversions and the future-cost estimator across the batch.
        ctx = instance.context
        if ctx is not None and ctx.covers(instance.cost, instance.delay):
            cost = ctx.cost_list()
            delay = ctx.delay_list()
        else:
            ctx = None
            cost = instance.cost.tolist()
            delay = instance.delay.tolist()
        bif = instance.bifurcation
        root_node = instance.root

        # ---- initial terminals (duplicate sink tiles collapse into one) ----
        position_of: Dict[int, int] = {}
        init_nodes: List[int] = []
        init_weights: List[float] = []
        for node, weight in zip(instance.sinks, instance.weights):
            if node == root_node:
                continue
            if node in position_of:
                init_weights[position_of[node]] += weight
            else:
                position_of[node] = len(init_nodes)
                init_nodes.append(node)
                init_weights.append(weight)

        merges: List[MergeRecord] = []
        if not init_nodes:
            tree = EmbeddedTree(graph, root_node, tuple(instance.sinks), (), self.name)
            return CostDistanceResult(tree, merges, 0, 0)

        # ---- component bookkeeping ----
        comp_nodes: Dict[int, Set[int]] = {}
        comp_edges: Dict[int, Set[int]] = {}
        comp_owner: Dict[int, int] = {}
        node_comp: Dict[int, int] = {}
        # Delay from every component node to the component's representative
        # terminal, along the component's own edges.  Used so that a search
        # entering a component "anywhere" (enhancement III-A) still pays the
        # delay towards the component's terminal, as in the paper's
        # per-end-component labels.
        comp_rep: Dict[int, int] = {}
        comp_delay: Dict[int, Dict[int, float]] = {}

        def new_component(owner: int, nodes: Set[int]) -> int:
            comp_id = len(comp_nodes)
            comp_nodes[comp_id] = nodes
            comp_edges[comp_id] = set()
            comp_owner[comp_id] = owner
            for n in nodes:
                node_comp[n] = comp_id
            rep = next(iter(nodes))
            comp_rep[comp_id] = rep
            comp_delay[comp_id] = {n: 0.0 for n in nodes}
            return comp_id

        new_component(ROOT_ID, {root_node})

        active: Dict[int, _Terminal] = {}
        searches: Dict[int, _Search] = {}
        queue = TwoLevelHeap() if config.use_two_level_heap else _FlatQueue()

        estimator: Optional[FutureCostEstimator] = None
        if config.use_future_costs or config.improved_steiner_placement:
            if ctx is not None:
                estimator = ctx.estimator(config.num_landmarks)
            else:
                estimator = FutureCostEstimator(
                    graph,
                    cost_lower_bound=instance.cost,
                    num_landmarks=config.num_landmarks,
                )

        next_tid = 0
        total_active_weight = 0.0
        target_positions: List[int] = []
        # Planar coordinates of the targets, refreshed together with the
        # target list: the potential runs once per heap push, so looking the
        # coordinates up there (8 node_planar calls per push) dominated the
        # search before they were hoisted to the per-merge refresh.
        target_coords: List[Tuple[int, int]] = []
        target_bbox: List[int] = [0, 0, 0, 0]  # xmin, xmax, ymin, ymax
        planar_tiles = graph.nx * graph.ny
        grid_nx = graph.nx
        # Per-tile lower-bound rates of the admissible A* potential (see
        # FutureCostEstimator.multi_target_potential).
        if estimator is not None and config.use_future_costs:
            pot_cost_rate = estimator.min_cost_per_tile
            pot_delay_rate = estimator.fastest_delay_per_tile
        else:
            pot_cost_rate = pot_delay_rate = 0.0

        # Nearest-target L1 distances, memoised per node between target
        # refreshes: the target set only changes at merges, and the searches
        # re-touch the same nodes many times in between.
        l1_cache: Dict[int, float] = {}

        def refresh_targets() -> None:
            target_positions.clear()
            target_positions.append(root_node)
            target_positions.extend(term.node for term in active.values())
            target_coords.clear()
            for t in target_positions:
                rest = t % planar_tiles
                target_coords.append((rest % grid_nx, rest // grid_nx))
            xs = [c[0] for c in target_coords]
            ys = [c[1] for c in target_coords]
            target_bbox[:] = [min(xs), max(xs), min(ys), max(ys)]
            l1_cache.clear()

        def potential(tid: int, node: int) -> float:
            """Admissible potential towards the current target set.

            Reproduces ``FutureCostEstimator.multi_target_potential`` (exact
            nearest-target L1 for up to 8 targets, bounding-box distance
            beyond) over the precomputed target coordinates.
            """
            if estimator is None or not config.use_future_costs:
                return 0.0
            l1 = l1_cache.get(node)
            if l1 is None:
                rest = node % planar_tiles
                ax = rest % grid_nx
                ay = rest // grid_nx
                if len(target_coords) <= 8:
                    best = None
                    for bx, by in target_coords:
                        d = abs(ax - bx) + abs(ay - by)
                        if best is None or d < best:
                            best = d
                            if best == 0:
                                break
                    l1 = float(best or 0)
                else:
                    xmin, xmax, ymin, ymax = target_bbox
                    dx = max(0, xmin - ax, ax - xmax)
                    dy = max(0, ymin - ay, ay - ymax)
                    l1 = float(dx + dy)
                l1_cache[node] = l1
            return l1 * (pot_cost_rate + searches[tid].weight * pot_delay_rate)

        def merge_penalty(source_tid: int, owner: int) -> float:
            w_u = active[source_tid].weight
            if owner == ROOT_ID:
                rest = max(total_active_weight - w_u, 0.0)
                penalty = bif.beta(w_u, rest)
                if config.encourage_root_connections and bif.enabled:
                    penalty -= bif.eta * bif.dbif * w_u
                return max(penalty, 0.0)
            return bif.beta(w_u, active[owner].weight)

        def connection_key(source_tid: int, comp: int, node: int, dist: float) -> float:
            """Full key of a connection candidate: path distance, delay from
            the entry point to the target component's terminal, and the
            bifurcation merge penalty."""
            owner = comp_owner[comp]
            inside = comp_delay[comp].get(node, 0.0)
            return dist + active[source_tid].weight * inside + merge_penalty(source_tid, owner)

        def start_search(tid: int, term: _Terminal) -> None:
            search = _Search(term.weight, term.comp, term.node)
            searches[tid] = search
            queue.add_search(tid)
            queue.push(tid, term.node, 0.0 + potential(tid, term.node))

        def deactivate(tid: int) -> None:
            active.pop(tid, None)
            searches.pop(tid, None)
            queue.remove_search(tid)

        for node, weight in zip(init_nodes, init_weights):
            tid = next_tid
            next_tid += 1
            comp = new_component(tid, {node})
            active[tid] = _Terminal(node, weight, comp)
            total_active_weight += weight
        refresh_targets()
        for tid, term in list(active.items()):
            start_search(tid, term)

        # ---- main loop ----
        tree_edges: List[int] = []
        tree_edge_set: Set[int] = set()
        acyclic = _UnionFind()
        num_labels = 0
        num_pops = 0
        iteration = 0
        infinity = float("inf")

        while active:
            if not queue:
                raise RuntimeError(
                    "cost-distance search exhausted the queue before connecting "
                    "all terminals; the routing graph is disconnected"
                )
            key, tid, item = queue.pop()
            num_pops += 1
            search = searches.get(tid)
            if search is None:
                continue

            if isinstance(item, tuple):
                # Connection candidate ('c', node).
                node = item[1]
                comp = node_comp.get(node)
                if comp is None or comp == search.comp:
                    continue
                owner = comp_owner.get(comp)
                if owner is None or (owner != ROOT_ID and owner not in active):
                    continue
                dist = search.tentative.get(node)
                if dist is None or node not in search.permanent:
                    continue
                fresh_key = connection_key(tid, comp, node, dist)
                if fresh_key > key + 1e-9:
                    queue.push(tid, item, fresh_key)
                    continue
                iteration += 1
                self._merge(
                    instance=instance,
                    config=config,
                    rng=rng,
                    estimator=estimator,
                    iteration=iteration,
                    source_tid=tid,
                    owner=owner,
                    meeting_node=node,
                    active=active,
                    searches=searches,
                    queue=queue,
                    comp_nodes=comp_nodes,
                    comp_edges=comp_edges,
                    comp_owner=comp_owner,
                    node_comp=node_comp,
                    comp_rep=comp_rep,
                    comp_delay=comp_delay,
                    tree_edges=tree_edges,
                    tree_edge_set=tree_edge_set,
                    acyclic=acyclic,
                    merges=merges,
                    delay=delay,
                    connection_key=connection_key,
                    start_search=start_search,
                    deactivate=deactivate,
                )
                # Root merges reduce the total active weight.
                if merges and merges[-1].is_root_merge:
                    total_active_weight = sum(t.weight for t in active.values())
                next_tid = max(next_tid, max(active.keys(), default=-1) + 1)
                refresh_targets()
                continue

            # Regular node label.
            node = item
            if node in search.permanent:
                continue
            dist = search.tentative[node]
            search.permanent.add(node)
            num_labels += 1

            comp = node_comp.get(node)
            if comp is not None and comp != search.comp:
                owner = comp_owner.get(comp)
                if owner == ROOT_ID or owner in active:
                    if config.discount_components:
                        # Enhancement III-A: reaching any vertex of another
                        # component counts as a connection to it.
                        connect = True
                    elif owner == ROOT_ID:
                        connect = node == root_node
                    else:
                        connect = node == active[owner].node
                    if connect:
                        queue.push(tid, ("c", node), connection_key(tid, comp, node, dist))

            own_edges = comp_edges.get(search.comp) if config.discount_components else None
            weight = search.weight
            tentative = search.tentative
            permanent = search.permanent
            parent = search.parent
            for edge, other in graph.adjacency[node]:
                if other in permanent:
                    continue
                if own_edges is not None and edge in own_edges:
                    edge_cost = 0.0
                else:
                    edge_cost = cost[edge]
                candidate = dist + edge_cost + weight * delay[edge]
                if candidate < tentative.get(other, infinity):
                    tentative[other] = candidate
                    parent[other] = edge
                    queue.push(tid, other, candidate + potential(tid, other))

        tree = self._finalize(instance, tree_edges)
        # Aggregated per-solve increments (not per pop) keep the hot loop
        # observable without taxing it.
        obs.inc("astar.pops", num_pops)
        obs.inc("cd.labels", num_labels)
        obs.inc("cd.merges", len(merges))
        obs.inc("cd.solves")
        return CostDistanceResult(tree, merges, iteration, num_labels)

    # ----------------------------------------------------------- internals
    def _merge(
        self,
        *,
        instance: SteinerInstance,
        config: CostDistanceConfig,
        rng: random.Random,
        estimator: Optional[FutureCostEstimator],
        iteration: int,
        source_tid: int,
        owner: int,
        meeting_node: int,
        active: Dict[int, _Terminal],
        searches: Dict[int, _Search],
        queue,
        comp_nodes: Dict[int, Set[int]],
        comp_edges: Dict[int, Set[int]],
        comp_owner: Dict[int, int],
        node_comp: Dict[int, int],
        comp_rep: Dict[int, int],
        comp_delay: Dict[int, Dict[int, float]],
        tree_edges: List[int],
        tree_edge_set: Set[int],
        acyclic: _UnionFind,
        merges: List[MergeRecord],
        delay: Sequence[float],
        connection_key,
        start_search,
        deactivate,
    ) -> None:
        """Perform one merge (one iteration of Algorithm 1)."""
        graph = instance.graph
        search = searches[source_tid]
        source = active[source_tid]

        # Backtrack the connecting path (meeting node -> search seed).
        rev_edges: List[int] = []
        rev_nodes: List[int] = [meeting_node]
        node = meeting_node
        while node in search.parent:
            edge = search.parent[node]
            rev_edges.append(edge)
            node = graph.other_endpoint(edge, node)
            rev_nodes.append(node)
        path_nodes = list(reversed(rev_nodes))  # seed -> meeting node
        path_edges = list(reversed(rev_edges))

        # Add new edges to the global tree, skipping anything that would
        # close a cycle (paths may touch nodes that already belong to the
        # growing tree).
        for edge in path_edges:
            if edge in tree_edge_set:
                continue
            u = int(graph.edge_u[edge])
            v = int(graph.edge_v[edge])
            if acyclic.union(u, v):
                tree_edge_set.add(edge)
                tree_edges.append(edge)

        # Merge the two components (union by size) and absorb the path.
        src_comp = source.comp
        dst_comp = active[owner].comp if owner != ROOT_ID else self._root_comp(comp_owner)
        if len(comp_nodes[src_comp]) >= len(comp_nodes[dst_comp]):
            big, small = src_comp, dst_comp
        else:
            big, small = dst_comp, src_comp
        for n in comp_nodes[small]:
            node_comp[n] = big
        comp_nodes[big].update(comp_nodes[small])
        comp_edges[big].update(comp_edges[small])
        comp_nodes.pop(small)
        comp_edges.pop(small)
        comp_owner.pop(small, None)
        comp_rep.pop(small, None)
        comp_delay.pop(small, None)
        # Path nodes that are not yet owned by any component join the merged
        # component.  Nodes already owned by a *different* component (the
        # path may brush past the root tile or a third component) keep their
        # owner -- stealing them could orphan that component's terminal and
        # make it unreachable for future connections.
        new_path_nodes = [n for n in path_nodes if n not in node_comp]
        comp_nodes[big].update(new_path_nodes)
        comp_edges[big].update(path_edges)
        for n in new_path_nodes:
            node_comp[n] = big

        is_root_merge = owner == ROOT_ID
        target_weight = 0.0 if is_root_merge else active[owner].weight
        target_node = instance.root if is_root_merge else active[owner].node

        steiner_node: Optional[int] = None
        if is_root_merge:
            comp_owner[big] = ROOT_ID
            comp_rep[big] = instance.root
            deactivate(source_tid)
        else:
            target = active[owner]
            if config.improved_steiner_placement and estimator is not None:
                steiner_node = self._best_steiner_position(
                    graph=graph,
                    estimator=estimator,
                    path_nodes=path_nodes,
                    path_edges=path_edges,
                    delay=delay,
                    source_weight=source.weight,
                    target_weight=target.weight,
                    root_nodes=self._root_target_sample(comp_nodes, comp_owner, instance.root),
                )
            else:
                choices = [source.node, target.node]
                weights = [source.weight, target.weight]
                if weights[0] + weights[1] <= 0:
                    weights = [1.0, 1.0]
                steiner_node = rng.choices(choices, weights=weights, k=1)[0]
            new_tid = max(list(active.keys()) + [0]) + 1
            merged_weight = source.weight + target.weight
            deactivate(source_tid)
            deactivate(owner)
            term = _Terminal(steiner_node, merged_weight, big)
            active[new_tid] = term
            comp_owner[big] = new_tid
            comp_rep[big] = steiner_node
            start_search(new_tid, term)

        # Recompute the delay from every component node to the (new)
        # representative terminal along the component's own edges.
        comp_delay[big] = self._component_delays(
            graph, comp_edges[big], comp_rep[big], delay
        )

        # Let other searches that already labeled the freshly added path
        # nodes compete for a connection to the new component.
        for p in new_path_nodes:
            for other_tid, other_search in searches.items():
                if other_search.comp == big:
                    continue
                if p in other_search.permanent:
                    key = connection_key(other_tid, big, p, other_search.tentative[p])
                    queue.push(other_tid, ("c", p), key)

        record = MergeRecord(
            iteration=iteration,
            source_node=source.node,
            source_weight=source.weight,
            target_node=target_node,
            target_weight=target_weight,
            meeting_node=meeting_node,
            steiner_node=steiner_node,
            path_edges=tuple(path_edges),
            is_root_merge=is_root_merge,
            active_after=len(active),
            active_terminals=tuple((t.node, t.weight) for t in active.values())
            if config.record_trace
            else (),
        )
        merges.append(record)

    @staticmethod
    def _component_delays(
        graph, edges: Set[int], representative: int, delay: Sequence[float]
    ) -> Dict[int, float]:
        """Delay from every node of a component to its representative terminal.

        Computed by a breadth/best-first walk over the component's own edges;
        components are (nearly) trees, so a simple Dijkstra over the edge set
        is cheap and exact.
        """
        adjacency: Dict[int, List[Tuple[int, int]]] = {}
        for edge in edges:
            u = int(graph.edge_u[edge])
            v = int(graph.edge_v[edge])
            adjacency.setdefault(u, []).append((edge, v))
            adjacency.setdefault(v, []).append((edge, u))
        result: Dict[int, float] = {representative: 0.0}
        heap = AddressableBinaryHeap()
        heap.push(representative, 0.0)
        settled: Set[int] = set()
        while heap:
            d, node = heap.pop()
            if node in settled:
                continue
            settled.add(node)
            result[node] = d
            for edge, other in adjacency.get(node, []):
                if other in settled:
                    continue
                candidate = d + delay[edge]
                if candidate < result.get(other, float("inf")):
                    result[other] = candidate
                    heap.push(other, candidate)
        return result

    @staticmethod
    def _root_comp(comp_owner: Dict[int, int]) -> int:
        for comp, owner in comp_owner.items():
            if owner == ROOT_ID:
                return comp
        raise RuntimeError("root component missing")

    @staticmethod
    def _root_target_sample(
        comp_nodes: Dict[int, Set[int]], comp_owner: Dict[int, int], root_node: int
    ) -> List[int]:
        for comp, owner in comp_owner.items():
            if owner == ROOT_ID:
                nodes = comp_nodes[comp]
                if len(nodes) <= 24:
                    return list(nodes)
                sample = list(nodes)[:: max(1, len(nodes) // 24)]
                if root_node not in sample:
                    sample.append(root_node)
                return sample
        return [root_node]

    @staticmethod
    def _best_steiner_position(
        *,
        graph,
        estimator: FutureCostEstimator,
        path_nodes: List[int],
        path_edges: List[int],
        delay: Sequence[float],
        source_weight: float,
        target_weight: float,
        root_nodes: List[int],
    ) -> int:
        """Pick the Steiner vertex position on the new path (Section III-D).

        Minimises ``w(u) d(P[u,s]) + w(v) d(P[v,s])`` plus a future-cost
        estimate of the cheapest ``s``-root extension weighted by
        ``w(u) + w(v)``.
        """
        if len(path_nodes) == 1:
            return path_nodes[0]
        prefix = [0.0]
        for edge in path_edges:
            prefix.append(prefix[-1] + delay[edge])
        total = prefix[-1]
        combined = source_weight + target_weight
        best_node = path_nodes[0]
        best_value = None
        for idx, node in enumerate(path_nodes):
            value = source_weight * prefix[idx] + target_weight * (total - prefix[idx])
            remaining = None
            for target in root_nodes:
                bound = estimator.cost_lower_bound_between(node, target)
                bound += combined * estimator.delay_lower_bound(node, target)
                if remaining is None or bound < remaining:
                    remaining = bound
            value += remaining or 0.0
            if best_value is None or value < best_value:
                best_value = value
                best_node = node
        return best_node

    def _finalize(self, instance: SteinerInstance, tree_edges: List[int]) -> EmbeddedTree:
        """Build the final :class:`EmbeddedTree` (pruning dangling branches)."""
        tree = EmbeddedTree(
            instance.graph,
            instance.root,
            tuple(instance.sinks),
            tuple(tree_edges),
            self.name,
        )
        return prune_dangling_branches(tree)
