"""Priority queues used by the path searches.

Two structures are provided:

* :class:`AddressableBinaryHeap` -- a binary min-heap with decrease-key,
  addressing items by an integer id.  Global routing graphs have
  ``m = O(n)`` edges, so binary heaps are the right trade-off (paper
  Section III-B); Fibonacci heaps only matter for the asymptotic statement.
* :class:`TwoLevelHeap` -- the two-level structure of Section III-B: one
  sub-heap per active sink plus a top-level heap over the sub-heap minima.
  The cost-distance solver keeps extracting from a single sub-heap while its
  minimum stays below the best other sub-heap minimum, which avoids
  top-level churn when one search is locally busy.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

__all__ = ["AddressableBinaryHeap", "TwoLevelHeap"]

K = TypeVar("K", bound=Hashable)


class AddressableBinaryHeap(Generic[K]):
    """Binary min-heap with decrease-key, keyed by arbitrary hashable ids."""

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._items: List[K] = []
        self._position: Dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: K) -> bool:
        return item in self._position

    def key_of(self, item: K) -> float:
        """Current key of ``item`` (raises ``KeyError`` if absent)."""
        return self._keys[self._position[item]]

    def peek(self) -> Tuple[float, K]:
        """The minimum (key, item) without removing it."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        return self._keys[0], self._items[0]

    def min_key(self) -> float:
        """The minimum key, ``inf`` if the heap is empty."""
        return self._keys[0] if self._items else float("inf")

    def push(self, item: K, key: float) -> bool:
        """Insert ``item`` or decrease its key.

        Returns ``True`` if the item was inserted or its key decreased,
        ``False`` if the existing key was already smaller or equal.
        """
        return self.insert_or_decrease(item, key) != 0

    def insert_or_decrease(self, item: K, key: float) -> int:
        """Like :meth:`push` but reports what happened: ``2`` inserted,
        ``1`` decreased, ``0`` left unchanged.  One hash lookup instead of
        the separate membership test callers would otherwise need -- this
        sits on the hottest path of every search."""
        pos = self._position.get(item)
        if pos is None:
            self._keys.append(key)
            self._items.append(item)
            self._position[item] = len(self._items) - 1
            self._sift_up(len(self._items) - 1)
            return 2
        if key < self._keys[pos]:
            self._keys[pos] = key
            self._sift_up(pos)
            return 1
        return 0

    def pop(self) -> Tuple[float, K]:
        """Remove and return the minimum (key, item)."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        min_key = self._keys[0]
        min_item = self._items[0]
        last_key = self._keys.pop()
        last_item = self._items.pop()
        del self._position[min_item]
        if self._items:
            self._keys[0] = last_key
            self._items[0] = last_item
            self._position[last_item] = 0
            self._sift_down(0)
        return min_key, min_item

    def remove(self, item: K) -> None:
        """Remove ``item`` from the heap if present."""
        pos = self._position.get(item)
        if pos is None:
            return
        last_index = len(self._items) - 1
        last_key = self._keys.pop()
        last_item = self._items.pop()
        del self._position[item]
        if pos != last_index:
            self._keys[pos] = last_key
            self._items[pos] = last_item
            self._position[last_item] = pos
            self._sift_down(pos)
            self._sift_up(pos)

    # ----------------------------------------------------------- internals
    def _sift_up(self, pos: int) -> None:
        key = self._keys[pos]
        item = self._items[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._keys[parent] <= key:
                break
            self._keys[pos] = self._keys[parent]
            self._items[pos] = self._items[parent]
            self._position[self._items[pos]] = pos
            pos = parent
        self._keys[pos] = key
        self._items[pos] = item
        self._position[item] = pos

    def _sift_down(self, pos: int) -> None:
        size = len(self._items)
        key = self._keys[pos]
        item = self._items[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._keys[right] < self._keys[child]:
                child = right
            if self._keys[child] >= key:
                break
            self._keys[pos] = self._keys[child]
            self._items[pos] = self._items[child]
            self._position[self._items[pos]] = pos
            pos = child
        self._keys[pos] = key
        self._items[pos] = item
        self._position[item] = pos


class TwoLevelHeap(Generic[K]):
    """One sub-heap per search plus a top-level heap over sub-heap minima.

    Items are addressed by ``(search_id, item)``.  The structure follows
    Section III-B of the paper: extraction keeps working on the sub-heap of
    the previous extraction while its minimum is still globally minimal,
    which keeps the top-level heap small and rarely updated.
    """

    def __init__(self) -> None:
        self._subheaps: Dict[Hashable, AddressableBinaryHeap[K]] = {}
        self._top: AddressableBinaryHeap[Hashable] = AddressableBinaryHeap()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def add_search(self, search_id: Hashable) -> None:
        """Register a (possibly empty) sub-heap for ``search_id``."""
        if search_id not in self._subheaps:
            self._subheaps[search_id] = AddressableBinaryHeap()

    def remove_search(self, search_id: Hashable) -> None:
        """Drop a search and all of its queued items."""
        sub = self._subheaps.pop(search_id, None)
        if sub is not None:
            self._size -= len(sub)
            self._top.remove(search_id)

    def push(self, search_id: Hashable, item: K, key: float) -> bool:
        """Insert or decrease-key ``item`` in the sub-heap of ``search_id``."""
        sub = self._subheaps.get(search_id)
        if sub is None:
            sub = self._subheaps[search_id] = AddressableBinaryHeap()
        old_min = sub.min_key()
        outcome = sub.insert_or_decrease(item, key)
        if outcome == 0:
            return False
        if outcome == 2:
            self._size += 1
        # The top-level entry tracks the sub-heap minimum; it only moves
        # when this push actually lowered that minimum.
        if key < old_min:
            self._top.push(search_id, key)
        return True

    def pop(self) -> Tuple[float, Hashable, K]:
        """Remove and return the globally minimal ``(key, search_id, item)``."""
        if self._size == 0:
            raise IndexError("pop from an empty two-level heap")
        while True:
            top_key, search_id = self._top.peek()
            sub = self._subheaps.get(search_id)
            if sub is None or not sub:
                self._top.pop()
                continue
            if sub.min_key() != top_key:
                # Stale top entry -- refresh and retry.
                self._top.pop()
                self._top.push(search_id, sub.min_key())
                continue
            key, item = sub.pop()
            self._size -= 1
            self._top.pop()
            if sub:
                self._top.push(search_id, sub.min_key())
            return key, search_id, item

    def min_key(self) -> float:
        """The globally minimal key, ``inf`` when empty."""
        while self._top:
            top_key, search_id = self._top.peek()
            sub = self._subheaps.get(search_id)
            if sub is None or not sub:
                self._top.pop()
                continue
            if sub.min_key() != top_key:
                self._top.pop()
                self._top.push(search_id, sub.min_key())
                continue
            return top_key
        return float("inf")
