"""Generic Dijkstra searches over the routing graph.

These helpers are used by the topology embedding of the baselines, by the
landmark future costs, and by several tests that need ground-truth shortest
path distances to validate the cost-distance algorithm.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.core.heap import AddressableBinaryHeap
from repro.grid.graph import RoutingGraph

__all__ = ["dijkstra", "shortest_path_edges", "multi_source_distances"]


def dijkstra(
    graph: RoutingGraph,
    lengths: Sequence[float],
    sources: Dict[int, float],
    targets: Optional[Iterable[int]] = None,
    future_cost: Optional[Callable[[int], float]] = None,
    node_filter: Optional[Callable[[int], bool]] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Dijkstra (optionally A*) from a set of weighted sources.

    Parameters
    ----------
    graph:
        The routing graph.
    lengths:
        Per-edge non-negative lengths (indexable by edge id).
    sources:
        ``{node: initial_distance}``; multi-source searches simply provide
        several entries.
    targets:
        Optional set of target nodes.  The search stops once every target is
        permanently labeled.
    future_cost:
        Optional admissible heuristic ``h(node)`` added to the queue key
        (A* search).  Must be a lower bound on the remaining distance to the
        closest target for correctness of early termination.
    node_filter:
        Optional predicate restricting the search to nodes for which it
        returns ``True`` (source nodes are always allowed).  Used to confine
        searches to a routing window around a net's bounding box.

    Returns
    -------
    (dist, parent_edge):
        ``dist`` maps permanently labeled nodes to their distance, and
        ``parent_edge`` maps each labeled non-source node to the edge towards
        its predecessor on a shortest path.
    """
    dist: Dict[int, float] = {}
    tentative: Dict[int, float] = {}
    parent_edge: Dict[int, int] = {}
    heap: AddressableBinaryHeap[int] = AddressableBinaryHeap()
    remaining: Optional[Set[int]] = set(targets) if targets is not None else None

    for node, d0 in sources.items():
        if d0 < 0:
            raise ValueError("source distances must be non-negative")
        if d0 < tentative.get(node, float("inf")):
            tentative[node] = d0
            key = d0 + (future_cost(node) if future_cost else 0.0)
            heap.push(node, key)

    adjacency = graph.adjacency
    pops = 0
    while heap:
        _, node = heap.pop()
        pops += 1
        if node in dist:
            continue
        d_node = tentative[node]
        dist[node] = d_node
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for edge, other in adjacency[node]:
            if other in dist:
                continue
            if node_filter is not None and not node_filter(other):
                continue
            candidate = d_node + lengths[edge]
            if candidate < tentative.get(other, float("inf")):
                tentative[other] = candidate
                parent_edge[other] = edge
                key = candidate + (future_cost(other) if future_cost else 0.0)
                heap.push(other, key)
    # One aggregated increment per search keeps the inner loop counter-free.
    obs.inc("astar.pops", pops)
    return dist, parent_edge


def shortest_path_edges(
    graph: RoutingGraph,
    parent_edge: Dict[int, int],
    sources: Set[int],
    target: int,
) -> List[int]:
    """Backtrack the edge sequence from ``target`` to the nearest source.

    ``parent_edge`` must come from a :func:`dijkstra` call whose source set
    was ``sources``.  The returned edges are ordered from the source towards
    the target.
    """
    edges: List[int] = []
    node = target
    while node not in sources:
        edge = parent_edge.get(node)
        if edge is None:
            raise ValueError(f"node {node} was not reached from the sources")
        edges.append(edge)
        node = graph.other_endpoint(edge, node)
    edges.reverse()
    return edges


def multi_source_distances(
    graph: RoutingGraph,
    lengths: Sequence[float],
    sources: Iterable[int],
) -> np.ndarray:
    """Distances from the nearest source to every node, as a dense array.

    Unreached nodes get ``inf``.  Used to build landmark lower bounds.
    """
    dist, _ = dijkstra(graph, lengths, {int(s): 0.0 for s in sources})
    result = np.full(graph.num_nodes, np.inf, dtype=np.float64)
    for node, value in dist.items():
        result[node] = value
    return result
