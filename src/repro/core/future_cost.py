"""Admissible lower bounds (future costs) for goal-oriented path searches.

Section III-C of the paper speeds up the path searches with A* using two
kinds of lower bounds:

* the congestion/connection cost between two vertices is lower bounded by
  landmark-based future costs (Goldberg-Harrelson), and
* the delay is lower bounded by the L1 distance times the per-tile delay of
  the fastest layer / wire type combination.

The :class:`FutureCostEstimator` provides both bounds.  Landmark distances
are computed once against a *lower bound* cost vector (by default the
uncongested base costs); they stay valid as long as the actual congestion
cost of every edge never drops below that vector, which holds for the
pricing schemes in this library.

For the multi-target potentials used inside the cost-distance searches the
estimator also offers a cheap bound based on the L1 distance to the target
set (exact nearest-target distance for small target sets, bounding-box
distance for large ones).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from repro.core.shortest_path import multi_source_distances
from repro.grid.graph import RoutingGraph

__all__ = ["FutureCostEstimator"]


class FutureCostEstimator:
    """Lower bounds on connection cost and delay between graph nodes.

    Parameters
    ----------
    graph:
        The routing graph.
    cost_lower_bound:
        Per-edge lower bound on the connection cost used by the searches.
        Defaults to the graph's base costs.
    fastest_delay_per_tile:
        Per-tile delay of the fastest layer / wire type; defaults to the
        value from the graph's delay model.
    num_landmarks:
        Number of landmark nodes for the landmark (ALT) bound.  ``0``
        disables landmarks and only the L1-based bounds are used.
    seed:
        Seed for the random part of landmark selection.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        cost_lower_bound: Optional[np.ndarray] = None,
        fastest_delay_per_tile: Optional[float] = None,
        num_landmarks: int = 4,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        if cost_lower_bound is None:
            cost_lower_bound = graph.base_cost_array()
        self.cost_lower_bound = np.asarray(cost_lower_bound, dtype=np.float64)
        if fastest_delay_per_tile is None:
            fastest_delay_per_tile = graph.delay_model.fastest_delay_per_tile()
        self.fastest_delay_per_tile = float(fastest_delay_per_tile)

        # Cheapest way to advance one tile in the plane (used for the
        # L1-based connection-cost bound).  Vias have length 0 so they do
        # not help covering planar distance.
        routing = ~graph.edge_is_via
        if np.any(routing):
            self.min_cost_per_tile = float(np.min(self.cost_lower_bound[routing]))
        else:
            self.min_cost_per_tile = 0.0

        self._landmark_dists: List[np.ndarray] = []
        if num_landmarks > 0:
            self._build_landmarks(num_landmarks, seed)

    # ------------------------------------------------------------ landmarks
    def _build_landmarks(self, num_landmarks: int, seed: int) -> None:
        graph = self.graph
        rng = random.Random(seed)
        mid_layer = graph.num_layers // 2
        corners = [
            graph.node_index(0, 0, mid_layer),
            graph.node_index(graph.nx - 1, 0, mid_layer),
            graph.node_index(0, graph.ny - 1, mid_layer),
            graph.node_index(graph.nx - 1, graph.ny - 1, mid_layer),
        ]
        landmarks: List[int] = []
        for node in corners:
            if len(landmarks) < num_landmarks and node not in landmarks:
                landmarks.append(node)
        while len(landmarks) < num_landmarks:
            node = rng.randrange(graph.num_nodes)
            if node not in landmarks:
                landmarks.append(node)
        lengths = self.cost_lower_bound
        for node in landmarks:
            self._landmark_dists.append(multi_source_distances(graph, lengths, [node]))

    @property
    def num_landmarks(self) -> int:
        """Number of landmarks in use."""
        return len(self._landmark_dists)

    # -------------------------------------------------------------- bounds
    def delay_lower_bound(self, node: int, target: int) -> float:
        """Lower bound on the delay of any node-target path."""
        ax, ay = self.graph.node_planar(node)
        bx, by = self.graph.node_planar(target)
        return (abs(ax - bx) + abs(ay - by)) * self.fastest_delay_per_tile

    def cost_lower_bound_between(self, node: int, target: int) -> float:
        """Lower bound on the connection cost of any node-target path."""
        ax, ay = self.graph.node_planar(node)
        bx, by = self.graph.node_planar(target)
        l1 = abs(ax - bx) + abs(ay - by)
        bound = l1 * self.min_cost_per_tile
        for dist in self._landmark_dists:
            da = dist[node]
            db = dist[target]
            if np.isfinite(da) and np.isfinite(db):
                diff = abs(da - db)
                if diff > bound:
                    bound = diff
        return float(bound)

    def combined_lower_bound(self, node: int, target: int, weight: float) -> float:
        """Lower bound on ``cost + weight * delay`` of any node-target path."""
        return self.cost_lower_bound_between(node, target) + weight * self.delay_lower_bound(
            node, target
        )

    # -------------------------------------------------- multi-target bounds
    def nearest_target_l1(self, node: int, targets: Sequence[int], exact_limit: int = 8) -> float:
        """L1 distance from ``node`` to the nearest target (or a lower bound).

        For at most ``exact_limit`` targets the exact minimum is computed;
        for larger sets the (cheaper, still admissible) distance to the
        targets' planar bounding box is returned.
        """
        if not targets:
            return 0.0
        ax, ay = self.graph.node_planar(node)
        if len(targets) <= exact_limit:
            best = None
            for t in targets:
                bx, by = self.graph.node_planar(t)
                d = abs(ax - bx) + abs(ay - by)
                if best is None or d < best:
                    best = d
                    if best == 0:
                        break
            return float(best or 0)
        xs = []
        ys = []
        for t in targets:
            bx, by = self.graph.node_planar(t)
            xs.append(bx)
            ys.append(by)
        dx = max(0, min(xs) - ax, ax - max(xs))
        dy = max(0, min(ys) - ay, ay - max(ys))
        return float(dx + dy)

    def multi_target_potential(
        self, node: int, targets: Sequence[int], weight: float, exact_limit: int = 8
    ) -> float:
        """Admissible potential ``h(node)`` towards a set of targets.

        Lower bounds ``min_t [cost(node, t) + weight * delay(node, t)]`` by
        the nearest-target L1 distance times the cheapest per-tile rate.
        """
        l1 = self.nearest_target_l1(node, targets, exact_limit)
        return l1 * (self.min_cost_per_tile + weight * self.fastest_delay_per_tile)
