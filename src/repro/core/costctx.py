"""Batch-level oracle cost context.

One re-route batch prices a single cost vector against one congestion
snapshot and then routes every net of the batch against it.  Historically
each net re-derived the per-batch artefacts on its own:

* ``instance.cost.tolist()`` / ``instance.delay.tolist()`` inside the
  cost-distance solver (two O(edges) conversions per net),
* a fresh :class:`~repro.core.future_cost.FutureCostEstimator` (an
  O(edges) min-scan per net, plus landmark Dijkstras when enabled), and
* the non-negativity validation scans in
  :meth:`~repro.core.instance.SteinerInstance.__post_init__`.

:class:`OracleCostContext` hoists all of these to batch level: the engine
(or an executor worker) builds one context per (costs, delay) pair and the
per-net fast paths activate only under an *identity* check (``cost is
ctx.cost``), so a context can never be silently applied to the wrong
vector.  Every derived value is computed lazily, at most once, and is
bit-identical to what the per-net path would have produced -- the context
is a pure cache, never a semantic change.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.grid.graph import RoutingGraph

__all__ = ["OracleCostContext"]


class OracleCostContext:
    """Shared per-batch artefacts derived from one priced cost vector.

    Parameters
    ----------
    graph:
        The routing graph the costs belong to.
    cost:
        The batch's congestion-priced cost vector ``c(e)``.  The context
        holds a reference (contiguous float64; no copy when already so) and
        derived values are memoised against this exact array object.
    delay:
        Optional static delay vector ``d(e)`` shared by the batch.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        cost: np.ndarray,
        delay: Optional[np.ndarray] = None,
    ) -> None:
        self.graph = graph
        self.cost = np.ascontiguousarray(cost, dtype=np.float64)
        self.delay = None if delay is None else np.ascontiguousarray(delay, dtype=np.float64)
        self._cost_list: Optional[List[float]] = None
        self._delay_list: Optional[List[float]] = None
        self._cost_floor: Optional[float] = None
        self._estimators: Dict[int, object] = {}
        self._validated = False

    # -------------------------------------------------------------- caches
    def cost_list(self) -> List[float]:
        """``cost.tolist()``, computed once per batch."""
        if self._cost_list is None:
            self._cost_list = self.cost.tolist()
        return self._cost_list

    def delay_list(self) -> List[float]:
        """``delay.tolist()``, computed once per batch."""
        if self.delay is None:
            raise ValueError("context has no delay vector")
        if self._delay_list is None:
            self._delay_list = self.delay.tolist()
        return self._delay_list

    def cost_floor(self) -> float:
        """Minimum cost over routing (non-via) edges, or 0.0 without any.

        Matches :meth:`repro.engine.cache.RerouteCache.global_cost_floor`
        and the ``min_cost_per_tile`` of a
        :class:`~repro.core.future_cost.FutureCostEstimator` built on this
        vector, so all three consumers agree bit-exactly.
        """
        if self._cost_floor is None:
            routing = ~self.graph.edge_is_via
            if np.any(routing):
                self._cost_floor = float(np.min(self.cost[routing]))
            else:
                self._cost_floor = 0.0
        return self._cost_floor

    def estimator(self, num_landmarks: int):
        """A :class:`FutureCostEstimator` over this cost vector, memoised.

        The estimator is immutable after construction and a pure function
        of ``(graph, cost, num_landmarks)`` (landmark selection is seeded),
        so sharing one across all nets of a batch is bit-identical to the
        per-net construction it replaces.
        """
        est = self._estimators.get(num_landmarks)
        if est is None:
            from repro.core.future_cost import FutureCostEstimator

            est = FutureCostEstimator(
                self.graph,
                cost_lower_bound=self.cost,
                num_landmarks=num_landmarks,
            )
            self._estimators[num_landmarks] = est
        return est

    def inherit(self, prev: "OracleCostContext") -> None:
        """Seed memoised values from the previous batch's context.

        Consecutive batches of one engine round share the delay vector (same
        object) and differ in cost only on the edges the previous batch's
        trees touched, so the expensive ``tolist`` materialisations can be
        carried forward instead of rebuilt:

        * the delay list is shared outright when ``prev`` memoised it for
          the identical array (read-only by contract), and
        * the cost list is copied from ``prev`` and patched at the changed
          indices when few enough edges moved -- entry-for-entry the result
          equals ``cost.tolist()`` exactly (unchanged entries are equal by
          definition, changed ones are read from this context's array).
        """
        if prev.delay is self.delay and prev._delay_list is not None:
            self._delay_list = prev._delay_list
        if (
            prev._cost_list is not None
            and self.cost.shape == prev.cost.shape
        ):
            changed = np.flatnonzero(prev.cost != self.cost)
            if changed.size <= self.cost.size // 8:
                patched = prev._cost_list.copy()
                for index, value in zip(changed.tolist(), self.cost[changed].tolist()):
                    patched[index] = value
                self._cost_list = patched

    def validate(self) -> None:
        """The instance non-negativity scans, run once per batch.

        Raises the same ``ValueError`` as
        :meth:`SteinerInstance.__post_init__` would for a negative cost or
        delay entry.
        """
        if self._validated:
            return
        if np.any(self.cost < 0) or (self.delay is not None and np.any(self.delay < 0)):
            raise ValueError("edge costs and delays must be non-negative")
        self._validated = True

    # -------------------------------------------------------------- guards
    def covers(self, cost: np.ndarray, delay: Optional[np.ndarray] = None) -> bool:
        """True when this context's arrays are the *same objects* as given.

        Identity (not equality) keeps the guard O(1) and makes it
        impossible to reuse memoised artefacts against a different vector.
        """
        if cost is not self.cost:
            return False
        return delay is None or delay is self.delay
