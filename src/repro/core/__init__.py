"""Core cost-distance Steiner tree library (the paper's contribution).

The central entry point is :class:`repro.core.cost_distance.CostDistanceSolver`
which implements Algorithm 1 of the paper together with the practical
enhancements of Section III.  Supporting modules:

* :mod:`repro.core.instance` -- the :class:`SteinerInstance` problem object
  shared by all Steiner tree algorithms (cost-distance and baselines alike).
* :mod:`repro.core.bifurcation` -- the bifurcation delay penalty model
  (``dbif``, ``eta``, the ``beta`` merge penalty and the ``lambda`` split).
* :mod:`repro.core.tree` -- embedded Steiner trees and validity checks.
* :mod:`repro.core.objective` -- evaluation of the cost-distance objective
  (paper Eq. (1) with the delay model of Eq. (3)).
* :mod:`repro.core.heap` -- addressable and two-level heaps used by the
  simultaneous Dijkstra searches.
* :mod:`repro.core.shortest_path` -- generic Dijkstra / multi-source Dijkstra
  over the routing graph (used by the baselines' embedding and by landmarks).
* :mod:`repro.core.future_cost` -- admissible lower bounds (landmarks + L1
  delay bounds) for the goal-oriented searches.
"""

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.tree import EmbeddedTree
from repro.core.objective import ObjectiveBreakdown, evaluate_tree
from repro.core.cost_distance import CostDistanceConfig, CostDistanceSolver

__all__ = [
    "BifurcationModel",
    "SteinerInstance",
    "EmbeddedTree",
    "ObjectiveBreakdown",
    "evaluate_tree",
    "CostDistanceConfig",
    "CostDistanceSolver",
]
