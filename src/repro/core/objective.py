"""Evaluation of the cost-distance objective.

The objective of the paper (Eq. (1) with the bifurcation-penalised delay
model of Eq. (3)) is

    cost(T) = sum_{e in T} c(e)
            + sum_{t in S} w(t) * sum_{e=(u,v) on the r-t path} (d(e) + lambda_v * dbif)

where ``lambda_v`` distributes the bifurcation penalty at each branching
according to the subtree delay weights (Eq. (2)).

Every Steiner tree algorithm in this library is evaluated through
:func:`evaluate_tree`, so the relative comparisons of paper Tables I/II use a
single consistent metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.core.instance import SteinerInstance
from repro.core.tree import EmbeddedTree

__all__ = ["ObjectiveBreakdown", "evaluate_tree", "prune_dangling_branches"]


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """The components of the cost-distance objective for one tree.

    Attributes
    ----------
    total:
        The full objective ``connection_cost + weighted_delay_cost``.
    connection_cost:
        ``sum_{e in T} c(e)``.
    weighted_delay_cost:
        ``sum_t w(t) * delay(r, t)`` including bifurcation penalties.
    sink_delays:
        Root-to-sink delay per sink (instance order), including penalties.
    wire_length:
        Total routed wire length of the tree.
    via_count:
        Number of vias used.
    num_bifurcations:
        Number of binary branchings counted by the delay model (a ``k``-way
        branching counts as ``k - 1``).
    method:
        Name of the algorithm that produced the tree.
    """

    total: float
    connection_cost: float
    weighted_delay_cost: float
    sink_delays: Tuple[float, ...]
    wire_length: float
    via_count: int
    num_bifurcations: int
    method: str = ""


def prune_dangling_branches(tree: EmbeddedTree) -> EmbeddedTree:
    """Remove tree branches that do not lead to any terminal.

    Heuristic constructions occasionally leave dead-end paths behind (for
    example when a path search overshoots a connection point).  Such edges
    only add congestion cost, so pruning them never hurts the objective.
    """
    terminals: Set[int] = {tree.root, *tree.sinks}
    adj = tree.adjacency()
    degree = {node: len(incident) for node, incident in adj.items()}
    removed: Set[int] = set()
    # Iteratively peel non-terminal leaves.
    leaves = [node for node, deg in degree.items() if deg == 1 and node not in terminals]
    while leaves:
        leaf = leaves.pop()
        for edge, other in adj[leaf]:
            if edge in removed:
                continue
            removed.add(edge)
            degree[leaf] -= 1
            degree[other] -= 1
            if degree[other] == 1 and other not in terminals:
                leaves.append(other)
    if not removed:
        return tree
    kept = tuple(e for e in tree.edges if e not in removed)
    return EmbeddedTree(tree.graph, tree.root, tree.sinks, kept, tree.method)


def evaluate_tree(instance: SteinerInstance, tree: EmbeddedTree) -> ObjectiveBreakdown:
    """Evaluate the cost-distance objective of ``tree`` on ``instance``.

    The tree must span the instance's root and sinks; a :class:`ValueError`
    is raised otherwise (via :meth:`EmbeddedTree.arborescence`).
    """
    arb = tree.arborescence()
    missing = [s for s in instance.sinks if s not in set(arb.order)]
    if missing:
        raise ValueError(f"tree does not reach instance sinks {missing}")

    # Total sink delay weight located at each graph node.
    node_sink_weight: Dict[int, float] = {}
    for sink, weight in zip(instance.sinks, instance.weights):
        node_sink_weight[sink] = node_sink_weight.get(sink, 0.0) + weight

    # Subtree delay weights, children processed before parents.
    subtree_weight: Dict[int, float] = {}
    for node in reversed(arb.order):
        weight = node_sink_weight.get(node, 0.0)
        for child in arb.children.get(node, []):
            weight += subtree_weight[child]
        subtree_weight[node] = weight

    # Bifurcation penalties per child edge.
    model = instance.bifurcation
    extra_delay: Dict[int, float] = {}
    num_bifurcations = 0
    for node in arb.order:
        children = arb.children.get(node, [])
        if len(children) >= 2:
            num_bifurcations += len(children) - 1
        if len(children) >= 2 and model.enabled:
            penalties = model.branch_penalties([subtree_weight[c] for c in children])
            for child, penalty in zip(children, penalties):
                extra_delay[child] = penalty
        else:
            for child in children:
                extra_delay[child] = 0.0

    # Root-to-node delays.
    delay = instance.delay
    node_delay: Dict[int, float] = {arb.root: 0.0}
    for node in arb.order:
        if node == arb.root:
            continue
        parent = arb.parent_node[node]
        edge = arb.parent_edge[node]
        node_delay[node] = node_delay[parent] + float(delay[edge]) + extra_delay.get(node, 0.0)

    sink_delays = tuple(node_delay[s] for s in instance.sinks)
    weighted_delay_cost = float(
        sum(w * d for w, d in zip(instance.weights, sink_delays))
    )
    connection_cost = tree.congestion_cost(instance.cost)

    return ObjectiveBreakdown(
        total=connection_cost + weighted_delay_cost,
        connection_cost=connection_cost,
        weighted_delay_cost=weighted_delay_cost,
        sink_delays=sink_delays,
        wire_length=tree.wire_length(),
        via_count=tree.via_count(),
        num_bifurcations=num_bifurcations,
        method=tree.method,
    )
