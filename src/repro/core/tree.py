"""Embedded Steiner trees.

An :class:`EmbeddedTree` is the result of any Steiner tree oracle: a set of
routing-graph edges that connects the root to every sink of an instance.  The
class offers structural queries (wire length, via count, arborescence view
from the root) and a validator used extensively by the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.graph import RoutingGraph

__all__ = ["Arborescence", "EmbeddedTree"]


@dataclass
class Arborescence:
    """A rooted view of an embedded tree.

    Attributes
    ----------
    root:
        The root graph node.
    parent_node / parent_edge:
        For every non-root tree node, its parent node and the graph edge
        towards the parent.
    children:
        For every tree node, the list of child nodes.
    order:
        Tree nodes in BFS order from the root (root first).
    """

    root: int
    parent_node: Dict[int, int]
    parent_edge: Dict[int, int]
    children: Dict[int, List[int]]
    order: List[int]

    def path_to_root(self, node: int) -> List[int]:
        """Graph edges on the path from ``node`` up to the root."""
        edges: List[int] = []
        current = node
        while current != self.root:
            edges.append(self.parent_edge[current])
            current = self.parent_node[current]
        return edges

    def subtree_nodes(self, node: int) -> List[int]:
        """All nodes in the subtree rooted at ``node`` (including itself)."""
        result: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children.get(current, []))
        return result


@dataclass(frozen=True)
class EmbeddedTree:
    """A Steiner tree embedded into the routing graph.

    Attributes
    ----------
    graph:
        The routing graph the tree lives in.
    root:
        Graph node of the root terminal.
    sinks:
        Graph nodes of the sinks, in instance order.
    edges:
        Graph edge indices forming the tree (each at most once).
    method:
        Name of the algorithm that produced the tree (``"CD"``, ``"L1"``,
        ``"SL"``, ``"PD"``, ...).
    """

    graph: RoutingGraph
    root: int
    sinks: Tuple[int, ...]
    edges: Tuple[int, ...]
    method: str = ""

    # ------------------------------------------------------------ structure
    def node_set(self) -> Set[int]:
        """All graph nodes touched by the tree (terminals included)."""
        nodes: Set[int] = {self.root}
        nodes.update(self.sinks)
        for e in self.edges:
            nodes.add(int(self.graph.edge_u[e]))
            nodes.add(int(self.graph.edge_v[e]))
        return nodes

    def adjacency(self) -> Dict[int, List[Tuple[int, int]]]:
        """Adjacency ``node -> [(edge, other_node), ...]`` restricted to the tree."""
        adj: Dict[int, List[Tuple[int, int]]] = {}
        for e in self.edges:
            u = int(self.graph.edge_u[e])
            v = int(self.graph.edge_v[e])
            adj.setdefault(u, []).append((e, v))
            adj.setdefault(v, []).append((e, u))
        adj.setdefault(self.root, [])
        for s in self.sinks:
            adj.setdefault(s, [])
        return adj

    def arborescence(self) -> Arborescence:
        """Root the tree at ``root`` and return the resulting arborescence.

        Raises
        ------
        ValueError
            If the edge set is not connected from the root or contains a
            cycle (i.e. it is not a tree containing all terminals).
        """
        adj = self.adjacency()
        parent_node: Dict[int, int] = {}
        parent_edge: Dict[int, int] = {}
        children: Dict[int, List[int]] = {self.root: []}
        order: List[int] = [self.root]
        visited: Set[int] = {self.root}
        queue: deque[int] = deque([self.root])
        used_edges = 0
        while queue:
            node = queue.popleft()
            for edge, other in adj.get(node, []):
                if other in visited:
                    if parent_edge.get(node) != edge:
                        # A second way to reach an already visited node.
                        raise ValueError("embedded tree contains a cycle")
                    continue
                visited.add(other)
                parent_node[other] = node
                parent_edge[other] = edge
                children.setdefault(node, []).append(other)
                children.setdefault(other, [])
                order.append(other)
                used_edges += 1
                queue.append(other)
        if used_edges != len(self.edges):
            raise ValueError("embedded tree is disconnected or contains a cycle")
        missing = [s for s in self.sinks if s not in visited]
        if missing:
            raise ValueError(f"embedded tree does not reach sinks {missing}")
        return Arborescence(self.root, parent_node, parent_edge, children, order)

    # -------------------------------------------------------------- metrics
    def edges_array(self) -> "np.ndarray":
        """The tree's edge indices as a cached contiguous int64 array.

        The array backs every metric fancy-index below; it is created on
        first use and never mutated (the dataclass is frozen, so the cache
        is attached via ``object.__setattr__``).
        """
        try:
            return self._edges_array
        except AttributeError:
            arr = np.asarray(self.edges, dtype=np.int64)
            arr.setflags(write=False)
            object.__setattr__(self, "_edges_array", arr)
            return arr

    def wire_length(self) -> float:
        """Total routed wire length (sum of edge lengths, vias contribute 0)."""
        if not self.edges:
            return 0.0
        return float(self.graph.edge_length[self.edges_array()].sum())

    def via_count(self) -> int:
        """Number of via edges used by the tree."""
        if not self.edges:
            return 0
        return int(np.count_nonzero(self.graph.edge_is_via[self.edges_array()]))

    def congestion_cost(self, cost: Sequence[float]) -> float:
        """Total connection cost of the tree under the cost vector ``cost``."""
        if not self.edges:
            return 0.0
        return float(np.asarray(cost, dtype=np.float64)[self.edges_array()].sum())

    def num_branch_nodes(self) -> int:
        """Number of tree nodes with degree at least 3 (branching points)."""
        adj = self.adjacency()
        return sum(1 for node, incident in adj.items() if len(incident) >= 3)

    # ----------------------------------------------------------- validation
    def validate(self, root: Optional[int] = None, sinks: Optional[Sequence[int]] = None) -> None:
        """Check that the edge set forms a tree spanning root and sinks.

        Raises :class:`ValueError` when the tree is malformed.  ``root`` and
        ``sinks`` default to the tree's own terminals, but an instance's
        terminals can be passed to validate against the original problem.
        """
        root = self.root if root is None else root
        sinks = self.sinks if sinks is None else sinks
        if root != self.root:
            raise ValueError("tree root differs from instance root")
        if set(sinks) - set(self.sinks):
            raise ValueError("tree is missing instance sinks")
        if len(set(self.edges)) != len(self.edges):
            raise ValueError("tree contains duplicate edges")
        self.arborescence()

    def with_method(self, method: str) -> "EmbeddedTree":
        """A copy of the tree tagged with a different method name."""
        return EmbeddedTree(self.graph, self.root, self.sinks, self.edges, method)

    def __len__(self) -> int:
        return len(self.edges)
