"""The cost-distance Steiner tree problem instance.

A :class:`SteinerInstance` bundles everything a Steiner tree oracle needs for
one net: the routing graph, the root and sink positions (graph nodes), the
sink delay weights, the current per-edge congestion cost vector ``c(e)``, the
static per-edge delay vector ``d(e)``, and the bifurcation penalty model.

Both the cost-distance algorithm and every baseline consume this object, so
the apples-to-apples comparison of paper Tables I/II and the router's oracle
calls share one code path.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.bifurcation import BifurcationModel
from repro.grid.geometry import GridPoint
from repro.grid.graph import RoutingGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.costctx import OracleCostContext

__all__ = ["SteinerInstance", "instance_signature"]


def instance_signature(
    root: int,
    sinks: Sequence[int],
    weights: Sequence[float],
    cost: np.ndarray,
    bifurcation: BifurcationModel,
    region_edges: Optional[np.ndarray] = None,
    extras: Sequence[float] = (),
    cost_digest: Optional[bytes] = None,
) -> bytes:
    """A stable digest of everything that determines one net's Steiner tree.

    The digest covers the terminals, the sink delay weights, the bifurcation
    parameters, and the congestion cost vector -- either in full or, when
    ``region_edges`` is given, restricted to those edges (plus any scalar
    ``extras`` such as global cost summaries feeding A* potentials).  Two
    routing attempts of a net with equal signatures (and equal RNG streams)
    produce the same tree, which is what the incremental re-route cache of
    :mod:`repro.engine.cache` exploits to skip unchanged nets.

    ``cost_digest`` is an optional pre-computed digest of the *full* cost
    vector; passing it lets callers signing many nets against one shared
    vector hash it once instead of once per net.  It is only consulted when
    ``region_edges`` is ``None`` (full-vector scope).
    """
    hasher = hashlib.sha1()
    hasher.update(struct.pack("<q", root))
    hasher.update(np.asarray(list(sinks), dtype=np.int64).tobytes())
    hasher.update(np.asarray(list(weights), dtype=np.float64).tobytes())
    hasher.update(struct.pack("<dd?", bifurcation.dbif, bifurcation.eta, bifurcation.enabled))
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    if region_edges is not None:
        hasher.update(np.ascontiguousarray(cost[region_edges]).tobytes())
    elif cost_digest is not None:
        hasher.update(cost_digest)
    else:
        hasher.update(cost.tobytes())
    if extras:
        hasher.update(np.asarray(list(extras), dtype=np.float64).tobytes())
    return hasher.digest()


@dataclass
class SteinerInstance:
    """One cost-distance Steiner tree problem.

    Attributes
    ----------
    graph:
        The 3D global routing graph.
    root:
        Graph node index of the net's source (root) pin.
    sinks:
        Graph node indices of the sink pins, one per sink (duplicates are
        allowed -- two sinks may share a tile).
    weights:
        Delay weight ``w(t)`` per sink, same order as ``sinks``.  These arise
        from the Lagrangean relaxation of the timing constraints.
    cost:
        Per-edge congestion cost vector ``c(e)`` (length ``graph.num_edges``).
    delay:
        Per-edge delay vector ``d(e)`` (length ``graph.num_edges``).
    bifurcation:
        The bifurcation penalty model (``dbif``, ``eta``).
    name:
        Optional identifier used in reports.
    context:
        Optional :class:`~repro.core.costctx.OracleCostContext` sharing
        batch-level artefacts (list conversions, future-cost estimators,
        validation) across every net routed against the same cost vector.
        Only consulted when its arrays are identical (``is``) to this
        instance's ``cost``/``delay``; it never changes results.
    """

    graph: RoutingGraph
    root: int
    sinks: List[int]
    weights: List[float]
    cost: np.ndarray
    delay: np.ndarray
    bifurcation: BifurcationModel = field(default_factory=BifurcationModel.disabled)
    name: str = ""
    context: Optional["OracleCostContext"] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.sinks = list(self.sinks)
        self.weights = [float(w) for w in self.weights]
        self.cost = np.asarray(self.cost, dtype=np.float64)
        self.delay = np.asarray(self.delay, dtype=np.float64)
        if len(self.sinks) != len(self.weights):
            raise ValueError("sinks and weights must have the same length")
        if len(self.cost) != self.graph.num_edges or len(self.delay) != self.graph.num_edges:
            raise ValueError("cost/delay vectors must have one entry per graph edge")
        ctx = self.context
        if ctx is not None and ctx.covers(self.cost, self.delay):
            # Batch-level validation: same scans, run once per cost vector.
            ctx.validate()
        else:
            self.context = None
            if np.any(self.cost < 0) or np.any(self.delay < 0):
                raise ValueError("edge costs and delays must be non-negative")
        if any(w < 0 for w in self.weights):
            raise ValueError("sink delay weights must be non-negative")
        nodes = [self.root] + self.sinks
        for node in nodes:
            if not 0 <= node < self.graph.num_nodes:
                raise ValueError(f"terminal node {node} outside the graph")

    # ------------------------------------------------------------- queries
    @property
    def num_sinks(self) -> int:
        """Number of sinks ``|S|``."""
        return len(self.sinks)

    @property
    def num_terminals(self) -> int:
        """Number of terminals ``t = |S| + 1`` (sinks plus root)."""
        return len(self.sinks) + 1

    @property
    def total_weight(self) -> float:
        """Sum of all sink delay weights."""
        return float(sum(self.weights))

    def root_point(self) -> GridPoint:
        """The :class:`GridPoint` of the root."""
        return self.graph.node_point(self.root)

    def sink_points(self) -> List[GridPoint]:
        """The :class:`GridPoint` of each sink, in sink order."""
        return [self.graph.node_point(s) for s in self.sinks]

    def terminal_nodes(self) -> List[int]:
        """Root node followed by all sink nodes."""
        return [self.root] + list(self.sinks)

    # --------------------------------------------------------- persistence
    def signature(
        self,
        region_edges: Optional[np.ndarray] = None,
        extras: Sequence[float] = (),
    ) -> bytes:
        """Digest of the tree-determining inputs (see :func:`instance_signature`)."""
        return instance_signature(
            self.root,
            self.sinks,
            self.weights,
            self.cost,
            self.bifurcation,
            region_edges=region_edges,
            extras=extras,
        )

    @classmethod
    def from_payload(
        cls,
        graph: RoutingGraph,
        payload: Dict[str, object],
        delay: Optional[np.ndarray] = None,
        context: Optional["OracleCostContext"] = None,
    ) -> "SteinerInstance":
        """Build an instance from a picklable, graph-free payload dict.

        The payload carries the per-net, per-batch data (``root``,
        ``sinks``, ``weights``, ``cost``, ``bifurcation``, optional
        ``name``); the routing graph and the graph-static delay vector are
        supplied by the caller, which lets executor workers hold them as
        shared read-only state.  The production producer of these dicts is
        :meth:`repro.engine.executor.NetTask.payload`.
        """
        return cls(
            graph=graph,
            root=payload["root"],  # type: ignore[arg-type]
            sinks=list(payload["sinks"]),  # type: ignore[arg-type]
            weights=list(payload["weights"]),  # type: ignore[arg-type]
            cost=payload["cost"],  # type: ignore[arg-type]
            delay=graph.delay_array() if delay is None else delay,
            bifurcation=payload["bifurcation"],  # type: ignore[arg-type]
            name=str(payload.get("name", "")),
            context=context,
        )

    # ---------------------------------------------------------- derivation
    def with_bifurcation(self, bifurcation: BifurcationModel) -> "SteinerInstance":
        """A copy of this instance with a different bifurcation model."""
        return SteinerInstance(
            graph=self.graph,
            root=self.root,
            sinks=list(self.sinks),
            weights=list(self.weights),
            cost=self.cost,
            delay=self.delay,
            bifurcation=bifurcation,
            name=self.name,
            context=self.context,
        )

    def with_costs(self, cost: np.ndarray) -> "SteinerInstance":
        """A copy of this instance with a different congestion cost vector."""
        return SteinerInstance(
            graph=self.graph,
            root=self.root,
            sinks=list(self.sinks),
            weights=list(self.weights),
            cost=cost,
            delay=self.delay,
            bifurcation=self.bifurcation,
            name=self.name,
        )
