"""Cost-Distance Steiner Trees for Timing-Constrained Global Routing.

A from-scratch Python reproduction of Held & Perner (DAC 2025,
arXiv:2503.04419): the fast O(log t)-approximate cost-distance Steiner tree
algorithm with bifurcation delay penalties, the topology-first baselines it
is compared against (L1 / shallow-light / Prim-Dijkstra with optimal graph
embedding), and the timing-constrained global routing flow used for the
evaluation.

Typical usage::

    from repro import build_grid_graph, SteinerInstance, CostDistanceSolver
    from repro import BifurcationModel, evaluate_tree

    graph = build_grid_graph(16, 16, num_layers=8)
    instance = SteinerInstance(
        graph, root, sinks, weights,
        cost=graph.base_cost_array(), delay=graph.delay_array(),
        bifurcation=BifurcationModel(dbif=3.0, eta=0.25),
    )
    tree = CostDistanceSolver().build(instance)
    print(evaluate_tree(instance, tree).total)

Nets are routed through the batch-routing engine (:mod:`repro.engine`),
which schedules them into congestion-snapshot batches, executes each batch
on a pluggable backend (in-process ``serial`` or ``multiprocessing``-based
``process``), and can skip unchanged nets in later rip-up rounds via an
incremental re-route cache::

    from repro import EngineConfig, GlobalRouterConfig

    config = GlobalRouterConfig(
        engine=EngineConfig(backend="process", reroute_cache=True)
    )

See ``DESIGN.md`` (repository root) for the package and subsystem
inventory; the reproduced tables and figures live under
``benchmarks/results/``.
"""

from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceConfig, CostDistanceSolver
from repro.core.instance import SteinerInstance
from repro.core.objective import ObjectiveBreakdown, evaluate_tree
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.grid.graph import RoutingGraph, build_grid_graph
from repro.grid.layers import LayerStack, default_layer_stack
from repro.grid.congestion import CongestionMap, ace, ace4
from repro.timing.delay import LinearDelayModel
from repro.timing.repeater import BufferParameters, RepeaterChainModel
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.baselines.shallow_light import ShallowLightOracle
from repro.baselines.prim_dijkstra import PrimDijkstraOracle
from repro.baselines.embedding import TopologyEmbedder
from repro.router.netlist import Net, Netlist, Pin
from repro.router.router import GlobalRouter, GlobalRouterConfig
from repro.engine import (
    BatchExecutor,
    EngineConfig,
    NetScheduler,
    ProcessExecutor,
    RerouteCache,
    RoutingEngine,
    SerialExecutor,
    derive_net_rng,
    derive_net_rng_for_name,
)
from repro.grid.partition import RegionPartition, partition_grid
from repro.shard import ShardCoordinator, ShardStats
from repro.instances.chips import CHIP_SUITE, ChipSpec, build_chip, large_chip
from repro.instances.generator import generate_netlist, generate_steiner_instances

__version__ = "1.0.0"

__all__ = [
    "BifurcationModel",
    "CostDistanceConfig",
    "CostDistanceSolver",
    "SteinerInstance",
    "ObjectiveBreakdown",
    "evaluate_tree",
    "SteinerOracle",
    "EmbeddedTree",
    "RoutingGraph",
    "build_grid_graph",
    "LayerStack",
    "default_layer_stack",
    "CongestionMap",
    "ace",
    "ace4",
    "LinearDelayModel",
    "BufferParameters",
    "RepeaterChainModel",
    "RectilinearSteinerOracle",
    "ShallowLightOracle",
    "PrimDijkstraOracle",
    "TopologyEmbedder",
    "Net",
    "Netlist",
    "Pin",
    "GlobalRouter",
    "GlobalRouterConfig",
    "EngineConfig",
    "RoutingEngine",
    "NetScheduler",
    "BatchExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "RerouteCache",
    "derive_net_rng",
    "derive_net_rng_for_name",
    "RegionPartition",
    "partition_grid",
    "ShardCoordinator",
    "ShardStats",
    "CHIP_SUITE",
    "ChipSpec",
    "build_chip",
    "large_chip",
    "generate_netlist",
    "generate_steiner_instances",
    "__version__",
]
