"""3D global routing graph substrate.

This package provides the global routing graph used by every Steiner tree
algorithm in :mod:`repro`:

* :mod:`repro.grid.geometry` -- grid points, L1 distances, Hanan grids.
* :mod:`repro.grid.layers` -- metal layer stack and wire type definitions
  with per-layer RC parameters in a 5nm-class technology.
* :mod:`repro.grid.graph` -- the 3D grid graph with parallel edges per wire
  type, vias between adjacent layers, and per-edge cost/delay attributes.
* :mod:`repro.grid.congestion` -- edge capacity/usage tracking, congestion
  pricing and the ACE / ACE4 congestion metrics.
* :mod:`repro.grid.partition` -- rectangular region partitions and
  interior/seam net classification for multi-region (sharded) routing.
"""

from repro.grid.geometry import (
    BoundingBox,
    GridPoint,
    l1_distance,
    bounding_box,
    hanan_grid,
)
from repro.grid.layers import Layer, WireType, LayerStack, default_layer_stack
from repro.grid.graph import RoutingGraph, Edge, build_grid_graph
from repro.grid.congestion import CongestionMap, ace, ace4
from repro.grid.partition import (
    NetClassification,
    Region,
    RegionPartition,
    partition_grid,
)

__all__ = [
    "BoundingBox",
    "GridPoint",
    "l1_distance",
    "bounding_box",
    "hanan_grid",
    "NetClassification",
    "Region",
    "RegionPartition",
    "partition_grid",
    "Layer",
    "WireType",
    "LayerStack",
    "default_layer_stack",
    "RoutingGraph",
    "Edge",
    "build_grid_graph",
    "CongestionMap",
    "ace",
    "ace4",
]
