"""Region partitioning for multi-region (sharded) global routing.

Divide-and-conquer routing splits the chip's planar tile grid into K
rectangular regions, routes nets whose pins stay inside one region as
independent per-region subproblems, and reconciles only at the region
boundaries: nets whose bounding box touches two or more regions -- the
*seam-crossing* nets -- are routed in a global pass against congestion
stitched together from the per-region results.  This module provides the
static part of that decomposition:

* :func:`partition_grid` cuts an ``nx x ny`` grid into a ``kx x ky`` mesh of
  :class:`Region` rectangles (all layers; global routing congestion is a
  planar phenomenon, so regions are planar prisms),
* :class:`RegionPartition` answers containment queries, and
* :meth:`RegionPartition.classify_nets` splits a netlist into per-region
  interior index lists plus the seam list.

Everything here is pure geometry over static inputs, so a partition and its
classification are fully deterministic -- the shard coordinator's
reproducibility contract starts here.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.grid.geometry import BoundingBox, bounding_box

__all__ = [
    "Region",
    "NetClassification",
    "RegionPartition",
    "balanced_mesh",
    "partition_grid",
]


@dataclass(frozen=True)
class Region:
    """One rectangular region of a partition (all layers of the prism)."""

    index: int
    box: BoundingBox

    @property
    def width(self) -> int:
        return self.box.xhi - self.box.xlo + 1

    @property
    def height(self) -> int:
        return self.box.yhi - self.box.ylo + 1


@dataclass
class NetClassification:
    """Outcome of classifying a netlist against a partition.

    ``interior[r]`` holds the indices of nets confined to region ``r``;
    ``seam`` the indices of nets spanning two or more regions.  Together
    they cover every net exactly once.
    """

    interior: List[List[int]] = field(default_factory=list)
    seam: List[int] = field(default_factory=list)

    @property
    def num_interior(self) -> int:
        return sum(len(nets) for nets in self.interior)

    @property
    def num_seam(self) -> int:
        return len(self.seam)


class RegionPartition:
    """A disjoint cover of an ``nx x ny`` tile grid by rectangular regions.

    Use :func:`partition_grid` to construct one; the constructor checks the
    mesh invariants (regions tile the grid row-major along cut lines).
    """

    def __init__(self, nx: int, ny: int, x_cuts: Sequence[int], y_cuts: Sequence[int]) -> None:
        """``x_cuts`` / ``y_cuts`` are ascending boundary sequences starting
        at 0 and ending at ``nx`` / ``ny``; column ``i`` spans tiles
        ``[x_cuts[i], x_cuts[i+1])``."""
        if list(x_cuts) != sorted(set(x_cuts)) or list(y_cuts) != sorted(set(y_cuts)):
            raise ValueError("cut sequences must be strictly ascending")
        if x_cuts[0] != 0 or x_cuts[-1] != nx or y_cuts[0] != 0 or y_cuts[-1] != ny:
            raise ValueError("cut sequences must span the whole grid")
        self.nx = nx
        self.ny = ny
        self.x_cuts = list(x_cuts)
        self.y_cuts = list(y_cuts)
        self.kx = len(self.x_cuts) - 1
        self.ky = len(self.y_cuts) - 1
        self.regions: List[Region] = []
        for row in range(self.ky):
            for col in range(self.kx):
                box = BoundingBox(
                    self.x_cuts[col],
                    self.y_cuts[row],
                    self.x_cuts[col + 1] - 1,
                    self.y_cuts[row + 1] - 1,
                )
                self.regions.append(Region(len(self.regions), box))

    # ------------------------------------------------------------- queries
    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def region_of_tile(self, x: int, y: int) -> int:
        """The region index of tile ``(x, y)``."""
        if not (0 <= x < self.nx and 0 <= y < self.ny):
            raise IndexError(f"tile ({x},{y}) outside the {self.nx}x{self.ny} grid")
        col = bisect_right(self.x_cuts, x) - 1
        row = bisect_right(self.y_cuts, y) - 1
        return row * self.kx + col

    def region_containing(self, box: BoundingBox) -> Optional[int]:
        """The index of the single region containing ``box``, else ``None``."""
        region = self.region_of_tile(box.xlo, box.ylo)
        return region if self.regions[region].box.contains(box) else None

    def covering_box(self, box: BoundingBox) -> BoundingBox:
        """``box`` snapped outward to region-cut boundaries.

        The smallest union of whole regions containing ``box`` -- the
        "super-region" a seam-crossing net can be confined to.  Equals a
        single region's box for interior nets and the full grid for nets
        spanning every cut.
        """
        col_lo = bisect_right(self.x_cuts, box.xlo) - 1
        col_hi = bisect_right(self.x_cuts, box.xhi) - 1
        row_lo = bisect_right(self.y_cuts, box.ylo) - 1
        row_hi = bisect_right(self.y_cuts, box.yhi) - 1
        return BoundingBox(
            self.x_cuts[col_lo],
            self.y_cuts[row_lo],
            self.x_cuts[col_hi + 1] - 1,
            self.y_cuts[row_hi + 1] - 1,
        )

    # -------------------------------------------------------------- nets
    def classify_nets(self, netlist, halo: int = 0) -> NetClassification:
        """Split ``netlist`` into per-region interior lists and the seam list.

        A net is *interior* to a region when its pin bounding box, expanded
        by ``halo`` tiles and clipped to the grid, lies entirely inside the
        region; every other net is *seam-crossing*.  A larger halo trades
        interior coverage for safety margin: interior routes are confined to
        their region, so nets whose pins hug a boundary are better treated
        as seam nets.
        """
        if halo < 0:
            raise ValueError("halo must be non-negative")
        result = NetClassification(interior=[[] for _ in self.regions])
        for net_index, net in enumerate(netlist.nets):
            box = BoundingBox(*bounding_box(p.position for p in net.pins()))
            box = box.expanded(halo, self.nx, self.ny)
            region = self.region_containing(box)
            if region is None:
                result.seam.append(net_index)
            else:
                result.interior[region].append(net_index)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegionPartition({self.nx}x{self.ny} into {self.kx}x{self.ky}, "
            f"{self.num_regions} regions)"
        )


def balanced_mesh(k: int, nx: int, ny: int) -> Tuple[int, int]:
    """The ``(kx, ky)`` factorisation of ``k`` with the squarest regions.

    Among all factor pairs ``kx * ky == k`` with ``kx <= nx`` and
    ``ky <= ny``, picks the one minimising the worst region aspect ratio
    (region width ``nx/kx`` vs height ``ny/ky``).  Raises when ``k`` cannot
    be arranged without zero-width regions.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    best: Optional[Tuple[float, int, int]] = None
    for kx in range(1, k + 1):
        if k % kx:
            continue
        ky = k // kx
        if kx > nx or ky > ny:
            continue
        w, h = nx / kx, ny / ky
        aspect = max(w / h, h / w)
        if best is None or aspect < best[0]:
            best = (aspect, kx, ky)
    if best is None:
        raise ValueError(
            f"cannot split a {nx}x{ny} grid into {k} non-empty rectangular regions"
        )
    return best[1], best[2]


def _even_cuts(extent: int, parts: int) -> List[int]:
    return [round(i * extent / parts) for i in range(parts + 1)]


def partition_grid(nx: int, ny: int, k: int) -> RegionPartition:
    """Partition an ``nx x ny`` grid into ``k`` balanced rectangular regions."""
    kx, ky = balanced_mesh(k, nx, ny)
    return RegionPartition(nx, ny, _even_cuts(nx, kx), _even_cuts(ny, ky))
