"""Planar and 3D grid geometry helpers.

Global routing abstracts the chip area into a coarse grid of *global routing
tiles*.  A :class:`GridPoint` addresses one tile on one metal layer.  The
planar (x, y) part is used by the topology-first baselines (L1 / shallow-light
/ Prim-Dijkstra) which build a tree in the plane before it is embedded into
the 3D graph; the full 3D point is used by the routing graph itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "GridPoint",
    "PlanarPoint",
    "BoundingBox",
    "l1_distance",
    "planar_l1",
    "bounding_box",
    "bounding_box_half_perimeter",
    "hanan_grid",
    "median_point",
]


PlanarPoint = Tuple[int, int]


@dataclass(frozen=True, order=True)
class GridPoint:
    """A point in the 3D global routing grid.

    Attributes
    ----------
    x, y:
        Tile coordinates in the plane (column / row of the global routing
        grid).
    layer:
        Metal layer index, ``0`` is the lowest routable layer.
    """

    x: int
    y: int
    layer: int = 0

    @property
    def planar(self) -> PlanarPoint:
        """The (x, y) projection of the point."""
        return (self.x, self.y)

    def with_layer(self, layer: int) -> "GridPoint":
        """Return a copy of this point on ``layer``."""
        return GridPoint(self.x, self.y, layer)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y},m{self.layer})"


@dataclass(frozen=True)
class BoundingBox:
    """A closed planar tile rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Used by the engine's conflict scheduling, the re-route cache's signature
    regions, and the shard layer's region partitions.
    """

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def overlaps(self, other: "BoundingBox") -> bool:
        """Whether the two rectangles share at least one tile."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    def contains(self, other: "BoundingBox") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def expanded(self, halo: int, nx: int, ny: int) -> "BoundingBox":
        """The box grown by ``halo`` tiles on every side, clipped to the grid."""
        return BoundingBox(
            max(0, self.xlo - halo),
            max(0, self.ylo - halo),
            min(nx - 1, self.xhi + halo),
            min(ny - 1, self.yhi + halo),
        )

    def area(self) -> int:
        return (self.xhi - self.xlo + 1) * (self.yhi - self.ylo + 1)


def l1_distance(a: GridPoint, b: GridPoint) -> int:
    """L1 (Manhattan) distance between the planar projections of two points.

    The layer difference is intentionally *not* part of the distance: the
    linear delay model charges vias separately, and the planar L1 distance is
    the quantity used by the baselines and by the A* future cost.
    """
    return abs(a.x - b.x) + abs(a.y - b.y)


def planar_l1(a: PlanarPoint, b: PlanarPoint) -> int:
    """L1 distance between two planar points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def bounding_box(points: Iterable[GridPoint]) -> Tuple[int, int, int, int]:
    """Return the planar bounding box ``(xmin, ymin, xmax, ymax)``.

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    xs: List[int] = []
    ys: List[int] = []
    for p in points:
        xs.append(p.x)
        ys.append(p.y)
    if not xs:
        raise ValueError("bounding_box() of an empty point set")
    return (min(xs), min(ys), max(xs), max(ys))


def bounding_box_half_perimeter(points: Iterable[GridPoint]) -> int:
    """Half-perimeter wire length (HPWL) of the planar bounding box."""
    xmin, ymin, xmax, ymax = bounding_box(points)
    return (xmax - xmin) + (ymax - ymin)


def hanan_grid(points: Sequence[GridPoint]) -> List[PlanarPoint]:
    """Return the Hanan grid of the planar projections of ``points``.

    The Hanan grid is the set of intersections of horizontal and vertical
    lines through the terminals.  A rectilinear Steiner minimum tree always
    has an optimal solution whose Steiner points lie on the Hanan grid, which
    is why the exact small-net solver in :mod:`repro.baselines.rsmt`
    enumerates candidate Steiner points from it.
    """
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    return [(x, y) for x in xs for y in ys]


def median_point(points: Sequence[GridPoint]) -> PlanarPoint:
    """The coordinate-wise median of the planar projections of ``points``.

    The median minimises the total L1 distance to the given points and is a
    good initial position for a single Steiner point.
    """
    if not points:
        raise ValueError("median_point() of an empty point set")
    xs = sorted(p.x for p in points)
    ys = sorted(p.y for p in points)
    mid = len(xs) // 2
    return (xs[mid], ys[mid])
