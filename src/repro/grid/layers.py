"""Metal layer stack and wire type definitions.

The global routing graph is built from a :class:`LayerStack`.  Each
:class:`Layer` routes in one preferred direction (horizontal or vertical) and
offers one or more :class:`WireType` options -- width/spacing configurations
that trade routing capacity against resistance.  The paper's routing graph
"may have a parallel edge for each wire type that has an individual cost and
delay"; we model exactly that.

Electrical numbers are per global-routing-tile units in a 5nm-class
technology: the absolute values are synthetic (the industrial data is not
public) but the *relative* scaling between thin lower layers and thick upper
layers follows the usual pattern (upper layers are several times less
resistive), which is what drives layer assignment trade-offs in the linear
delay model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["WireType", "Layer", "LayerStack", "default_layer_stack"]


@dataclass(frozen=True)
class WireType:
    """A width/spacing configuration available on a layer.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"1x"`` or ``"2x"``.
    width_factor:
        Wire width relative to the minimum width wire of the layer.  Wider
        wires have proportionally lower resistance.
    spacing_factor:
        Spacing relative to minimum spacing.  Together with the width this
        determines how many routing tracks one wire of this type consumes.
    cap_factor:
        Capacitance per unit length relative to the minimum width wire.
        Wider wires have a slightly larger area capacitance but reduced
        coupling; the net effect is a mild increase.
    """

    name: str
    width_factor: float = 1.0
    spacing_factor: float = 1.0
    cap_factor: float = 1.0

    @property
    def track_usage(self) -> float:
        """Number of minimum-pitch tracks one wire of this type occupies."""
        return 0.5 * (self.width_factor + 1.0) + 0.5 * (self.spacing_factor - 1.0) + 0.5

    def resistance_scale(self) -> float:
        """Resistance relative to the minimum width wire (``1 / width``)."""
        return 1.0 / self.width_factor


@dataclass(frozen=True)
class Layer:
    """One metal layer of the stack.

    Attributes
    ----------
    index:
        Position in the stack, ``0`` is the lowest routable layer.
    name:
        Layer name, e.g. ``"M2"``.
    direction:
        ``"H"`` for horizontal (edges along x) or ``"V"`` for vertical
        (edges along y) preferred routing direction.
    unit_resistance:
        Resistance of a minimum width wire across one global routing tile
        (ohm / tile).
    unit_capacitance:
        Capacitance of a minimum width wire across one tile (fF / tile).
    tracks_per_tile:
        Number of minimum-pitch routing tracks crossing a tile boundary;
        this is the capacity of a routing edge on this layer.
    via_resistance:
        Resistance of a via from this layer to the next layer up (ohm).
    via_capacitance:
        Capacitance of such a via (fF).
    wire_types:
        The wire types available on this layer.  The first entry is the
        default minimum-width wire.
    """

    index: int
    name: str
    direction: str
    unit_resistance: float
    unit_capacitance: float
    tracks_per_tile: int
    via_resistance: float = 4.0
    via_capacitance: float = 0.05
    wire_types: Tuple[WireType, ...] = (WireType("1x"),)

    def __post_init__(self) -> None:
        if self.direction not in ("H", "V"):
            raise ValueError(f"layer direction must be 'H' or 'V', got {self.direction!r}")
        if self.unit_resistance <= 0 or self.unit_capacitance <= 0:
            raise ValueError("layer RC parameters must be positive")
        if self.tracks_per_tile <= 0:
            raise ValueError("tracks_per_tile must be positive")
        if not self.wire_types:
            raise ValueError("a layer needs at least one wire type")

    def wire_rc(self, wire_type: WireType) -> Tuple[float, float]:
        """Per-tile (resistance, capacitance) of ``wire_type`` on this layer."""
        r = self.unit_resistance * wire_type.resistance_scale()
        c = self.unit_capacitance * wire_type.cap_factor
        return r, c


@dataclass
class LayerStack:
    """An ordered stack of routable metal layers."""

    layers: List[Layer] = field(default_factory=list)

    def __post_init__(self) -> None:
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise ValueError(
                    f"layer {layer.name} has index {layer.index}, expected {i}"
                )

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer_by_name(self, name: str) -> Layer:
        """Look up a layer by its name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def wire_options(self) -> List[Tuple[Layer, WireType]]:
        """All (layer, wire type) combinations in the stack."""
        return [(layer, wt) for layer in self.layers for wt in layer.wire_types]

    def truncated(self, num_layers: int) -> "LayerStack":
        """Return a stack consisting of the lowest ``num_layers`` layers.

        Chips in the evaluation use between 7 and 15 metal layers
        (paper Table III); they are modelled as prefixes of the full stack.
        """
        if not 1 <= num_layers <= len(self.layers):
            raise ValueError(
                f"num_layers must be in [1, {len(self.layers)}], got {num_layers}"
            )
        return LayerStack(self.layers[:num_layers])


def default_layer_stack(num_layers: int = 15) -> LayerStack:
    """Build the default 5nm-class layer stack with up to 15 routable layers.

    Lower layers (M1-M4 analogues) are thin and resistive with a single wire
    type.  Intermediate layers add a ``2x`` wide option, and the thick upper
    layers add a ``4x`` option.  Resistance drops by roughly an order of
    magnitude from the bottom to the top of the stack, so fast long-distance
    connections want to be embedded high -- exactly the layer-assignment
    freedom the cost-distance embedding exploits.
    """
    if not 1 <= num_layers <= 15:
        raise ValueError("num_layers must be between 1 and 15")

    specs = []
    # (unit_resistance ohm/tile, unit_capacitance fF/tile, tracks, via_r)
    for i in range(15):
        if i < 4:  # thin local layers
            r, c, tracks, via_r = 36.0 / (1.0 + 0.15 * i), 1.8, 10, 6.0
            wire_types = (WireType("1x"),)
        elif i < 8:  # intermediate layers
            r, c, tracks, via_r = 16.0 / (1.0 + 0.2 * (i - 4)), 1.9, 8, 4.0
            wire_types = (WireType("1x"), WireType("2x", 2.0, 1.5, 1.15))
        elif i < 12:  # semi-global layers
            r, c, tracks, via_r = 6.0 / (1.0 + 0.25 * (i - 8)), 2.0, 6, 3.0
            wire_types = (WireType("1x"), WireType("2x", 2.0, 1.5, 1.15))
        else:  # thick global layers
            r, c, tracks, via_r = 1.6 / (1.0 + 0.3 * (i - 12)), 2.2, 4, 2.0
            wire_types = (
                WireType("1x"),
                WireType("2x", 2.0, 1.5, 1.15),
                WireType("4x", 4.0, 2.0, 1.3),
            )
        direction = "H" if i % 2 == 0 else "V"
        specs.append(
            Layer(
                index=i,
                name=f"M{i + 1}",
                direction=direction,
                unit_resistance=r,
                unit_capacitance=c,
                tracks_per_tile=tracks,
                via_resistance=via_r,
                via_capacitance=0.05,
                wire_types=wire_types,
            )
        )
    return LayerStack(specs).truncated(num_layers)
