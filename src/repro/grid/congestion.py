"""Congestion tracking, pricing, and the ACE / ACE4 metrics.

The router accumulates per-edge *usage* (in routing tracks) as nets are
routed.  Congestion of an edge is ``usage / capacity``.  Two things are
derived from it:

* a congestion-dependent **edge cost** ``c(e)`` handed to the Steiner
  oracles -- the base resource cost of the edge multiplied by a price that
  grows with congestion (the resource-sharing router additionally keeps its
  own multiplicative prices, see :mod:`repro.router.resource_sharing`), and
* the **ACE** routability metric of Wei et al. (TODAES'14): ``ACE(x)`` is
  the average congestion of the ``x``-percent most congested routing edges,
  and ``ACE4`` is the mean of ``ACE(0.5), ACE(1), ACE(2), ACE(5)``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.grid.graph import RoutingGraph

__all__ = ["CongestionMap", "CongestionSnapshot", "ace", "ace4"]


def ace(congestion: Sequence[float], percent: float) -> float:
    """Average congestion of the ``percent``-% most congested edges.

    Parameters
    ----------
    congestion:
        Per-edge congestion values (usage / capacity), as fractions
        (``1.0`` = 100% utilised).
    percent:
        Percentile size, e.g. ``0.5`` for the worst 0.5% of edges.

    Returns
    -------
    float
        The average congestion of the selected edges as a *percentage*
        (the paper reports ACE4 values like ``88.07``).
    """
    if not 0 < percent <= 100:
        raise ValueError("percent must be in (0, 100]")
    values = _as_float_array(congestion)
    if values.size == 0:
        return 0.0
    count = max(1, int(math.ceil(values.size * percent / 100.0)))
    worst = np.sort(values)[-count:]
    return float(np.mean(worst) * 100.0)


def ace4(congestion: Sequence[float]) -> float:
    """The ACE4 metric: mean of ACE(0.5), ACE(1), ACE(2) and ACE(5)."""
    values = _as_float_array(congestion)
    return 0.25 * (ace(values, 0.5) + ace(values, 1.0) + ace(values, 2.0) + ace(values, 5.0))


def _as_float_array(values: Sequence[float]) -> np.ndarray:
    """Coerce a congestion sequence to a float64 ndarray without copying.

    Float64 ndarray input is returned as-is (a no-copy view), so ``ace4``
    materialises the sequence exactly once and the four nested ``ace`` calls
    share it.  Generators and lists are materialised the one required time.
    """
    if isinstance(values, np.ndarray):
        return values.astype(np.float64, copy=False)
    return np.asarray(list(values), dtype=np.float64)


def _edge_index_array(edge_indices: Iterable[int]) -> np.ndarray:
    """Coerce an edge-index iterable to a contiguous int64 array.

    ndarray input is converted without copying when already int64; anything
    else (lists, tuples, generators) is materialised once.
    """
    if isinstance(edge_indices, np.ndarray):
        return edge_indices.astype(np.int64, copy=False)
    if isinstance(edge_indices, (list, tuple)):
        return np.asarray(edge_indices, dtype=np.int64)
    return np.fromiter(edge_indices, dtype=np.int64)


def _priced_edge_costs(
    graph: RoutingGraph,
    usage: np.ndarray,
    overflow_penalty: float,
    threshold: float,
    prices: Optional[np.ndarray],
) -> np.ndarray:
    """The congestion pricing formula shared by live maps and snapshots.

    Keeping this in one place is what guarantees that costs read through a
    :class:`CongestionSnapshot` equal the live :class:`CongestionMap` costs
    for identical usage -- the engine's serial/parallel parity depends on it.
    """
    congestion = usage / graph.edge_capacity
    over = congestion - threshold
    hot = np.flatnonzero(over > 0.0)
    # exp(0) == 1.0 exactly and x * 1.0 == x, so edges at or below the
    # threshold keep their base cost bit-for-bit; the exponential only has
    # to run over the (typically sparse) congested subset.
    costs = graph.edge_base_cost.copy()
    if hot.size:
        costs[hot] = graph.edge_base_cost[hot] * np.exp(overflow_penalty * over[hot])
    if prices is not None:
        if prices.shape != costs.shape:
            raise ValueError("prices array has wrong shape")
        costs = costs * prices
    return costs


class CongestionSnapshot:
    """A frozen view of a :class:`CongestionMap` at one point in time.

    Snapshots decouple readers from writers: a batch of nets is routed
    against the costs of one snapshot while the live map keeps accumulating
    usage deltas, exactly like the serial router's periodic cost refresh.
    The usage array is copied and marked read-only, so a snapshot stays valid
    (and cheap to share with worker processes) however the live map evolves.
    """

    def __init__(self, source: "CongestionMap") -> None:
        self.graph = source.graph
        self.overflow_penalty = source.overflow_penalty
        self.threshold = source.threshold
        self.usage = source.usage.copy()
        self.usage.setflags(write=False)

    def congestion(self) -> np.ndarray:
        """Per-edge congestion (usage / capacity) at snapshot time."""
        return self.usage / self.graph.edge_capacity

    def edge_costs(self, prices: Optional[np.ndarray] = None) -> np.ndarray:
        """Congestion-priced edge costs at snapshot time (see
        :meth:`CongestionMap.edge_costs`)."""
        return _priced_edge_costs(
            self.graph, self.usage, self.overflow_penalty, self.threshold, prices
        )


class CongestionMap:
    """Tracks per-edge usage and produces congestion-priced edge costs.

    Parameters
    ----------
    graph:
        The routing graph whose edges are tracked.
    overflow_penalty:
        Strength of the congestion price: the cost multiplier of an edge is
        ``exp(overflow_penalty * max(0, congestion - threshold))`` so that
        edges close to or above capacity become expensive.
    threshold:
        Congestion level (fraction of capacity) above which the price starts
        to grow; below it edges cost their base cost.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        overflow_penalty: float = 3.0,
        threshold: float = 0.5,
    ) -> None:
        self.graph = graph
        self.overflow_penalty = overflow_penalty
        self.threshold = threshold
        self.usage = np.zeros(graph.num_edges, dtype=np.float64)

    # ------------------------------------------------------------- updates
    def reset(self) -> None:
        """Clear all usage."""
        self.usage.fill(0.0)

    def add_usage(self, edge_indices: Iterable[int], amount: Optional[float] = None) -> None:
        """Add usage for each edge in ``edge_indices``.

        ``amount`` defaults to the base resource cost of each edge (i.e. the
        number of tracks a wire of the chosen wire type occupies).

        ``np.add.at`` accumulates in index order, so repeated edges behave
        exactly like the scalar reference loop
        (:mod:`repro.grid.reference`).
        """
        idx = _edge_index_array(edge_indices)
        if idx.size == 0:
            return
        amounts = self.graph.edge_base_cost[idx] if amount is None else amount
        np.add.at(self.usage, idx, amounts)

    def remove_usage(self, edge_indices: Iterable[int], amount: Optional[float] = None) -> None:
        """Remove usage previously added with :meth:`add_usage`.

        The whole delta is validated before any mutation: if removing it
        would drive any edge's usage below zero (beyond float tolerance), a
        ``ValueError`` is raised and the map is left *unchanged* -- a
        rejected rip-up must not partially rip up the net.
        """
        idx = _edge_index_array(edge_indices)
        if idx.size == 0:
            return
        uniq, inverse = np.unique(idx, return_inverse=True)
        if amount is None:
            weights = self.graph.edge_base_cost[idx]
        else:
            weights = np.full(idx.shape, float(amount), dtype=np.float64)
        totals = np.bincount(inverse, weights=weights, minlength=uniq.size)
        remaining = self.usage[uniq] - totals
        bad = np.flatnonzero(remaining < -1e-9)
        if bad.size:
            raise ValueError(f"usage of edge {int(uniq[bad[0]])} became negative")
        self.usage[uniq] = np.maximum(remaining, 0.0)

    def apply_tree_delta(
        self,
        old_edges: Optional[Iterable[int]],
        new_edges: Optional[Iterable[int]],
    ) -> None:
        """Replace one net's contribution: rip up ``old_edges``, add ``new_edges``.

        Either side may be ``None`` (initial routing has no old tree; a
        ripped-up net awaiting re-route has no new one yet).  Passing the
        same sequence twice is a no-op up to floating-point bookkeeping.
        """
        if old_edges is not None:
            self.remove_usage(old_edges)
        if new_edges is not None:
            self.add_usage(new_edges)

    # --------------------------------------------------------- persistence
    def state_dict(self) -> Dict[str, object]:
        """The map's full state as plain values plus one usage array.

        The dict round-trips exactly through :meth:`load_state`; the serve
        layer's checkpoint format encodes the usage array losslessly, which
        is what makes resumed runs bit-identical.
        """
        return {
            "overflow_penalty": float(self.overflow_penalty),
            "threshold": float(self.threshold),
            "usage": self.usage.copy(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a state produced by :meth:`state_dict` (exact inverse)."""
        usage = np.asarray(state["usage"], dtype=np.float64)
        if usage.shape != self.usage.shape:
            raise ValueError("congestion state belongs to a different graph")
        self.overflow_penalty = float(state["overflow_penalty"])  # type: ignore[arg-type]
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]
        self.usage = usage.copy()

    # ----------------------------------------------------------- snapshots
    def snapshot(self) -> CongestionSnapshot:
        """A frozen copy of the current usage (see :class:`CongestionSnapshot`)."""
        return CongestionSnapshot(self)

    def restore(self, snapshot: CongestionSnapshot) -> None:
        """Reset the live usage to a previously taken snapshot."""
        if snapshot.usage.shape != self.usage.shape:
            raise ValueError("snapshot belongs to a different graph")
        self.usage = snapshot.usage.copy()

    def delta_since(self, snapshot: CongestionSnapshot) -> np.ndarray:
        """Per-edge usage change since ``snapshot`` was taken."""
        if snapshot.usage.shape != self.usage.shape:
            raise ValueError("snapshot belongs to a different graph")
        return self.usage - snapshot.usage

    # ------------------------------------------------------------- queries
    def congestion(self) -> np.ndarray:
        """Per-edge congestion (usage / capacity)."""
        return self.usage / self.graph.edge_capacity

    def wire_congestion(self) -> np.ndarray:
        """Congestion restricted to routing (non-via) edges.

        The ACE metric is defined over global routing edges; vias are
        excluded, matching common practice.
        """
        mask = ~self.graph.edge_is_via
        return (self.usage[mask] / self.graph.edge_capacity[mask])

    def overflow(self) -> float:
        """Total usage exceeding capacity, summed over all edges."""
        excess = self.usage - self.graph.edge_capacity
        return float(np.sum(np.clip(excess, 0.0, None)))

    def ace4(self) -> float:
        """ACE4 of the current usage (percent)."""
        return ace4(self.wire_congestion())

    def ace(self, percent: float) -> float:
        """ACE(percent) of the current usage (percent)."""
        return ace(self.wire_congestion(), percent)

    # --------------------------------------------------------------- cost
    def edge_costs(self, prices: Optional[np.ndarray] = None) -> np.ndarray:
        """Congestion-priced edge cost vector ``c(e)``.

        Parameters
        ----------
        prices:
            Optional per-edge multiplicative prices (e.g. from the
            resource-sharing router).  When given they multiply the
            congestion factor.
        """
        return _priced_edge_costs(
            self.graph, self.usage, self.overflow_penalty, self.threshold, prices
        )
