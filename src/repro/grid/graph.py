"""The 3D global routing graph.

Nodes are global routing tiles on metal layers; edges are either *routing
edges* between adjacent tiles on the same layer (only along the layer's
preferred direction, one parallel edge per wire type) or *via edges* between
the same tile on adjacent layers.

Every edge carries

* a static ``delay`` from the linear delay model (``d(e)`` in the paper),
* a ``base_cost`` proportional to the routing resources it consumes
  (tracks for wires, cut area for vias), and
* a ``capacity`` used by congestion tracking.

The congestion-dependent cost ``c(e)`` used by the Steiner algorithms is a
numpy array produced by :class:`repro.grid.congestion.CongestionMap` (or any
pricing scheme); the graph itself only stores the static attributes.

The graph is stored in flat parallel arrays plus one adjacency list per node
so Dijkstra-style searches stay reasonably fast in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.geometry import GridPoint
from repro.grid.layers import LayerStack, default_layer_stack
from repro.timing.delay import LinearDelayModel

__all__ = ["Edge", "RoutingGraph", "build_grid_graph", "extract_prism"]

# Cost charged for one via relative to one track-tile of wiring.  Vias are
# cheap compared to wires but not free, so gratuitous layer hopping is
# discouraged -- the via counts of Tables IV/V depend on this trade-off.
VIA_BASE_COST = 0.5
# Vias between two tiles are plentiful compared to routing tracks.
VIA_CAPACITY = 24.0


@dataclass(frozen=True)
class Edge:
    """A single routing-graph edge (convenience view onto the flat arrays)."""

    index: int
    u: int
    v: int
    layer: int
    wire_type: int
    length: float
    delay: float
    base_cost: float
    capacity: float
    is_via: bool


class RoutingGraph:
    """A 3D grid global routing graph.

    Use :func:`build_grid_graph` to construct one; the constructor is
    considered internal.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        stack: LayerStack,
        delay_model: LinearDelayModel,
        build: bool = True,
    ) -> None:
        """``build=False`` leaves the edge arrays empty for callers that
        fill them directly (see :func:`extract_prism`)."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be positive")
        self.nx = nx
        self.ny = ny
        self.stack = stack
        self.delay_model = delay_model
        self.num_layers = stack.num_layers
        self.num_nodes = nx * ny * self.num_layers

        # Edge attribute arrays, filled by _build().
        self.edge_u = np.empty(0, dtype=np.int32)
        self.edge_v = np.empty(0, dtype=np.int32)
        self.edge_layer = np.empty(0, dtype=np.int16)
        self.edge_wire_type = np.empty(0, dtype=np.int16)
        self.edge_length = np.empty(0, dtype=np.float64)
        self.edge_delay = np.empty(0, dtype=np.float64)
        self.edge_base_cost = np.empty(0, dtype=np.float64)
        self.edge_capacity = np.empty(0, dtype=np.float64)
        self.edge_is_via = np.empty(0, dtype=bool)
        # adjacency[node] -> list of (edge_index, other_node)
        self.adjacency: List[List[Tuple[int, int]]] = []
        if build:
            self._build()

    # ------------------------------------------------------------ indexing
    def node_index(self, x: int, y: int, layer: int) -> int:
        """Flat node index of tile ``(x, y)`` on ``layer``."""
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= layer < self.num_layers):
            raise IndexError(f"node ({x},{y},{layer}) outside the grid")
        return (layer * self.ny + y) * self.nx + x

    def point_index(self, point: GridPoint) -> int:
        """Flat node index of a :class:`GridPoint`."""
        return self.node_index(point.x, point.y, point.layer)

    def node_point(self, index: int) -> GridPoint:
        """The :class:`GridPoint` of a flat node index."""
        if not 0 <= index < self.num_nodes:
            raise IndexError(f"node index {index} out of range")
        layer, rest = divmod(index, self.nx * self.ny)
        y, x = divmod(rest, self.nx)
        return GridPoint(x, y, layer)

    def node_planar(self, index: int) -> Tuple[int, int]:
        """Planar (x, y) coordinates of a flat node index (cheaper than node_point)."""
        rest = index % (self.nx * self.ny)
        y, x = divmod(rest, self.nx)
        return x, y

    # ------------------------------------------------------------- queries
    @property
    def num_edges(self) -> int:
        return len(self.edge_u)

    def edge(self, index: int) -> Edge:
        """Return an :class:`Edge` view of edge ``index``."""
        return Edge(
            index=index,
            u=int(self.edge_u[index]),
            v=int(self.edge_v[index]),
            layer=int(self.edge_layer[index]),
            wire_type=int(self.edge_wire_type[index]),
            length=float(self.edge_length[index]),
            delay=float(self.edge_delay[index]),
            base_cost=float(self.edge_base_cost[index]),
            capacity=float(self.edge_capacity[index]),
            is_via=bool(self.edge_is_via[index]),
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` views."""
        for i in range(self.num_edges):
            yield self.edge(i)

    def neighbors(self, node: int) -> List[Tuple[int, int]]:
        """``[(edge_index, other_node), ...]`` incident to ``node``."""
        return self.adjacency[node]

    def other_endpoint(self, edge_index: int, node: int) -> int:
        """The endpoint of ``edge_index`` that is not ``node``."""
        u = int(self.edge_u[edge_index])
        v = int(self.edge_v[edge_index])
        if node == u:
            return v
        if node == v:
            return u
        raise ValueError(f"node {node} is not an endpoint of edge {edge_index}")

    def base_cost_array(self) -> np.ndarray:
        """A copy of the base (uncongested) cost vector ``c(e)``."""
        return self.edge_base_cost.copy()

    def delay_array(self) -> np.ndarray:
        """A copy of the static delay vector ``d(e)``."""
        return self.edge_delay.copy()

    def path_endpoints(self, edge_indices: Sequence[int]) -> Tuple[int, int]:
        """Endpoints of a simple path given as a sequence of edge indices."""
        if not edge_indices:
            raise ValueError("empty edge path")
        degree: Dict[int, int] = {}
        for e in edge_indices:
            for node in (int(self.edge_u[e]), int(self.edge_v[e])):
                degree[node] = degree.get(node, 0) + 1
        ends = [node for node, deg in degree.items() if deg == 1]
        if len(ends) != 2:
            raise ValueError("edge sequence is not a simple path")
        return ends[0], ends[1]

    # -------------------------------------------------------------- build
    def _build(self) -> None:
        edge_u: List[int] = []
        edge_v: List[int] = []
        edge_layer: List[int] = []
        edge_wire_type: List[int] = []
        edge_length: List[float] = []
        edge_delay: List[float] = []
        edge_base_cost: List[float] = []
        edge_capacity: List[float] = []
        edge_is_via: List[bool] = []

        def add_edge(u, v, layer, wire_type, length, delay, base_cost, capacity, is_via):
            edge_u.append(u)
            edge_v.append(v)
            edge_layer.append(layer)
            edge_wire_type.append(wire_type)
            edge_length.append(length)
            edge_delay.append(delay)
            edge_base_cost.append(base_cost)
            edge_capacity.append(capacity)
            edge_is_via.append(is_via)

        dm = self.delay_model
        # Routing edges along each layer's preferred direction.
        for layer in self.stack:
            z = layer.index
            for wt_index, wire_type in enumerate(layer.wire_types):
                delay = dm.wire_delay(z, wire_type.name, 1.0)
                base_cost = wire_type.track_usage
                capacity = float(layer.tracks_per_tile)
                if layer.direction == "H":
                    for y in range(self.ny):
                        for x in range(self.nx - 1):
                            add_edge(
                                self.node_index(x, y, z),
                                self.node_index(x + 1, y, z),
                                z, wt_index, 1.0, delay, base_cost, capacity, False,
                            )
                else:
                    for y in range(self.ny - 1):
                        for x in range(self.nx):
                            add_edge(
                                self.node_index(x, y, z),
                                self.node_index(x, y + 1, z),
                                z, wt_index, 1.0, delay, base_cost, capacity, False,
                            )
        # Via edges between adjacent layers.
        for z in range(self.num_layers - 1):
            via_delay = dm.via_delay(z)
            for y in range(self.ny):
                for x in range(self.nx):
                    add_edge(
                        self.node_index(x, y, z),
                        self.node_index(x, y, z + 1),
                        z, -1, 0.0, via_delay, VIA_BASE_COST, VIA_CAPACITY, True,
                    )

        self.edge_u = np.asarray(edge_u, dtype=np.int32)
        self.edge_v = np.asarray(edge_v, dtype=np.int32)
        self.edge_layer = np.asarray(edge_layer, dtype=np.int16)
        self.edge_wire_type = np.asarray(edge_wire_type, dtype=np.int16)
        self.edge_length = np.asarray(edge_length, dtype=np.float64)
        self.edge_delay = np.asarray(edge_delay, dtype=np.float64)
        self.edge_base_cost = np.asarray(edge_base_cost, dtype=np.float64)
        self.edge_capacity = np.asarray(edge_capacity, dtype=np.float64)
        self.edge_is_via = np.asarray(edge_is_via, dtype=bool)

        self.adjacency = [[] for _ in range(self.num_nodes)]
        for e in range(len(edge_u)):
            u = edge_u[e]
            v = edge_v[e]
            self.adjacency[u].append((e, v))
            self.adjacency[v].append((e, u))

    # -------------------------------------------------------------- repr
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingGraph({self.nx}x{self.ny}x{self.num_layers}, "
            f"{self.num_nodes} nodes, {self.num_edges} edges)"
        )


def extract_prism(
    graph: RoutingGraph, xlo: int, ylo: int, xhi: int, yhi: int
) -> Tuple[RoutingGraph, np.ndarray]:
    """Extract the sub-prism ``[xlo, xhi] x [ylo, yhi]`` (all layers).

    Returns the sub-:class:`RoutingGraph` plus the int64 array mapping each
    sub-edge index to its edge in ``graph``.  Edge attributes are *sliced*
    from the parent's arrays (bit-identical, no delay-model recomputation),
    which is an order of magnitude faster than rebuilding the region with
    :func:`build_grid_graph` -- the shard coordinator constructs one prism
    per region and per seam scope.  Sub-edge order follows the parent's
    edge order (not :func:`build_grid_graph`'s enumeration); the sub-graph
    is internally consistent either way.
    """
    if not (0 <= xlo <= xhi < graph.nx and 0 <= ylo <= yhi < graph.ny):
        raise ValueError("prism bounds outside the grid")
    tiles = graph.nx * graph.ny
    u = np.asarray(graph.edge_u, dtype=np.int64)
    v = np.asarray(graph.edge_v, dtype=np.int64)
    lu, rest_u = np.divmod(u, tiles)
    yu, xu = np.divmod(rest_u, graph.nx)
    lv, rest_v = np.divmod(v, tiles)
    yv, xv = np.divmod(rest_v, graph.nx)
    inside = (
        (xu >= xlo) & (xu <= xhi) & (yu >= ylo) & (yu <= yhi)
        & (xv >= xlo) & (xv <= xhi) & (yv >= ylo) & (yv <= yhi)
    )
    edge_to_global = np.flatnonzero(inside).astype(np.int64)

    snx = xhi - xlo + 1
    sny = yhi - ylo + 1
    sub = RoutingGraph(snx, sny, graph.stack, graph.delay_model, build=False)
    sub_u = (lu[inside] * sny + (yu[inside] - ylo)) * snx + (xu[inside] - xlo)
    sub_v = (lv[inside] * sny + (yv[inside] - ylo)) * snx + (xv[inside] - xlo)
    sub.edge_u = sub_u.astype(np.int32)
    sub.edge_v = sub_v.astype(np.int32)
    sub.edge_layer = graph.edge_layer[inside].copy()
    sub.edge_wire_type = graph.edge_wire_type[inside].copy()
    sub.edge_length = graph.edge_length[inside].copy()
    sub.edge_delay = graph.edge_delay[inside].copy()
    sub.edge_base_cost = graph.edge_base_cost[inside].copy()
    sub.edge_capacity = graph.edge_capacity[inside].copy()
    sub.edge_is_via = graph.edge_is_via[inside].copy()
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(sub.num_nodes)]
    for e, (a, b) in enumerate(zip(sub_u.tolist(), sub_v.tolist())):
        adjacency[a].append((e, b))
        adjacency[b].append((e, a))
    sub.adjacency = adjacency
    return sub, edge_to_global


def build_grid_graph(
    nx: int,
    ny: int,
    num_layers: int = 8,
    stack: Optional[LayerStack] = None,
    delay_model: Optional[LinearDelayModel] = None,
) -> RoutingGraph:
    """Build a 3D grid routing graph.

    Parameters
    ----------
    nx, ny:
        Number of global routing tiles in x and y.
    num_layers:
        Number of metal layers (ignored when ``stack`` is given).
    stack:
        Explicit layer stack; defaults to :func:`default_layer_stack`.
    delay_model:
        Explicit delay model; defaults to a :class:`LinearDelayModel` over
        the stack with default buffer parameters.
    """
    if stack is None:
        stack = default_layer_stack(num_layers)
    if delay_model is None:
        delay_model = LinearDelayModel(stack)
    return RoutingGraph(nx, ny, stack, delay_model)
