"""Scalar reference implementations of the vectorized routing-state kernel.

The numpy kernels in :mod:`repro.grid.congestion` and the batch-level
:class:`~repro.core.costctx.OracleCostContext` fast paths promise **bit-exact
parity** with the per-edge / per-net scalar code they replaced.  This module
retains that scalar code in two roles:

* as plain functions (``scalar_*``) the property-style parity battery in
  ``tests/test_vector_kernel.py`` drives head-to-head against the vectorized
  kernel with exact float equality, and
* as :func:`install_reference_kernel`, a context manager that patches the
  scalar paths back into the live classes -- the ``kernel_speedup`` benchmark
  scenario routes the same chip once per mode and asserts the results are
  bit-identical while timing the difference.

The scalar ``remove`` mirrors the vectorized kernel's *atomic* semantics
(validate the whole delta, then mutate): per unique edge the removed amounts
are accumulated in occurrence order -- exactly the association
``np.bincount`` uses -- and subtracted once.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.grid.congestion import CongestionMap

__all__ = [
    "install_reference_kernel",
    "scalar_add_usage",
    "scalar_remove_usage",
    "scalar_ace",
    "scalar_ace4",
    "scalar_wire_length",
    "scalar_via_count",
    "scalar_congestion_cost",
]


def scalar_add_usage(
    cmap: CongestionMap, edge_indices: Iterable[int], amount: Optional[float] = None
) -> None:
    """Per-edge loop equivalent of :meth:`CongestionMap.add_usage`."""
    base = cmap.graph.edge_base_cost
    for e in edge_indices:
        cmap.usage[e] += base[e] if amount is None else amount


def scalar_remove_usage(
    cmap: CongestionMap, edge_indices: Iterable[int], amount: Optional[float] = None
) -> None:
    """Per-edge loop equivalent of the *atomic* ``remove_usage``.

    The whole delta is validated before any mutation; the map is unchanged
    when a :class:`ValueError` is raised.
    """
    base = cmap.graph.edge_base_cost
    totals: Dict[int, float] = {}
    order: List[int] = []
    for e in edge_indices:
        e = int(e)
        if e not in totals:
            totals[e] = 0.0
            order.append(e)
        totals[e] += float(base[e]) if amount is None else float(amount)
    # np.unique sorts; matching it keeps the first-offender error identical.
    order.sort()
    for e in order:
        if float(cmap.usage[e]) - totals[e] < -1e-9:
            raise ValueError(f"usage of edge {e} became negative")
    for e in order:
        remaining = float(cmap.usage[e]) - totals[e]
        cmap.usage[e] = remaining if remaining > 0.0 else 0.0


def scalar_ace(congestion, percent: float) -> float:
    """The pre-vectorization ``ace`` (with the percent-validation bugfix)."""
    if not 0 < percent <= 100:
        raise ValueError("percent must be in (0, 100]")
    import math

    values = np.asarray(list(congestion), dtype=float)
    if values.size == 0:
        return 0.0
    count = max(1, int(math.ceil(values.size * percent / 100.0)))
    worst = np.sort(values)[-count:]
    return float(np.mean(worst) * 100.0)


def scalar_ace4(congestion) -> float:
    """The pre-vectorization ``ace4`` (re-materialises per ``ace`` call)."""
    values = list(congestion)
    return 0.25 * (
        scalar_ace(values, 0.5)
        + scalar_ace(values, 1.0)
        + scalar_ace(values, 2.0)
        + scalar_ace(values, 5.0)
    )


def scalar_wire_length(tree) -> float:
    """Per-edge loop equivalent of :meth:`EmbeddedTree.wire_length`."""
    length = tree.graph.edge_length
    return float(sum(length[e] for e in tree.edges))


def scalar_via_count(tree) -> int:
    """Per-edge loop equivalent of :meth:`EmbeddedTree.via_count`."""
    is_via = tree.graph.edge_is_via
    return int(sum(1 for e in tree.edges if is_via[e]))


def scalar_congestion_cost(tree, cost) -> float:
    """Per-edge loop equivalent of :meth:`EmbeddedTree.congestion_cost`."""
    return float(sum(cost[e] for e in tree.edges))


@contextmanager
def install_reference_kernel() -> Iterator[None]:
    """Temporarily restore the scalar/per-net hot paths on the live classes.

    Patches, for the duration of the ``with`` block:

    * ``CongestionMap.add_usage`` / ``remove_usage`` back to per-edge loops,
    * ``BatchExecutor.make_context`` to return ``None``, reverting every
      solver/executor consumer to its per-net slow path (per-net
      ``tolist``, per-net estimator, per-net validation scans), and
    * ``RerouteCache.incremental_digests`` off, restoring full-vector SHA1
      digests and per-net region cost hashing.

    Results are bit-identical with and without the patches (that is the
    vectorization's acceptance bar); only the walltime differs.  Used by
    the ``kernel_speedup`` benchmark scenario and the parity battery.
    """
    from repro.engine.cache import RerouteCache
    from repro.engine.executor import BatchExecutor

    saved_add = CongestionMap.add_usage
    saved_remove = CongestionMap.remove_usage
    saved_make_context = BatchExecutor.make_context
    saved_incremental = RerouteCache.incremental_digests

    def _add(self, edge_indices, amount=None):
        scalar_add_usage(self, edge_indices, amount)

    def _remove(self, edge_indices, amount=None):
        scalar_remove_usage(self, edge_indices, amount)

    try:
        CongestionMap.add_usage = _add
        CongestionMap.remove_usage = _remove
        BatchExecutor.make_context = lambda self, costs: None
        RerouteCache.incremental_digests = False
        yield
    finally:
        CongestionMap.add_usage = saved_add
        CongestionMap.remove_usage = saved_remove
        BatchExecutor.make_context = saved_make_context
        RerouteCache.incremental_digests = saved_incremental
