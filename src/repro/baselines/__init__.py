"""Baseline Steiner tree constructions.

The paper compares its cost-distance algorithm against three established
topology-first methods.  Each of them builds a Steiner *topology* in the
plane (considering wire length / path length, not congestion) and then embeds
that topology optimally into the 3D global routing graph with a Dijkstra-style
dynamic program minimising the cost-distance objective:

* :class:`repro.baselines.rsmt.RectilinearSteinerOracle` (``L1``) -- an
  L1-shortest rectilinear Steiner tree heuristic.
* :class:`repro.baselines.shallow_light.ShallowLightOracle` (``SL``) -- a
  shallow-light tree in the spirit of Held & Rotter / SALT: a short tree whose
  root-sink path lengths are within ``1 + epsilon`` of their lower bounds.
* :class:`repro.baselines.prim_dijkstra.PrimDijkstraOracle` (``PD``) -- the
  Prim-Dijkstra trade-off tree of Alpert et al. with bifurcation-penalty
  aware attachment.

The embedding itself lives in :mod:`repro.baselines.embedding` and is shared
by all three.
"""

from repro.baselines.topology import PlaneTopology
from repro.baselines.rsmt import RectilinearSteinerOracle, rectilinear_steiner_topology
from repro.baselines.shallow_light import ShallowLightOracle, shallow_light_topology
from repro.baselines.prim_dijkstra import PrimDijkstraOracle, prim_dijkstra_topology
from repro.baselines.embedding import TopologyEmbedder

__all__ = [
    "PlaneTopology",
    "RectilinearSteinerOracle",
    "rectilinear_steiner_topology",
    "ShallowLightOracle",
    "shallow_light_topology",
    "PrimDijkstraOracle",
    "prim_dijkstra_topology",
    "TopologyEmbedder",
]
