"""The shallow-light baseline (``SL``).

Shallow-light Steiner trees (Khuller-Raghavachari-Young; Held & Rotter,
IPCO'13; SALT, TCAD'19) start from an approximately minimum-length tree and
guarantee that every root-sink path length stays within a factor
``1 + epsilon`` of its lower bound (the direct L1 distance), re-connecting
sinks to the root where the bound would be violated.  A reverse traversal
then re-attaches subtrees to cheaper predecessors where this saves length
without breaking any bound.

This implementation follows that scheme on planar topologies:

1. build a short tree with the greedy rectilinear heuristic,
2. forward pass: while some sink violates ``path_length > (1 + eps) * L1``,
   re-root the most violating sink node directly at the root,
3. reverse pass: try to re-attach each re-rooted subtree to the closest
   other tree node that keeps all bounds satisfied, keeping the move only
   if it shortens the tree.

Bifurcation penalties do not change the path-length bounds; they are
(re-)distributed with the flexible ``eta`` model when the embedded tree is
evaluated, as described in the paper.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.embedding import TopologyEmbedder
from repro.baselines.rsmt import rectilinear_steiner_topology
from repro.baselines.topology import PlaneTopology
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.grid.geometry import PlanarPoint, planar_l1

__all__ = ["shallow_light_topology", "ShallowLightOracle"]


def _violation(topology: PlaneTopology, sink_node: int, bound: float) -> float:
    """How much the root path of ``sink_node`` exceeds its bound (<= 0 when ok)."""
    return topology.path_length(sink_node) - bound


def shallow_light_topology(
    root: PlanarPoint,
    sinks: Sequence[PlanarPoint],
    epsilon: float = 0.25,
) -> PlaneTopology:
    """Build a shallow-light topology with path-length bound ``(1 + epsilon) * L1``."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    root = (int(root[0]), int(root[1]))
    sinks = [(int(s[0]), int(s[1])) for s in sinks]
    topology = rectilinear_steiner_topology(root, sinks)

    bounds: Dict[int, float] = {}
    for sink_node, sink_pos in zip(topology.sink_nodes, sinks):
        bound = (1.0 + epsilon) * planar_l1(root, sink_pos)
        bounds[sink_node] = min(bounds.get(sink_node, float("inf")), bound)

    # Forward pass: repeatedly re-root the most violating sink.
    rerooted: List[int] = []
    for _ in range(4 * len(sinks) + 4):
        worst_node = None
        worst_violation = 1e-9
        for sink_node, bound in bounds.items():
            violation = _violation(topology, sink_node, bound)
            if violation > worst_violation:
                worst_violation = violation
                worst_node = sink_node
        if worst_node is None:
            break
        topology.reattach(worst_node, topology.root)
        rerooted.append(worst_node)

    # Reverse pass: re-attach re-rooted subtrees to cheaper predecessors when
    # this saves length and keeps every bound satisfied.
    for node in reversed(rerooted):
        subtree = set(topology.subtree_nodes(node))
        current_length = planar_l1(topology.positions[node], root)
        best_parent = topology.root
        best_length = current_length
        for candidate in range(topology.num_nodes):
            if candidate in subtree:
                continue
            length = planar_l1(topology.positions[node], topology.positions[candidate])
            if length >= best_length:
                continue
            # Path length of `node` if attached below `candidate`.
            new_path = topology.path_length(candidate) + length
            delta = new_path - topology.path_length(node)
            ok = True
            for sink_node, bound in bounds.items():
                if sink_node in subtree and topology.path_length(sink_node) + delta > bound + 1e-9:
                    ok = False
                    break
            if ok:
                best_length = length
                best_parent = candidate
        if best_parent != topology.parents[node]:
            topology.reattach(node, best_parent)

    return topology


class ShallowLightOracle(SteinerOracle):
    """The ``SL`` baseline: shallow-light topology + optimal embedding."""

    name = "SL"

    def __init__(
        self,
        embedder: Optional[TopologyEmbedder] = None,
        epsilon: float = 0.25,
    ) -> None:
        self.embedder = embedder or TopologyEmbedder()
        self.epsilon = epsilon

    def build(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        graph = instance.graph
        root = graph.node_planar(instance.root)
        sinks = [graph.node_planar(s) for s in instance.sinks]
        topology = shallow_light_topology(root, sinks, self.epsilon)
        return self.embedder.embed(instance, topology, method=self.name)
