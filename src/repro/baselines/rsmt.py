"""L1-shortest rectilinear Steiner trees (the ``L1`` baseline).

The first comparison routine of the paper "just computes a short L1 Steiner
tree and embeds it optimally into the global routing graph".  This module
provides a classical greedy rectilinear Steiner tree heuristic: terminals are
attached one by one (closest first) to the nearest point of the existing
tree, inserting Steiner nodes where the attachment hits the interior of an
edge.  For nets with up to three sinks the result is additionally compared
against the best single Hanan-grid Steiner point, which is optimal for those
sizes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.baselines.embedding import TopologyEmbedder
from repro.baselines.topology import PlaneTopology, closest_point_on_edge
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.grid.geometry import PlanarPoint, planar_l1

__all__ = ["rectilinear_steiner_topology", "RectilinearSteinerOracle"]


def _attach_candidates(
    topology: PlaneTopology, point: PlanarPoint
) -> Tuple[int, PlanarPoint, Tuple[str, int]]:
    """Best attachment of ``point`` to the current topology.

    Returns ``(distance, attach_point, where)`` with ``where`` either
    ``("node", index)`` for attachment at an existing node or
    ``("edge", child_index)`` for attachment on the edge between
    ``child_index`` and its parent.
    """
    best_dist: Optional[int] = None
    best_attach: PlanarPoint = topology.positions[0]
    best_where: Tuple[str, int] = ("node", 0)
    for node, pos in enumerate(topology.positions):
        dist = planar_l1(point, pos)
        if best_dist is None or dist < best_dist:
            best_dist = dist
            best_attach = pos
            best_where = ("node", node)
    for node, parent in enumerate(topology.parents):
        if parent is None:
            continue
        attach, dist = closest_point_on_edge(
            point, topology.positions[node], topology.positions[parent]
        )
        if dist < best_dist:
            best_dist = dist
            best_attach = attach
            best_where = ("edge", node)
    return int(best_dist or 0), best_attach, best_where


def _attach_point_to_topology(topology: PlaneTopology, point: PlanarPoint) -> int:
    """Attach ``point`` to the topology, returning its topology node index."""
    point = (int(point[0]), int(point[1]))
    _, attach, (kind, index) = _attach_candidates(topology, point)
    if kind == "node":
        steiner = index
    else:
        child = index
        parent_of_child = topology.parents[child]
        assert parent_of_child is not None
        if attach == topology.positions[child]:
            steiner = child
        elif attach == topology.positions[parent_of_child]:
            steiner = parent_of_child
        else:
            steiner = topology.add_node(attach, parent_of_child)
            topology.reattach(child, steiner)
    if topology.positions[steiner] == point:
        return steiner
    return topology.add_node(point, steiner)


def _single_steiner_point_topology(
    root: PlanarPoint, sinks: Sequence[PlanarPoint]
) -> Tuple[int, PlaneTopology]:
    """Best star topology through a single Hanan-grid Steiner point."""
    xs = sorted({root[0], *[s[0] for s in sinks]})
    ys = sorted({root[1], *[s[1] for s in sinks]})
    best_length = None
    best_point = root
    for x in xs:
        for y in ys:
            candidate = (x, y)
            length = planar_l1(root, candidate) + sum(planar_l1(s, candidate) for s in sinks)
            if best_length is None or length < best_length:
                best_length = length
                best_point = candidate
    topology = PlaneTopology([tuple(root)], [None], [])
    if best_point == tuple(root):
        hub = 0
    else:
        hub = topology.add_node(best_point, 0)
    sink_nodes = []
    for s in sinks:
        if tuple(s) == topology.positions[hub]:
            sink_nodes.append(hub)
        else:
            sink_nodes.append(topology.add_node(tuple(s), hub))
    topology.sink_nodes = sink_nodes
    return int(best_length or 0), topology


def rectilinear_steiner_topology(
    root: PlanarPoint, sinks: Sequence[PlanarPoint]
) -> PlaneTopology:
    """Build a short rectilinear Steiner topology over ``root`` and ``sinks``.

    Greedy nearest-terminal insertion with edge splitting; for very small
    nets the best single-Steiner-point star is used when it is shorter.
    """
    root = (int(root[0]), int(root[1]))
    sinks = [(int(s[0]), int(s[1])) for s in sinks]
    topology = PlaneTopology([root], [None], [])
    remaining = list(range(len(sinks)))
    sink_nodes: List[Optional[int]] = [None] * len(sinks)
    while remaining:
        # Pick the unconnected sink closest to the current tree.
        best = None
        for idx in remaining:
            dist, _, _ = _attach_candidates(topology, sinks[idx])
            if best is None or dist < best[0]:
                best = (dist, idx)
        assert best is not None
        _, idx = best
        sink_nodes[idx] = _attach_point_to_topology(topology, sinks[idx])
        remaining.remove(idx)
    topology.sink_nodes = [n for n in sink_nodes if n is not None]

    if 1 <= len(sinks) <= 3:
        star_length, star = _single_steiner_point_topology(root, sinks)
        if star_length < topology.total_length():
            return star
    return topology


class RectilinearSteinerOracle(SteinerOracle):
    """The ``L1`` baseline: short rectilinear topology + optimal embedding."""

    name = "L1"

    def __init__(self, embedder: Optional[TopologyEmbedder] = None) -> None:
        self.embedder = embedder or TopologyEmbedder()

    def build(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        graph = instance.graph
        root = graph.node_planar(instance.root)
        sinks = [graph.node_planar(s) for s in instance.sinks]
        topology = rectilinear_steiner_topology(root, sinks)
        return self.embedder.embed(instance, topology, method=self.name)
