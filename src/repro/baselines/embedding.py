"""Optimal embedding of a planar topology into the 3D routing graph.

The topology-first baselines build a tree in the plane and then embed it into
the global routing graph "optimally ... minimizing the cost-distance
objective (1) using a Dijkstra-style embedding" (paper Section IV-A,
following Held et al., TCAD 2018).  This module implements that embedding as
a bottom-up dynamic program:

* For every topology node ``v`` a *label* gives, for every graph node ``x``,
  the minimum cost of embedding the subtree of ``v`` with ``v`` placed at
  ``x``.
* Propagating a child label through the graph uses a multi-source Dijkstra
  with edge lengths ``c(e) + W_child * d(e)`` where ``W_child`` is the total
  delay weight of the sinks below that child -- exactly the price the
  objective charges for the embedding of that topology edge.
* A top-down pass recovers the optimal placement of every topology node and
  the connecting paths.

The embedding is optimal for the given topology up to the bifurcation
penalty constants (which do not depend on the embedding) and the routing
window (searches are confined to the net's bounding box plus a configurable
margin, as is standard in global routing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.topology import PlaneTopology
from repro.core.instance import SteinerInstance
from repro.core.objective import prune_dangling_branches
from repro.core.shortest_path import dijkstra
from repro.core.tree import EmbeddedTree

__all__ = ["TopologyEmbedder"]


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        root = x
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(x, x) != x:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


@dataclass
class TopologyEmbedder:
    """Embeds :class:`PlaneTopology` objects into the routing graph.

    Parameters
    ----------
    window_margin:
        Number of tiles the routing window extends beyond the bounding box
        of the net's terminals in each direction.
    """

    window_margin: int = 4

    # ------------------------------------------------------------------ API
    def embed(
        self,
        instance: SteinerInstance,
        topology: PlaneTopology,
        method: str = "EMB",
    ) -> EmbeddedTree:
        """Embed ``topology`` into ``instance``'s graph, minimising objective (1)."""
        graph = instance.graph
        cost = instance.cost
        delay = instance.delay

        node_filter = self._window_filter(instance)

        # Which instance sinks are realised at which topology node.
        sinks_at: Dict[int, List[int]] = {}
        for sink_index, topo_node in enumerate(topology.sink_nodes):
            sinks_at.setdefault(topo_node, []).append(sink_index)

        # Only topology nodes lying on some sink-to-root path matter for the
        # embedding; dangling Steiner branches (which some topology
        # constructions leave behind) are ignored.
        relevant: Set[int] = {topology.root}
        for topo_node in topology.sink_nodes:
            node: Optional[int] = topo_node
            while node is not None and node not in relevant:
                relevant.add(node)
                node = topology.parents[node]

        # Total sink delay weight of every topology subtree.
        all_children = topology.children()
        children = {
            node: [c for c in kids if c in relevant] for node, kids in all_children.items()
        }
        order = [node for node in topology.depth_order() if node in relevant]
        subtree_weight: Dict[int, float] = {}
        for node in reversed(order):
            weight = sum(instance.weights[i] for i in sinks_at.get(node, []))
            for child in children[node]:
                weight += subtree_weight[child]
            subtree_weight[node] = weight

        # Bottom-up labels.  For each non-root topology node we keep the
        # propagated label (the Dijkstra result of pushing the node's own
        # label one topology edge up) for the top-down recovery.
        labels: Dict[int, Dict[int, float]] = {}
        propagated: Dict[int, Tuple[Dict[int, float], Dict[int, int]]] = {}

        for node in reversed(order):
            label = self._own_label(instance, sinks_at.get(node, []))
            for child in children[node]:
                prop_dist, _ = propagated[child]
                label = self._combine(label, prop_dist)
                if not label:
                    raise RuntimeError(
                        "topology embedding failed: child label unreachable inside "
                        "the routing window; increase window_margin"
                    )
            labels[node] = label
            if node != topology.root:
                lengths = (cost + subtree_weight[node] * delay).tolist()
                dist, parent_edge = dijkstra(
                    graph,
                    lengths,
                    dict(label),
                    node_filter=node_filter,
                )
                propagated[node] = (dist, parent_edge)

        root_label = labels[topology.root]
        if instance.root not in root_label:
            raise RuntimeError(
                "topology embedding failed: root position unreachable; "
                "increase window_margin"
            )

        # Top-down recovery of placements and connecting paths.
        edges: List[int] = []
        uf = _UnionFind()
        placement: Dict[int, int] = {topology.root: instance.root}
        stack: List[int] = [topology.root]
        while stack:
            node = stack.pop()
            at = placement[node]
            for child in children[node]:
                dist, parent_edge = propagated[child]
                child_label = labels[child]
                path, source = self._backtrack(graph, parent_edge, child_label, at)
                for edge in path:
                    u = int(graph.edge_u[edge])
                    v = int(graph.edge_v[edge])
                    if uf.union(u, v):
                        edges.append(edge)
                placement[child] = source
                stack.append(child)

        tree = EmbeddedTree(
            graph,
            instance.root,
            tuple(instance.sinks),
            tuple(edges),
            method,
        )
        return prune_dangling_branches(tree)

    # ------------------------------------------------------------ internals
    def _window_filter(self, instance: SteinerInstance):
        graph = instance.graph
        xs: List[int] = []
        ys: List[int] = []
        for node in instance.terminal_nodes():
            x, y = graph.node_planar(node)
            xs.append(x)
            ys.append(y)
        margin = self.window_margin
        xmin = max(0, min(xs) - margin)
        xmax = min(graph.nx - 1, max(xs) + margin)
        ymin = max(0, min(ys) - margin)
        ymax = min(graph.ny - 1, max(ys) + margin)

        def allowed(node: int) -> bool:
            x, y = graph.node_planar(node)
            return xmin <= x <= xmax and ymin <= y <= ymax

        return allowed

    @staticmethod
    def _own_label(instance: SteinerInstance, sink_indices: List[int]) -> Dict[int, float]:
        """Initial label of a topology node before children are merged in.

        A node realising one or more sinks is pinned to the sink's graph
        node; any other node may initially be placed anywhere (cost 0 -- the
        placement cost comes entirely from the propagated child labels and
        the edge towards the parent).
        """
        if not sink_indices:
            return {}
        nodes = {instance.sinks[i] for i in sink_indices}
        if len(nodes) != 1:
            raise ValueError(
                "sinks mapped to one topology node must share a graph node"
            )
        return {next(iter(nodes)): 0.0}

    @staticmethod
    def _combine(label: Dict[int, float], prop: Dict[int, float]) -> Dict[int, float]:
        """Pointwise sum of a label and a propagated child label."""
        if not label:
            return dict(prop)
        result: Dict[int, float] = {}
        for node, value in label.items():
            other = prop.get(node)
            if other is not None:
                result[node] = value + other
        return result

    @staticmethod
    def _backtrack(
        graph, parent_edge: Dict[int, int], sources: Dict[int, float], target: int
    ) -> Tuple[List[int], int]:
        """Walk Dijkstra parents from ``target`` back to the path's origin.

        The origin is the node where the multi-source search started (no
        parent edge); its initial label value identifies the child placement.
        """
        path: List[int] = []
        node = target
        visited: Set[int] = {node}
        while True:
            edge = parent_edge.get(node)
            if edge is None:
                break
            path.append(edge)
            node = graph.other_endpoint(edge, node)
            if node in visited:
                raise RuntimeError("cycle while backtracking an embedding path")
            visited.add(node)
        if node not in sources:
            raise RuntimeError("embedding backtrack did not reach a source label")
        path.reverse()
        return path, node
