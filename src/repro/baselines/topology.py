"""Planar Steiner topologies.

The topology-first baselines (L1, SL, PD) build a rooted tree over points in
the plane before any interaction with the 3D routing graph.  A
:class:`PlaneTopology` stores the node positions, the parent structure, and
which topology node realises each instance sink.  Edge lengths are L1
distances between the endpoints (every edge is thought of as an arbitrary
monotone rectilinear staircase between its endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.geometry import PlanarPoint, planar_l1

__all__ = ["PlaneTopology", "closest_point_on_edge"]


def closest_point_on_edge(
    point: PlanarPoint, a: PlanarPoint, b: PlanarPoint
) -> Tuple[PlanarPoint, int]:
    """Closest point (in L1) of the rectilinear edge ``a``-``b`` to ``point``.

    An edge between ``a`` and ``b`` can be embedded as any monotone staircase
    inside the bounding box of its endpoints, so the closest approach of the
    edge to an external point is the L1 distance to that bounding box.

    Returns
    -------
    (attach_point, distance):
        The clamped point inside the bounding box and its L1 distance to
        ``point``.
    """
    x = min(max(point[0], min(a[0], b[0])), max(a[0], b[0]))
    y = min(max(point[1], min(a[1], b[1])), max(a[1], b[1]))
    attach = (x, y)
    return attach, planar_l1(point, attach)


@dataclass
class PlaneTopology:
    """A rooted Steiner topology in the plane.

    Node ``0`` is always the root.  ``parents[i]`` is the parent of node
    ``i`` (``None`` for the root).  ``sink_nodes[k]`` is the topology node
    realising the ``k``-th instance sink.
    """

    positions: List[PlanarPoint]
    parents: List[Optional[int]]
    sink_nodes: List[int]

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("topology needs at least the root node")
        if len(self.parents) != len(self.positions):
            raise ValueError("positions and parents must have the same length")
        if self.parents[0] is not None:
            raise ValueError("node 0 must be the root (parent None)")
        for i, parent in enumerate(self.parents[1:], start=1):
            if parent is None or not 0 <= parent < len(self.positions):
                raise ValueError(f"node {i} has invalid parent {parent}")
        for node in self.sink_nodes:
            if not 0 <= node < len(self.positions):
                raise ValueError(f"sink node {node} out of range")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for start in range(self.num_nodes):
            seen = set()
            node: Optional[int] = start
            while node is not None:
                if node in seen:
                    raise ValueError("topology parent structure contains a cycle")
                seen.add(node)
                node = self.parents[node]

    # ------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self.positions)

    @property
    def root(self) -> int:
        return 0

    def children(self) -> Dict[int, List[int]]:
        """``node -> [children]`` map."""
        result: Dict[int, List[int]] = {i: [] for i in range(self.num_nodes)}
        for node, parent in enumerate(self.parents):
            if parent is not None:
                result[parent].append(node)
        return result

    def edge_length(self, node: int) -> int:
        """L1 length of the edge from ``node`` to its parent (0 for the root)."""
        parent = self.parents[node]
        if parent is None:
            return 0
        return planar_l1(self.positions[node], self.positions[parent])

    def total_length(self) -> int:
        """Total L1 length of the topology."""
        return sum(self.edge_length(i) for i in range(self.num_nodes))

    def path_length(self, node: int) -> int:
        """L1 length of the root-to-``node`` path through the topology."""
        length = 0
        current: Optional[int] = node
        while current is not None and self.parents[current] is not None:
            length += self.edge_length(current)
            current = self.parents[current]
        return length

    def depth_order(self) -> List[int]:
        """Nodes ordered root-first (every parent before its children)."""
        children = self.children()
        order: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children[node])
        return order

    def subtree_nodes(self, node: int) -> List[int]:
        """Nodes of the subtree rooted at ``node`` (including itself)."""
        children = self.children()
        result: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(children[current])
        return result

    def validate_spans(self, sink_positions: Sequence[PlanarPoint]) -> None:
        """Check that every instance sink is realised at its own position."""
        if len(self.sink_nodes) != len(sink_positions):
            raise ValueError("sink_nodes and sink_positions must align")
        for node, position in zip(self.sink_nodes, sink_positions):
            if self.positions[node] != tuple(position):
                raise ValueError(
                    f"sink node {node} at {self.positions[node]} does not match "
                    f"pin position {tuple(position)}"
                )

    # ----------------------------------------------------------- mutation
    def add_node(self, position: PlanarPoint, parent: int) -> int:
        """Append a node at ``position`` attached below ``parent``; returns its index."""
        if not 0 <= parent < self.num_nodes:
            raise ValueError(f"parent {parent} out of range")
        self.positions.append((int(position[0]), int(position[1])))
        self.parents.append(parent)
        return self.num_nodes - 1

    def reattach(self, node: int, new_parent: int) -> None:
        """Change the parent of ``node`` (must not create a cycle)."""
        if node == self.root:
            raise ValueError("cannot reattach the root")
        current: Optional[int] = new_parent
        while current is not None:
            if current == node:
                raise ValueError("reattaching would create a cycle")
            current = self.parents[current]
        self.parents[node] = new_parent
