"""The Prim-Dijkstra baseline (``PD``).

Prim-Dijkstra (Alpert et al. 1995, revisited at ISPD'18) grows a tree from
the root by iteratively attaching the sink whose connection minimises a
weighted combination of the attachment length (Prim term) and the resulting
source-sink path length (Dijkstra term).  New Steiner vertices are inserted
where the attachment hits the interior of an existing edge.

Two modes are provided:

* the *classic* mode with a single trade-off parameter ``alpha``:
  attachment key ``= dist(q, s) + alpha * pathlength(root, q)``;
* the *weighted* mode (the default, used for the paper comparisons), where
  the key approximates the cost-distance objective increase of the
  attachment: cheapest per-tile congestion cost for the new wire, the sink's
  delay weight times the resulting path delay, and -- following the paper --
  the bifurcation delay penalty of the new branch, distributed with the
  flexible ``eta`` model.

The resulting topology is then embedded optimally into the routing graph by
:class:`repro.baselines.embedding.TopologyEmbedder`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.embedding import TopologyEmbedder
from repro.baselines.topology import PlaneTopology, closest_point_on_edge
from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.grid.geometry import PlanarPoint, planar_l1

__all__ = ["prim_dijkstra_topology", "PrimDijkstraOracle"]


def _subtree_sink_weight(
    topology: PlaneTopology, node: int, sink_weight_of_node: Dict[int, float]
) -> float:
    """Total sink delay weight in the subtree of ``node``."""
    return sum(sink_weight_of_node.get(n, 0.0) for n in topology.subtree_nodes(node))


def prim_dijkstra_topology(
    root: PlanarPoint,
    sinks: Sequence[PlanarPoint],
    weights: Optional[Sequence[float]] = None,
    *,
    alpha: Optional[float] = None,
    cost_rate: float = 1.0,
    delay_rate: float = 1.0,
    bifurcation: Optional[BifurcationModel] = None,
) -> PlaneTopology:
    """Build a Prim-Dijkstra topology.

    Parameters
    ----------
    root, sinks:
        Planar positions of the root and the sinks.
    weights:
        Sink delay weights (defaults to 1 for every sink).
    alpha:
        When given, the classic Prim-Dijkstra trade-off is used and the
        other rate parameters are ignored.
    cost_rate:
        Congestion cost per tile of new wire (weighted mode).
    delay_rate:
        Delay per tile of wire (weighted mode).
    bifurcation:
        Bifurcation penalty model; the penalty of creating a new branch is
        added to the attachment key (weighted mode).
    """
    root = (int(root[0]), int(root[1]))
    sinks = [(int(s[0]), int(s[1])) for s in sinks]
    weights = [1.0] * len(sinks) if weights is None else [float(w) for w in weights]
    if len(weights) != len(sinks):
        raise ValueError("weights must align with sinks")
    bifurcation = bifurcation or BifurcationModel.disabled()

    topology = PlaneTopology([root], [None], [])
    sink_nodes: List[Optional[int]] = [None] * len(sinks)
    sink_weight_of_node: Dict[int, float] = {}
    remaining = list(range(len(sinks)))

    def path_length_to(node: int) -> int:
        return topology.path_length(node)

    while remaining:
        best: Optional[Tuple[float, int, PlanarPoint, Tuple[str, int]]] = None
        for idx in remaining:
            point = sinks[idx]
            weight = weights[idx]
            # Attachment at an existing node.
            for node, pos in enumerate(topology.positions):
                dist = planar_l1(point, pos)
                key = _attachment_key(
                    dist,
                    path_length_to(node),
                    weight,
                    alpha,
                    cost_rate,
                    delay_rate,
                    bifurcation,
                    _subtree_sink_weight(topology, node, sink_weight_of_node),
                )
                if best is None or key < best[0]:
                    best = (key, idx, pos, ("node", node))
            # Attachment on the interior of an edge.
            for node, parent in enumerate(topology.parents):
                if parent is None:
                    continue
                attach, dist = closest_point_on_edge(
                    point, topology.positions[node], topology.positions[parent]
                )
                plen = path_length_to(parent) + planar_l1(topology.positions[parent], attach)
                key = _attachment_key(
                    dist,
                    plen,
                    weight,
                    alpha,
                    cost_rate,
                    delay_rate,
                    bifurcation,
                    _subtree_sink_weight(topology, node, sink_weight_of_node),
                )
                if best is None or key < best[0]:
                    best = (key, idx, attach, ("edge", node))
        assert best is not None
        _, idx, attach, (kind, index) = best
        point = sinks[idx]
        if kind == "node":
            steiner = index
        else:
            child = index
            parent_of_child = topology.parents[child]
            assert parent_of_child is not None
            if attach == topology.positions[child]:
                steiner = child
            elif attach == topology.positions[parent_of_child]:
                steiner = parent_of_child
            else:
                steiner = topology.add_node(attach, parent_of_child)
                topology.reattach(child, steiner)
        if topology.positions[steiner] == point:
            sink_node = steiner
        else:
            sink_node = topology.add_node(point, steiner)
        sink_nodes[idx] = sink_node
        sink_weight_of_node[sink_node] = sink_weight_of_node.get(sink_node, 0.0) + weights[idx]
        remaining.remove(idx)

    topology.sink_nodes = [n for n in sink_nodes if n is not None]
    return topology


def _attachment_key(
    dist: float,
    path_length: float,
    weight: float,
    alpha: Optional[float],
    cost_rate: float,
    delay_rate: float,
    bifurcation: BifurcationModel,
    existing_subtree_weight: float,
) -> float:
    """Key of one candidate attachment (smaller is better)."""
    if alpha is not None:
        return dist + alpha * path_length
    key = cost_rate * dist + weight * delay_rate * (path_length + dist)
    if bifurcation.enabled:
        key += bifurcation.beta(weight, existing_subtree_weight)
    return key


class PrimDijkstraOracle(SteinerOracle):
    """The ``PD`` baseline: Prim-Dijkstra topology + optimal embedding."""

    name = "PD"

    def __init__(
        self,
        embedder: Optional[TopologyEmbedder] = None,
        alpha: Optional[float] = None,
    ) -> None:
        self.embedder = embedder or TopologyEmbedder()
        self.alpha = alpha

    def build(
        self, instance: SteinerInstance, rng: Optional[random.Random] = None
    ) -> EmbeddedTree:
        graph = instance.graph
        root = graph.node_planar(instance.root)
        sinks = [graph.node_planar(s) for s in instance.sinks]
        routing = ~graph.edge_is_via
        cost_rate = float(np.min(instance.cost[routing])) if routing.any() else 1.0
        delay_rate = graph.delay_model.fastest_delay_per_tile()
        topology = prim_dijkstra_topology(
            root,
            sinks,
            instance.weights,
            alpha=self.alpha,
            cost_rate=cost_rate,
            delay_rate=delay_rate,
            bifurcation=instance.bifurcation,
        )
        return self.embedder.embed(instance, topology, method=self.name)
