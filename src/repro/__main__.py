"""Command-line entry point: one-shot routing plus service subcommands.

The flat flag form routes one chip of the synthetic suite and prints the
Table IV/V style result row; the subcommand form talks to the routing
service (:mod:`repro.serve`).

Examples::

    python -m repro --chip c1
    python -m repro --chip c3 --oracle L1 --rounds 3
    python -m repro --chip c1 --backend process --workers 4 --cache
    python -m repro --chip c2 --checkpoint run.ckpt --resume
    python -m repro --chip c2 --checkpoint run.ckpt --checkpoint-every 2
    python -m repro --chip c1 --shards 2 --shard-workers 2 \\
        --inject kill-region-worker:round=2
    python -m repro route --chip c8 --shards 4
    python -m repro route --chip c8 --shards 4 --shard-workers 2
    python -m repro --list-chips

    python -m repro serve --port 8642
    python -m repro submit --chip c1 --net-scale 0.2 --session s1 --wait
    python -m repro submit --chip c8 --shards 4 --wait
    python -m repro eco --session s1 --ops '[{"op": "move_pin", ...}]' --wait
    python -m repro status --all
    python -m repro watch JOB_ID
    python -m repro history JOB_ID
    python -m repro health
    python -m repro metrics --format prometheus
    python -m repro trace summarize run.trace
    python -m repro trace export run.trace --format chrome -o run.json
    python -m repro soak --chip c1 --ops 60 --shards 2 \\
        --inject "kill-region-worker:round=2"
    python -m repro shutdown
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.engine.engine import EngineConfig
from repro.instances.chips import CHIP_SUITE, build_chip, chip_table
from repro.router.metrics import format_result_row
from repro.router.oracles import ORACLES, make_oracle
from repro.router.router import GlobalRouter, GlobalRouterConfig


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Timing-constrained global routing of a synthetic chip.",
    )
    parser.add_argument(
        "--chip",
        default="c1",
        choices=[spec.name for spec in CHIP_SUITE],
        help="chip of the synthetic suite (paper Table III analogue)",
    )
    parser.add_argument(
        "--oracle",
        default="CD",
        choices=sorted(ORACLES),
        help="Steiner tree oracle (CD = cost-distance, L1/SL/PD = baselines)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "process"],
        help="engine executor backend",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for the process backend (default: auto)",
    )
    parser.add_argument(
        "--scheduling",
        default="window",
        choices=["window", "bbox"],
        help="net batching policy",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the incremental re-route cache",
    )
    parser.add_argument(
        "--cache-scope",
        default="bbox",
        choices=["bbox", "global"],
        help=(
            "re-route cache signature scope: 'bbox' digests costs over each "
            "net's bounding region (fast, heuristic), 'global' digests the "
            "full cost vector (guaranteed bit-identical to running without "
            "--cache)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "route the chip as this many rectangular regions: interior nets "
            "run on per-region subgraphs, seam-crossing nets in a global "
            "stitch pass (1 = classic single-region flow)"
        ),
    )
    parser.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for the region-parallel shard pass: route the "
            "K region interiors of each round concurrently on a process "
            "pool (default/1 = serial; results are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--shard-parity",
        action="store_true",
        help=(
            "shard verification mode: route interior nets on the full graph "
            "and every net against the round-start snapshot, reproducing "
            "the unsharded router bit for bit at a full-round cost window"
        ),
    )
    parser.add_argument(
        "--rounds", type=_positive_int, default=2, help="resource-sharing rounds"
    )
    parser.add_argument("--seed", type=int, default=0, help="routing seed")
    parser.add_argument(
        "--net-scale",
        type=_positive_float,
        default=1.0,
        help="scale factor on the chip's net count (e.g. 0.3 for a smoke run)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full result record as JSON instead of a table row",
    )
    parser.add_argument(
        "--list-chips",
        action="store_true",
        help="print the chip suite parameters and exit",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a resumable checkpoint to PATH after every round",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "with --checkpoint: save every N rounds instead of every round "
            "(the final round is always saved)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint PATH when it exists",
    )
    parser.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "inject a fault for chaos testing, e.g. "
            "'kill-region-worker:round=2', 'kill-pool-worker', "
            "'slow-oracle:ms=20', 'drop-outcome', 'crash-run:round=1'; "
            "repeatable (see repro.faults)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a JSON-lines trace (round/region/batch spans, per-net "
            "events, final counters) to PATH; inspect it with "
            "'python -m repro trace summarize PATH'"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="stderr logging level for the repro.* logger tree",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "route":
        # Explicit alias of the flat one-shot flow: `python -m repro route ...`.
        argv = argv[1:]
    elif argv and argv[0] == "trace":
        # Trace-file analysis (`python -m repro trace summarize PATH`).
        from repro.obs.summary import main as trace_main

        return trace_main(argv[1:])
    elif argv and argv[0] == "soak":
        # ECO-stream endurance run under a fault plan (`python -m repro soak`).
        from repro.serve.soak import main as soak_main

        return soak_main(argv[1:])
    elif argv and not argv[0].startswith("-"):
        # A word-like first argument may be a service subcommand; the
        # authoritative list lives in serve/cli.py (imported lazily so the
        # one-shot flag form never pays for the serve layer).
        from repro.serve.cli import SERVE_COMMANDS, main as serve_main

        if argv[0] in SERVE_COMMANDS:
            return serve_main(argv)
    args = build_parser().parse_args(argv)
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.list_chips:
        for row in chip_table():
            print(
                f"{row['chip']:>4}  nets={row['nets']:<5} "
                f"layers={row['layers']:<3} grid={row['grid']}"
            )
        return 0

    if args.log_level is not None:
        from repro import obs

        obs.configure_logging(args.log_level)
    if args.trace is not None:
        from repro import obs

        obs.configure_tracing(args.trace)
    if args.inject:
        from repro import faults

        faults.install_plan(";".join(args.inject))

    spec = next(s for s in CHIP_SUITE if s.name == args.chip)
    if args.net_scale != 1.0:
        spec = spec.scaled(args.net_scale)
    graph, netlist = build_chip(spec)
    oracle = make_oracle(args.oracle)
    config = GlobalRouterConfig(
        num_rounds=args.rounds,
        seed=args.seed,
        engine=EngineConfig(
            backend=args.backend,
            num_workers=args.workers,
            scheduling=args.scheduling,
            reroute_cache=args.cache,
            cache_scope=args.cache_scope,
        ),
        shards=args.shards,
        shard_parity=args.shard_parity,
        shard_workers=args.shard_workers,
    )
    print(
        f"routing {spec.name}: {netlist.num_nets} nets on {graph} "
        f"[oracle={args.oracle} backend={args.backend} scheduling={args.scheduling}"
        f"{' cache' if args.cache else ''}"
        f"{f' shards={args.shards}' if args.shards > 1 else ''}"
        f"{f' shard-workers={args.shard_workers}' if args.shard_workers else ''}]",
        file=sys.stderr,
    )
    router = GlobalRouter(graph, netlist, oracle, config)
    if args.shards > 1:
        stats = router.engine.stats
        print(
            f"shards: {stats.num_regions} regions, interior nets "
            f"{list(stats.interior_nets)}, seam nets {stats.seam_nets}"
            f"{' (parity mode)' if stats.parity else ''}"
            f" [regions={router.engine.region_executor.backend}]",
            file=sys.stderr,
        )
    on_round_end = None
    if args.checkpoint:
        from repro.serve.checkpoint import checkpoint_every_hook, resume_router

        if args.resume and resume_router(router, args.checkpoint):
            print(
                f"resumed from {args.checkpoint} at round "
                f"{router.rounds_completed}/{config.num_rounds}",
                file=sys.stderr,
            )
        on_round_end = checkpoint_every_hook(args.checkpoint, args.checkpoint_every)
    try:
        result = router.run(on_round_end=on_round_end)
    finally:
        if args.trace is not None:
            from repro import obs

            obs.close_tracing(obs.default_registry().snapshot())
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=float))
    else:
        print(format_result_row(result))
    if router.engine.cache is not None:
        stats = router.engine.cache.stats
        print(
            f"re-route cache: {stats.hits}/{stats.lookups} hits "
            f"({100.0 * stats.hit_rate:.1f}%)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
