"""Command-line entry point: route one chip of the synthetic suite.

This is the surface a served deployment would wrap: pick a chip, a Steiner
oracle, and an engine backend, run the timing-constrained global routing
flow, and print the Table IV/V style result row.

Examples::

    python -m repro --chip c1
    python -m repro --chip c3 --oracle L1 --rounds 3
    python -m repro --chip c1 --backend process --workers 4 --cache
    python -m repro --list-chips
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.baselines.prim_dijkstra import PrimDijkstraOracle
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.baselines.shallow_light import ShallowLightOracle
from repro.core.cost_distance import CostDistanceSolver
from repro.core.oracle import SteinerOracle
from repro.engine.engine import EngineConfig
from repro.instances.chips import CHIP_SUITE, build_chip, chip_table
from repro.router.metrics import format_result_row
from repro.router.router import GlobalRouter, GlobalRouterConfig

ORACLES = {
    "CD": CostDistanceSolver,
    "L1": RectilinearSteinerOracle,
    "SL": ShallowLightOracle,
    "PD": PrimDijkstraOracle,
}


def make_oracle(name: str) -> SteinerOracle:
    """Instantiate a Steiner oracle by its table abbreviation."""
    try:
        return ORACLES[name]()
    except KeyError:
        raise ValueError(f"unknown oracle {name!r}; choose from {sorted(ORACLES)}")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Timing-constrained global routing of a synthetic chip.",
    )
    parser.add_argument(
        "--chip",
        default="c1",
        choices=[spec.name for spec in CHIP_SUITE],
        help="chip of the synthetic suite (paper Table III analogue)",
    )
    parser.add_argument(
        "--oracle",
        default="CD",
        choices=sorted(ORACLES),
        help="Steiner tree oracle (CD = cost-distance, L1/SL/PD = baselines)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "process"],
        help="engine executor backend",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for the process backend (default: auto)",
    )
    parser.add_argument(
        "--scheduling",
        default="window",
        choices=["window", "bbox"],
        help="net batching policy",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the incremental re-route cache",
    )
    parser.add_argument(
        "--cache-scope",
        default="bbox",
        choices=["bbox", "global"],
        help=(
            "re-route cache signature scope: 'bbox' digests costs over each "
            "net's bounding region (fast, heuristic), 'global' digests the "
            "full cost vector (guaranteed bit-identical to running without "
            "--cache)"
        ),
    )
    parser.add_argument(
        "--rounds", type=_positive_int, default=2, help="resource-sharing rounds"
    )
    parser.add_argument("--seed", type=int, default=0, help="routing seed")
    parser.add_argument(
        "--net-scale",
        type=_positive_float,
        default=1.0,
        help="scale factor on the chip's net count (e.g. 0.3 for a smoke run)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full result record as JSON instead of a table row",
    )
    parser.add_argument(
        "--list-chips",
        action="store_true",
        help="print the chip suite parameters and exit",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_chips:
        for row in chip_table():
            print(f"{row['chip']:>4}  nets={row['nets']:<5} layers={row['layers']:<3} grid={row['grid']}")
        return 0

    spec = next(s for s in CHIP_SUITE if s.name == args.chip)
    if args.net_scale != 1.0:
        spec = spec.scaled(args.net_scale)
    graph, netlist = build_chip(spec)
    oracle = make_oracle(args.oracle)
    config = GlobalRouterConfig(
        num_rounds=args.rounds,
        seed=args.seed,
        engine=EngineConfig(
            backend=args.backend,
            num_workers=args.workers,
            scheduling=args.scheduling,
            reroute_cache=args.cache,
            cache_scope=args.cache_scope,
        ),
    )
    print(
        f"routing {spec.name}: {netlist.num_nets} nets on {graph} "
        f"[oracle={args.oracle} backend={args.backend} scheduling={args.scheduling}"
        f"{' cache' if args.cache else ''}]",
        file=sys.stderr,
    )
    router = GlobalRouter(graph, netlist, oracle, config)
    result = router.run()
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=float))
    else:
        print(format_result_row(result))
    if router.engine.cache is not None:
        stats = router.engine.cache.stats
        print(
            f"re-route cache: {stats.hits}/{stats.lookups} hits "
            f"({100.0 * stats.hit_rate:.1f}%)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
