"""A small static timing analyser for routed netlists.

Timing-constrained global routing is judged by worst slack (WS) and total
negative slack (TNS).  This module provides a light-weight net-level timing
graph: nets are timing nodes, a *stage edge* says that a sink pin of one net
drives (through a cell with a fixed delay) the driver pin of another net.
Given per-sink net delays (from the routed Steiner trees and the linear delay
model), arrival times are propagated forward and required times backward
through the DAG, yielding per-sink slacks, WS and TNS.

The structure intentionally contains only what the global router needs: it is
not a full STA (no rise/fall, no slew propagation), matching the abstraction
level of the linear delay model used before buffering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["StaticTimingAnalysis", "TimingReport", "StageEdge"]

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class StageEdge:
    """A combinational stage: sink pin of one net drives the driver of another."""

    from_net: int
    from_sink: int
    to_net: int
    cell_delay: float


@dataclass
class TimingReport:
    """Result of one timing analysis run.

    Attributes
    ----------
    worst_slack:
        The minimum slack over all constrained endpoints (ps).
    total_negative_slack:
        Sum of all negative endpoint slacks (ps, non-positive).
    sink_slacks:
        ``sink_slacks[net][sink]`` -- slack of each sink pin (ps); sinks of
        unconstrained cones report ``+inf``.
    sink_arrivals:
        Arrival time at each sink pin (ps).
    sink_required:
        Required arrival time at each sink pin (ps, ``+inf`` if unconstrained).
    """

    worst_slack: float
    total_negative_slack: float
    sink_slacks: Dict[int, List[float]]
    sink_arrivals: Dict[int, List[float]]
    sink_required: Dict[int, List[float]]

    def slack(self, net: int, sink: int) -> float:
        """Slack of one sink pin."""
        return self.sink_slacks[net][sink]


class StaticTimingAnalysis:
    """Net-level timing graph with forward/backward propagation.

    Nets are referenced by integer indices ``0 .. num_nets - 1``; each net
    ``i`` has ``num_sinks[i]`` sink pins referenced by ``0 .. num_sinks-1``.
    """

    def __init__(self, num_sinks_per_net: Sequence[int]) -> None:
        self.num_sinks: List[int] = [int(n) for n in num_sinks_per_net]
        if any(n < 0 for n in self.num_sinks):
            raise ValueError("sink counts must be non-negative")
        self.num_nets = len(self.num_sinks)
        self.stage_edges: List[StageEdge] = []
        self.driver_arrival_offset: List[float] = [0.0] * self.num_nets
        self.endpoint_required: Dict[Tuple[int, int], float] = {}
        self._out_edges: Dict[int, List[StageEdge]] = {}
        self._in_edges: Dict[int, List[StageEdge]] = {}

    # ----------------------------------------------------------- structure
    def add_stage(self, from_net: int, from_sink: int, to_net: int, cell_delay: float) -> None:
        """Declare that sink ``from_sink`` of ``from_net`` drives ``to_net``."""
        self._check_sink(from_net, from_sink)
        self._check_net(to_net)
        if cell_delay < 0:
            raise ValueError("cell delay must be non-negative")
        edge = StageEdge(from_net, from_sink, to_net, cell_delay)
        self.stage_edges.append(edge)
        self._out_edges.setdefault(from_net, []).append(edge)
        self._in_edges.setdefault(to_net, []).append(edge)

    def set_driver_arrival(self, net: int, arrival: float) -> None:
        """Set the arrival-time offset at a net's driver (primary input delay)."""
        self._check_net(net)
        self.driver_arrival_offset[net] = float(arrival)

    def set_endpoint(self, net: int, sink: int, required: float) -> None:
        """Constrain a sink pin as a timing endpoint with a required time."""
        self._check_sink(net, sink)
        self.endpoint_required[(net, sink)] = float(required)

    def _check_net(self, net: int) -> None:
        if not 0 <= net < self.num_nets:
            raise IndexError(f"net index {net} out of range")

    def _check_sink(self, net: int, sink: int) -> None:
        self._check_net(net)
        if not 0 <= sink < self.num_sinks[net]:
            raise IndexError(f"sink {sink} out of range for net {net}")

    # ------------------------------------------------------------ analysis
    def topological_order(self) -> List[int]:
        """Nets in topological order of the stage DAG.

        Raises
        ------
        ValueError
            If the stage edges contain a combinational cycle.
        """
        indegree = [0] * self.num_nets
        for edge in self.stage_edges:
            indegree[edge.to_net] += 1
        queue = deque(i for i in range(self.num_nets) if indegree[i] == 0)
        order: List[int] = []
        while queue:
            net = queue.popleft()
            order.append(net)
            for edge in self._out_edges.get(net, []):
                indegree[edge.to_net] -= 1
                if indegree[edge.to_net] == 0:
                    queue.append(edge.to_net)
        if len(order) != self.num_nets:
            raise ValueError("stage edges contain a combinational cycle")
        return order

    def analyze(self, net_sink_delays: Dict[int, Sequence[float]]) -> TimingReport:
        """Run forward/backward propagation for the given net delays.

        Parameters
        ----------
        net_sink_delays:
            For every net index, the source-to-sink delay of each sink pin
            (ps).  Missing nets are treated as having zero delay.
        """
        order = self.topological_order()

        def delays_of(net: int) -> List[float]:
            values = net_sink_delays.get(net)
            if values is None:
                return [0.0] * self.num_sinks[net]
            values = list(values)
            if len(values) != self.num_sinks[net]:
                raise ValueError(
                    f"net {net} has {self.num_sinks[net]} sinks but "
                    f"{len(values)} delays were supplied"
                )
            return [float(v) for v in values]

        # Forward: arrival times.
        driver_arrival = [NEG_INF] * self.num_nets
        sink_arrivals: Dict[int, List[float]] = {}
        for net in order:
            incoming = self._in_edges.get(net, [])
            if incoming:
                arrival = NEG_INF
                for edge in incoming:
                    upstream = sink_arrivals[edge.from_net][edge.from_sink]
                    arrival = max(arrival, upstream + edge.cell_delay)
            else:
                arrival = 0.0
            arrival += self.driver_arrival_offset[net]
            driver_arrival[net] = arrival
            delays = delays_of(net)
            sink_arrivals[net] = [arrival + d for d in delays]

        # Backward: required times.
        sink_required: Dict[int, List[float]] = {
            net: [POS_INF] * self.num_sinks[net] for net in range(self.num_nets)
        }
        for (net, sink), required in self.endpoint_required.items():
            sink_required[net][sink] = min(sink_required[net][sink], required)
        for net in reversed(order):
            delays = delays_of(net)
            # Required time at the driver of `net`.
            driver_required = POS_INF
            for sink in range(self.num_sinks[net]):
                req = sink_required[net][sink]
                if req < POS_INF:
                    driver_required = min(driver_required, req - delays[sink])
            if driver_required == POS_INF:
                continue
            for edge in self._in_edges.get(net, []):
                upstream = driver_required - edge.cell_delay - self.driver_arrival_offset[net]
                current = sink_required[edge.from_net][edge.from_sink]
                sink_required[edge.from_net][edge.from_sink] = min(current, upstream)

        # Slacks.
        sink_slacks: Dict[int, List[float]] = {}
        worst = POS_INF
        tns = 0.0
        for net in range(self.num_nets):
            slacks = []
            for sink in range(self.num_sinks[net]):
                required = sink_required[net][sink]
                if required == POS_INF:
                    slacks.append(POS_INF)
                    continue
                slack = required - sink_arrivals[net][sink]
                slacks.append(slack)
            sink_slacks[net] = slacks
        for (net, sink), _ in self.endpoint_required.items():
            slack = sink_slacks[net][sink]
            worst = min(worst, slack)
            if slack < 0:
                tns += slack
        if worst == POS_INF:
            worst = 0.0
        return TimingReport(
            worst_slack=worst,
            total_negative_slack=tns,
            sink_slacks=sink_slacks,
            sink_arrivals=sink_arrivals,
            sink_required=sink_required,
        )
