"""Repeater-chain delay model.

The linear delay model used before buffer insertion assumes that every long
wire will eventually be broken into segments by optimally spaced repeaters.
Under the Elmore delay model, a repeatered segment of length ``l`` on a wire
with per-unit resistance ``r`` and capacitance ``c`` driven by a buffer with
drive resistance ``Rb``, input capacitance ``Cb`` and intrinsic delay ``tb``
has delay

    D(l) = tb + Rb * (c * l + Cb) + r * l * (c * l / 2 + Cb).

Minimising ``D(l) / l`` over ``l`` gives the optimal spacing

    l* = sqrt(2 * (tb + Rb * Cb) / (r * c))

and the per-unit delay of the optimally repeatered wire.  This is the
``d(e)`` coefficient of the linear delay model for each layer / wire type.

The bifurcation penalty ``dbif`` follows the paper (and Bartoschek et al.,
ISPD'06): it is "the delay increase when adding the input capacitance in the
middle of a single net, minimizing over all layers and wire types".  Adding a
branch at the midpoint of an optimally spaced segment places an extra buffer
input capacitance ``Cb`` at distance ``l*/2`` from the driving repeater, so
the delay of that segment increases by ``(Rb + r * l*/2) * Cb``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.grid.layers import Layer, LayerStack, WireType

__all__ = ["BufferParameters", "RepeaterChainModel"]


@dataclass(frozen=True)
class BufferParameters:
    """Electrical parameters of the repeater used for the linear delay model.

    Attributes
    ----------
    drive_resistance:
        Output resistance ``Rb`` of the repeater (ohm).
    input_capacitance:
        Input capacitance ``Cb`` of the repeater (fF).
    intrinsic_delay:
        Intrinsic (unloaded) delay ``tb`` of the repeater (ps).
    """

    drive_resistance: float = 120.0
    input_capacitance: float = 0.9
    intrinsic_delay: float = 6.0

    def __post_init__(self) -> None:
        if self.drive_resistance <= 0 or self.input_capacitance <= 0:
            raise ValueError("buffer parameters must be positive")
        if self.intrinsic_delay < 0:
            raise ValueError("intrinsic delay must be non-negative")


class RepeaterChainModel:
    """Derives linear-delay coefficients and ``dbif`` from repeater chains.

    Parameters
    ----------
    buffer:
        The repeater used for all chains.
    time_scale:
        Multiplies all RC products.  With resistance in ohm and capacitance
        in fF an RC product is in femtoseconds; the default scale of ``1e-3``
        reports delays in picoseconds.
    """

    def __init__(self, buffer: Optional[BufferParameters] = None, time_scale: float = 1e-3):
        self.buffer = buffer or BufferParameters()
        self.time_scale = time_scale

    # ------------------------------------------------------------------ core
    def optimal_spacing(self, layer: Layer, wire_type: WireType) -> float:
        """Optimal repeater spacing ``l*`` in tiles for ``(layer, wire_type)``."""
        r, c = layer.wire_rc(wire_type)
        b = self.buffer
        loading = b.intrinsic_delay / self.time_scale + b.drive_resistance * b.input_capacitance
        return math.sqrt(2.0 * loading / (r * c))

    def segment_delay(self, layer: Layer, wire_type: WireType, length: float) -> float:
        """Elmore delay (ps) of one repeatered segment of ``length`` tiles."""
        if length < 0:
            raise ValueError("segment length must be non-negative")
        r, c = layer.wire_rc(wire_type)
        b = self.buffer
        rc_part = (
            b.drive_resistance * (c * length + b.input_capacitance)
            + r * length * (c * length / 2.0 + b.input_capacitance)
        )
        return b.intrinsic_delay + self.time_scale * rc_part

    def delay_per_tile(self, layer: Layer, wire_type: WireType) -> float:
        """Per-tile delay (ps) of an optimally repeatered wire."""
        spacing = self.optimal_spacing(layer, wire_type)
        return self.segment_delay(layer, wire_type, spacing) / spacing

    def via_delay(self, layer: Layer) -> float:
        """Delay (ps) charged for a via leaving ``layer`` towards the next layer."""
        b = self.buffer
        load = layer.via_capacitance + b.input_capacitance
        return self.time_scale * 0.69 * layer.via_resistance * load

    # ---------------------------------------------------------------- dbif
    def branch_delay_increase(self, layer: Layer, wire_type: WireType) -> float:
        """Delay increase (ps) of adding a branch load mid-segment on this wire."""
        r, _ = layer.wire_rc(wire_type)
        b = self.buffer
        spacing = self.optimal_spacing(layer, wire_type)
        return self.time_scale * (b.drive_resistance + r * spacing / 2.0) * b.input_capacitance

    def bifurcation_penalty(self, stack: LayerStack) -> float:
        """Total bifurcation penalty ``dbif`` (ps) for a layer stack.

        Minimises the mid-net branch delay increase over all layers and wire
        types, following the paper's definition.
        """
        best = None
        for layer, wire_type in stack.wire_options():
            value = self.branch_delay_increase(layer, wire_type)
            if best is None or value < best:
                best = value
        if best is None:
            raise ValueError("layer stack has no wire options")
        return best

    # -------------------------------------------------------------- queries
    def fastest_option(self, stack: LayerStack) -> Tuple[Layer, WireType, float]:
        """Return ``(layer, wire_type, delay_per_tile)`` with the lowest per-tile delay."""
        best: Optional[Tuple[Layer, WireType, float]] = None
        for layer, wire_type in stack.wire_options():
            d = self.delay_per_tile(layer, wire_type)
            if best is None or d < best[2]:
                best = (layer, wire_type, d)
        if best is None:
            raise ValueError("layer stack has no wire options")
        return best
