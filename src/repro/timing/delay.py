"""Linear delay model over the routing graph.

The :class:`LinearDelayModel` turns the electrical layer stack into the
per-edge delay coefficients ``d(e)`` of the cost-distance objective: a
routing edge on layer ``z`` with wire type ``w`` costs
``delay_per_tile(z, w) * length`` picoseconds, and a via edge costs the
via delay of the lower of its two layers.

The model also exposes the quantities the practical enhancements of the
algorithm need: the fastest per-tile delay over the whole stack (used as an
admissible A* lower bound on the delay of any path of a given L1 length) and
the bifurcation penalty ``dbif`` derived from the repeater-chain model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.grid.layers import Layer, LayerStack, WireType
from repro.timing.repeater import BufferParameters, RepeaterChainModel

__all__ = ["LinearDelayModel"]


@dataclass
class LinearDelayModel:
    """Per-edge linear delay coefficients for a layer stack.

    Parameters
    ----------
    stack:
        The metal layer stack of the chip.
    buffer:
        Repeater parameters; defaults to :class:`BufferParameters`'s defaults.
    """

    stack: LayerStack
    buffer: Optional[BufferParameters] = None
    _chain: RepeaterChainModel = field(init=False, repr=False)
    _per_tile: Dict[Tuple[int, str], float] = field(init=False, repr=False, default_factory=dict)
    _via: Dict[int, float] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._chain = RepeaterChainModel(self.buffer)
        for layer in self.stack:
            for wire_type in layer.wire_types:
                self._per_tile[(layer.index, wire_type.name)] = self._chain.delay_per_tile(
                    layer, wire_type
                )
            self._via[layer.index] = self._chain.via_delay(layer)

    # ------------------------------------------------------------ per edge
    def wire_delay(self, layer_index: int, wire_type_name: str, length: float = 1.0) -> float:
        """Delay (ps) of a wire of ``length`` tiles on the given layer/wire type."""
        key = (layer_index, wire_type_name)
        if key not in self._per_tile:
            raise KeyError(f"unknown layer/wire type combination {key}")
        return self._per_tile[key] * length

    def via_delay(self, lower_layer_index: int) -> float:
        """Delay (ps) of a via between ``lower_layer_index`` and the layer above."""
        if lower_layer_index not in self._via:
            raise KeyError(f"unknown layer index {lower_layer_index}")
        return self._via[lower_layer_index]

    # ------------------------------------------------------------ summaries
    def fastest_delay_per_tile(self) -> float:
        """Smallest per-tile delay over all layers and wire types.

        Used as an admissible lower bound for goal-oriented path search: any
        path covering an L1 distance of ``k`` tiles has delay at least
        ``k * fastest_delay_per_tile()``.
        """
        return min(self._per_tile.values())

    def fastest_option(self) -> Tuple[Layer, WireType, float]:
        """The (layer, wire type, per-tile delay) with the lowest delay."""
        return self._chain.fastest_option(self.stack)

    def bifurcation_penalty(self) -> float:
        """The bifurcation penalty ``dbif`` (ps) for this stack."""
        return self._chain.bifurcation_penalty(self.stack)

    def repeater_model(self) -> RepeaterChainModel:
        """The underlying repeater-chain model."""
        return self._chain
