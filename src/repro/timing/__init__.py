"""Timing substrate: linear delay model, repeater chains, and a simple STA.

Before buffering, routers estimate signal delay with a *linear delay model*:
the delay of a wire is proportional to its length, with a per-unit-length
coefficient that depends on the layer and wire type (it models the delay of
an optimally repeatered wire).  This package provides

* :mod:`repro.timing.repeater` -- the repeater-chain model used to derive
  per-unit delays and the bifurcation penalty ``dbif``,
* :mod:`repro.timing.delay` -- the :class:`LinearDelayModel` that assigns a
  delay to every routing-graph edge, and
* :mod:`repro.timing.sta` -- a small static timing analyser computing worst
  slack (WS) and total negative slack (TNS) over routed netlists.
"""

from repro.timing.repeater import BufferParameters, RepeaterChainModel
from repro.timing.delay import LinearDelayModel
from repro.timing.sta import StaticTimingAnalysis, TimingReport

__all__ = [
    "BufferParameters",
    "RepeaterChainModel",
    "LinearDelayModel",
    "StaticTimingAnalysis",
    "TimingReport",
]
