"""Experiment drivers for the paper's evaluation.

Two experiments cover all five result tables:

* :func:`run_instance_comparison` -- paper Tables I and II: on a set of
  identical cost-distance Steiner instances, run every algorithm, measure the
  relative objective increase against the best of the four, and average per
  sink-count bucket.
* :func:`run_global_routing` -- paper Tables IV and V: run the full
  timing-constrained global routing flow on every chip of the suite with each
  Steiner oracle and collect WS / TNS / ACE4 / wire length / vias / walltime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.prim_dijkstra import PrimDijkstraOracle
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.baselines.shallow_light import ShallowLightOracle
from repro.core.cost_distance import CostDistanceSolver
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree
from repro.core.oracle import SteinerOracle
from repro.instances.chips import ChipSpec, build_chip
from repro.router.metrics import RoutingResult
from repro.router.router import GlobalRouter, GlobalRouterConfig

__all__ = [
    "SINK_BUCKETS",
    "InstanceComparisonRow",
    "default_oracles",
    "bucket_of",
    "run_instance_comparison",
    "run_global_routing",
]

#: The sink-count buckets of paper Tables I/II.
SINK_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("3-5", 3, 5),
    ("6-14", 6, 14),
    ("15-29", 15, 29),
    (">=30", 30, 10**9),
)


def default_oracles() -> List[SteinerOracle]:
    """The four algorithms compared in the paper: L1, SL, PD and CD."""
    return [
        RectilinearSteinerOracle(),
        ShallowLightOracle(),
        PrimDijkstraOracle(),
        CostDistanceSolver(),
    ]


def bucket_of(num_sinks: int) -> Optional[str]:
    """Name of the Tables I/II bucket for a sink count (None if below 3)."""
    for name, lo, hi in SINK_BUCKETS:
        if lo <= num_sinks <= hi:
            return name
    return None


@dataclass
class InstanceComparisonRow:
    """One row of the instance comparison (one sink-count bucket)."""

    bucket: str
    num_instances: int
    #: method name -> average relative objective increase over the best of
    #: the four methods, in percent (the paper's "average cost increase
    #: compared to minimum").
    average_increase: Dict[str, float] = field(default_factory=dict)


def run_instance_comparison(
    instances: Sequence[SteinerInstance],
    oracles: Optional[Sequence[SteinerOracle]] = None,
    seed: int = 0,
) -> List[InstanceComparisonRow]:
    """Run every oracle on every instance and aggregate per sink bucket.

    Mirrors paper Tables I/II: for each instance the objective (1) of every
    method is compared against the best of the four, and the relative
    increases are averaged per bucket.  A final ``"all"`` row aggregates over
    every instance.
    """
    oracles = list(oracles) if oracles is not None else default_oracles()
    per_bucket: Dict[str, List[Dict[str, float]]] = {name: [] for name, _, _ in SINK_BUCKETS}
    per_bucket["all"] = []

    for index, instance in enumerate(instances):
        bucket = bucket_of(instance.num_sinks)
        objectives: Dict[str, float] = {}
        for oracle in oracles:
            rng = random.Random((seed, index, oracle.name).__hash__())
            tree = oracle.build(instance, rng)
            breakdown = evaluate_tree(instance, tree)
            objectives[oracle.name] = breakdown.total
        best = min(objectives.values())
        if best <= 0:
            increases = {name: 0.0 for name in objectives}
        else:
            increases = {
                name: 100.0 * (value - best) / best for name, value in objectives.items()
            }
        if bucket is not None:
            per_bucket[bucket].append(increases)
        per_bucket["all"].append(increases)

    rows: List[InstanceComparisonRow] = []
    order = [name for name, _, _ in SINK_BUCKETS] + ["all"]
    for bucket in order:
        entries = per_bucket[bucket]
        averages: Dict[str, float] = {}
        if entries:
            for oracle in oracles:
                averages[oracle.name] = sum(e[oracle.name] for e in entries) / len(entries)
        rows.append(
            InstanceComparisonRow(
                bucket=bucket,
                num_instances=len(entries),
                average_increase=averages,
            )
        )
    return rows


def run_global_routing(
    chips: Sequence[ChipSpec],
    oracles: Optional[Sequence[SteinerOracle]] = None,
    router_config: Optional[GlobalRouterConfig] = None,
) -> List[RoutingResult]:
    """Route every chip with every oracle (paper Tables IV/V).

    Returns one :class:`RoutingResult` per (chip, method) pair, in chip-major
    order.  The caller controls ``dbif`` through ``router_config`` (``0.0``
    for Table IV, ``None``/positive for Table V).
    """
    oracles = list(oracles) if oracles is not None else default_oracles()
    router_config = router_config or GlobalRouterConfig()
    results: List[RoutingResult] = []
    for spec in chips:
        graph, netlist = build_chip(spec)
        for oracle in oracles:
            router = GlobalRouter(graph, netlist, oracle, router_config)
            results.append(router.run())
    return results
