"""Reproduction of the paper's figures.

The figures are illustrative rather than quantitative, so each helper returns
the *data* behind the figure (and a small ASCII rendering where useful):

* **Figure 1** -- two trees for the same net, one built without and one with
  bifurcation penalties; the penalised tree has fewer bifurcations on the
  paths from the root to the critical sinks.
* **Figure 2** -- the delay trade-off at a branching: how the bifurcation
  penalty may be shifted between the two branches (the ``eta`` model), shown
  on the repeater-chain delay model.
* **Figure 3** -- the course of the cost-distance algorithm on a small net:
  per-iteration active terminals, the merged pair and the inserted Steiner
  vertex.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


from repro.core.bifurcation import BifurcationModel
from repro.core.cost_distance import CostDistanceConfig, CostDistanceSolver, MergeRecord
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree
from repro.grid.graph import RoutingGraph, build_grid_graph
from repro.timing.repeater import RepeaterChainModel

__all__ = [
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "figure1_bifurcation_comparison",
    "figure2_split_tradeoff",
    "figure3_algorithm_trace",
]


# --------------------------------------------------------------------------
# Figure 1
# --------------------------------------------------------------------------


@dataclass
class Figure1Result:
    """Comparison of trees built with and without bifurcation penalties."""

    critical_bifurcations_without: int
    critical_bifurcations_with: int
    critical_delay_without: float
    critical_delay_with: float
    objective_without: float
    objective_with: float


def _critical_path_bifurcations(instance: SteinerInstance, tree) -> Tuple[int, float]:
    """Number of branchings and delay on the path to the heaviest sink."""
    arb = tree.arborescence()
    critical_index = max(range(instance.num_sinks), key=lambda i: instance.weights[i])
    critical_sink = instance.sinks[critical_index]
    breakdown = evaluate_tree(instance, tree)
    children = arb.children
    count = 0
    node = critical_sink
    while node != arb.root:
        parent = arb.parent_node[node]
        if len(children.get(parent, [])) >= 2:
            count += len(children[parent]) - 1
        node = parent
    return count, breakdown.sink_delays[critical_index]


def figure1_bifurcation_comparison(
    graph: Optional[RoutingGraph] = None,
    num_sinks: int = 12,
    dbif: float = 4.0,
    seed: int = 7,
) -> Figure1Result:
    """Build the same net with and without bifurcation penalties (Figure 1).

    With penalties enabled the algorithm avoids branchings on the path from
    the root to the critical (heavily weighted) sinks.
    """
    graph = graph or build_grid_graph(16, 16, 6)
    rng = random.Random(seed)
    root = graph.node_index(rng.randrange(graph.nx), rng.randrange(graph.ny), 0)
    sinks = [
        graph.node_index(rng.randrange(graph.nx), rng.randrange(graph.ny), 0)
        for _ in range(num_sinks)
    ]
    weights = [rng.uniform(0.02, 0.1) for _ in sinks]
    # Make one sink clearly critical, like the red sinks of Figure 1.
    weights[0] = 2.0

    def build(with_penalty: bool):
        bifurcation = BifurcationModel(dbif=dbif if with_penalty else 0.0, eta=0.25)
        instance = SteinerInstance(
            graph, root, sinks, weights, graph.base_cost_array(), graph.delay_array(),
            bifurcation,
        )
        solver = CostDistanceSolver()
        tree = solver.build(instance, random.Random(seed))
        return instance, tree

    inst_without, tree_without = build(False)
    inst_with, tree_with = build(True)
    bif_without, delay_without = _critical_path_bifurcations(inst_without, tree_without)
    bif_with, delay_with = _critical_path_bifurcations(inst_with, tree_with)
    return Figure1Result(
        critical_bifurcations_without=bif_without,
        critical_bifurcations_with=bif_with,
        critical_delay_without=delay_without,
        critical_delay_with=delay_with,
        objective_without=evaluate_tree(inst_without, tree_without).total,
        objective_with=evaluate_tree(inst_with, tree_with).total,
    )


# --------------------------------------------------------------------------
# Figure 2
# --------------------------------------------------------------------------


@dataclass
class Figure2Result:
    """Delay split options at a branching (Figure 2)."""

    dbif: float
    #: (lambda_x, weighted_penalty) samples over the allowed split range.
    split_samples: List[Tuple[float, float]]
    optimal_lambda_heavy: float
    even_split_penalty: float
    optimal_penalty: float


def figure2_split_tradeoff(
    weight_heavy: float = 2.0,
    weight_light: float = 0.5,
    dbif: Optional[float] = None,
    eta: float = 0.25,
    num_samples: int = 11,
) -> Figure2Result:
    """Evaluate the weighted penalty for different branch splits (Figure 2).

    The figure illustrates that buffering can shift the extra delay of a
    branching between the two branches; for the weighted objective the best
    split pushes the minimum share ``eta`` onto the heavier branch.
    """
    if dbif is None:
        chain = RepeaterChainModel()
        from repro.grid.layers import default_layer_stack

        dbif = chain.bifurcation_penalty(default_layer_stack(8))
    model = BifurcationModel(dbif=dbif, eta=eta)
    samples: List[Tuple[float, float]] = []
    for i in range(num_samples):
        lam_heavy = eta + (1.0 - 2.0 * eta) * i / (num_samples - 1)
        lam_light = 1.0 - lam_heavy
        weighted = weight_heavy * lam_heavy * dbif + weight_light * lam_light * dbif
        samples.append((lam_heavy, weighted))
    lam_h, lam_l = model.split(weight_heavy, weight_light)
    optimal = weight_heavy * lam_h * dbif + weight_light * lam_l * dbif
    even = 0.5 * dbif * (weight_heavy + weight_light)
    return Figure2Result(
        dbif=dbif,
        split_samples=samples,
        optimal_lambda_heavy=lam_h,
        even_split_penalty=even,
        optimal_penalty=optimal,
    )


# --------------------------------------------------------------------------
# Figure 3
# --------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Iteration-by-iteration trace of the algorithm (Figure 3)."""

    merges: List[MergeRecord]
    num_root_merges: int
    num_sink_merges: int
    ascii_art: str


def figure3_algorithm_trace(
    graph: Optional[RoutingGraph] = None,
    num_sinks: int = 5,
    seed: int = 3,
    dbif: float = 0.0,
) -> Figure3Result:
    """Trace the algorithm on a small net, as visualised in Figure 3."""
    graph = graph or build_grid_graph(12, 12, 4)
    rng = random.Random(seed)
    root = graph.node_index(1, graph.ny // 2, 0)
    sinks = [
        graph.node_index(rng.randrange(graph.nx), rng.randrange(graph.ny), 0)
        for _ in range(num_sinks)
    ]
    weights = [rng.choice([0.2, 0.5, 1.0, 2.0]) for _ in sinks]
    instance = SteinerInstance(
        graph, root, sinks, weights, graph.base_cost_array(), graph.delay_array(),
        BifurcationModel(dbif=dbif, eta=0.25),
    )
    solver = CostDistanceSolver(CostDistanceConfig(record_trace=True))
    result = solver.solve_with_details(instance, random.Random(seed))

    lines = []
    for record in result.merges:
        kind = "root merge" if record.is_root_merge else "sink merge"
        src = graph.node_point(record.source_node)
        dst = graph.node_point(record.target_node)
        lines.append(
            f"iteration {record.iteration}: {kind} {src} (w={record.source_weight:.2f}) "
            f"-> {dst}, {len(record.path_edges)} edges, "
            f"{record.active_after} active terminals remain"
        )
    return Figure3Result(
        merges=result.merges,
        num_root_merges=sum(1 for m in result.merges if m.is_root_merge),
        num_sink_merges=sum(1 for m in result.merges if not m.is_root_merge),
        ascii_art="\n".join(lines),
    )
