"""Experiment harness and table/figure reproduction helpers.

* :mod:`repro.analysis.experiments` -- runs the instance-level comparison of
  paper Tables I/II and the global routing comparison of Tables IV/V.
* :mod:`repro.analysis.tables` -- formats the results as text tables in the
  paper's layout.
* :mod:`repro.analysis.figures` -- reproduces the data behind Figures 1-3
  (bifurcation comparison, branch-split trade-off, algorithm trace).
"""

from repro.analysis.experiments import (
    InstanceComparisonRow,
    default_oracles,
    run_instance_comparison,
    run_global_routing,
)
from repro.analysis.tables import (
    format_instance_comparison,
    format_routing_results,
    format_chip_table,
)
from repro.analysis.figures import (
    figure1_bifurcation_comparison,
    figure2_split_tradeoff,
    figure3_algorithm_trace,
)

__all__ = [
    "InstanceComparisonRow",
    "default_oracles",
    "run_instance_comparison",
    "run_global_routing",
    "format_instance_comparison",
    "format_routing_results",
    "format_chip_table",
    "figure1_bifurcation_comparison",
    "figure2_split_tradeoff",
    "figure3_algorithm_trace",
]
