"""Text formatting of the reproduced tables.

The formatters print the same rows the paper reports so the benchmark output
can be compared side by side with Tables I-V.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.experiments import InstanceComparisonRow
from repro.router.metrics import RoutingResult

__all__ = [
    "format_instance_comparison",
    "format_routing_results",
    "format_chip_table",
]


def format_instance_comparison(
    rows: Sequence[InstanceComparisonRow],
    methods: Sequence[str] = ("L1", "SL", "PD", "CD"),
    title: str = "Average cost increase compared to minimum",
) -> str:
    """Format Tables I/II: average objective increase per sink bucket."""
    lines = [title]
    header = f"{'|S|':>6} {'#instances':>11} " + " ".join(f"{m:>8}" for m in methods)
    lines.append(header)
    for row in rows:
        cells = []
        for method in methods:
            value = row.average_increase.get(method)
            cells.append(f"{value:7.2f}%" if value is not None else f"{'-':>8}")
        lines.append(f"{row.bucket:>6} {row.num_instances:>11} " + " ".join(cells))
    return "\n".join(lines)


def format_routing_results(
    results: Sequence[RoutingResult],
    title: str = "Timing-constrained global routing results",
) -> str:
    """Format Tables IV/V: per chip and method WS/TNS/ACE4/WL/vias/walltime.

    A summary block (sum of WS/TNS/WL/vias, mean ACE4, total walltime per
    method, like the paper's ``all`` rows) is appended.
    """
    lines = [title]
    header = (
        f"{'Chip':>5} {'Run':>3} {'WS[ps]':>10} {'TNS[ps]':>13} {'ACE4[%]':>8} "
        f"{'WL':>10} {'Vias':>9} {'Walltime[s]':>12}"
    )
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.chip:>5} {result.method:>3} {result.worst_slack:10.1f} "
            f"{result.total_negative_slack:13.1f} {result.ace4:8.2f} "
            f"{result.wire_length:10.1f} {result.via_count:9d} "
            f"{result.walltime_seconds:12.2f}"
        )

    methods: List[str] = []
    for result in results:
        if result.method not in methods:
            methods.append(result.method)
    lines.append("-" * len(header))
    for method in methods:
        rows = [r for r in results if r.method == method]
        if not rows:
            continue
        lines.append(
            f"{'all':>5} {method:>3} {sum(r.worst_slack for r in rows):10.1f} "
            f"{sum(r.total_negative_slack for r in rows):13.1f} "
            f"{sum(r.ace4 for r in rows) / len(rows):8.2f} "
            f"{sum(r.wire_length for r in rows):10.1f} "
            f"{sum(r.via_count for r in rows):9d} "
            f"{sum(r.walltime_seconds for r in rows):12.2f}"
        )
    return "\n".join(lines)


def format_chip_table(rows: Iterable[Dict[str, object]]) -> str:
    """Format Table III: the chip suite parameters."""
    lines = ["Instance parameters (synthetic 5nm-class suite)"]
    lines.append(f"{'Chip':>5} {'#nets':>7} {'#layers':>8} {'grid':>9}")
    for row in rows:
        lines.append(
            f"{str(row['chip']):>5} {int(row['nets']):>7} {int(row['layers']):>8} "
            f"{str(row['grid']):>9}"
        )
    return "\n".join(lines)
