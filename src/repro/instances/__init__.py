"""Synthetic chip and Steiner-instance generators.

The paper evaluates on eight industrial 5nm designs (Table III) which are not
public.  This package generates synthetic analogues with the same *structure*
-- clustered pins, realistic net size distributions, multi-stage timing paths,
7 to 15 metal layers -- at a scale a pure-Python implementation can route in
minutes.  The substitution is documented in DESIGN.md.
"""

from repro.instances.generator import (
    NetlistGeneratorConfig,
    generate_netlist,
    generate_steiner_instances,
)
from repro.instances.chips import ChipSpec, CHIP_SUITE, build_chip, chip_table, smoke_chip
from repro.instances.eco import (
    AddNet,
    AddSink,
    EcoOp,
    EcoResult,
    MovePin,
    RemoveNet,
    RemoveSink,
    ReweightSink,
    apply_eco,
    parse_ops,
)
from repro.instances.eco_stream import EcoStreamConfig, generate_eco_stream

__all__ = [
    "NetlistGeneratorConfig",
    "generate_netlist",
    "generate_steiner_instances",
    "ChipSpec",
    "CHIP_SUITE",
    "build_chip",
    "chip_table",
    "smoke_chip",
    "EcoOp",
    "MovePin",
    "AddSink",
    "RemoveSink",
    "AddNet",
    "RemoveNet",
    "ReweightSink",
    "EcoResult",
    "apply_eco",
    "parse_ops",
    "EcoStreamConfig",
    "generate_eco_stream",
]
