"""The synthetic chip suite (analogue of paper Table III).

The paper's eight industrial designs ``c1`` .. ``c8`` range from 49k to 941k
nets on 7 to 15 metal layers.  The suite below preserves the *relative*
structure -- increasing net counts, the same layer counts, a mix of
"microprocessor-like" (dense, small nets) and "ASIC-like" (spread, larger
nets) units -- at a scale where a pure-Python router finishes in minutes.
Every chip is fully deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.grid.graph import RoutingGraph, build_grid_graph
from repro.instances.generator import NetlistGeneratorConfig, generate_netlist
from repro.router.netlist import Netlist

__all__ = [
    "ChipSpec",
    "CHIP_SUITE",
    "build_chip",
    "chip_table",
    "smoke_chip",
    "large_chip",
]


@dataclass(frozen=True)
class ChipSpec:
    """Parameters of one synthetic chip."""

    name: str
    grid_x: int
    grid_y: int
    num_layers: int
    num_nets: int
    seed: int
    cluster_fraction: float = 0.75
    period_tightness: float = 0.75

    def scaled(self, net_scale: float) -> "ChipSpec":
        """A copy with the net count scaled by ``net_scale`` (at least 10 nets)."""
        return ChipSpec(
            name=self.name,
            grid_x=self.grid_x,
            grid_y=self.grid_y,
            num_layers=self.num_layers,
            num_nets=max(10, int(round(self.num_nets * net_scale))),
            seed=self.seed,
            cluster_fraction=self.cluster_fraction,
            period_tightness=self.period_tightness,
        )


#: The synthetic analogue of paper Table III.  Layer counts match the paper;
#: net counts keep the same ordering (c1 smallest ... c8 largest) at a scale
#: a pure-Python router handles in minutes, with pin densities chosen so the
#: routed designs land in the paper's congestion regime (ACE4 around 85-92%).
CHIP_SUITE: Tuple[ChipSpec, ...] = (
    ChipSpec("c1", 14, 14, 8, 45, seed=11),
    ChipSpec("c2", 15, 15, 9, 55, seed=12),
    ChipSpec("c3", 16, 16, 7, 70, seed=13, cluster_fraction=0.65),
    ChipSpec("c4", 17, 17, 15, 75, seed=14),
    ChipSpec("c5", 18, 18, 9, 85, seed=15, cluster_fraction=0.7),
    ChipSpec("c6", 19, 19, 9, 95, seed=16, cluster_fraction=0.7),
    ChipSpec("c7", 20, 20, 15, 105, seed=17),
    ChipSpec("c8", 22, 22, 15, 125, seed=18, cluster_fraction=0.65),
)


def build_chip(spec: ChipSpec) -> Tuple[RoutingGraph, Netlist]:
    """Build the routing graph and netlist of one chip."""
    graph = build_grid_graph(spec.grid_x, spec.grid_y, spec.num_layers)
    config = NetlistGeneratorConfig(
        num_nets=spec.num_nets,
        cluster_fraction=spec.cluster_fraction,
        period_tightness=spec.period_tightness,
    )
    netlist = generate_netlist(graph, config, seed=spec.seed, name=spec.name)
    return graph, netlist


def smoke_chip(net_scale: float = 0.3) -> ChipSpec:
    """The suite's smallest chip (``c1``) scaled down for smoke runs.

    Shared by quick engine-parity checks and the scaling benchmark so they
    all exercise the same deterministic instance.
    """
    return CHIP_SUITE[0].scaled(net_scale)


#: Net-size mix of the large synthetic chip: overwhelmingly small nets, the
#: regime of real large designs (and the one where divide-and-conquer
#: sharding pays -- high-fanout die-spanning nets stay in the seam pass).
LARGE_CHIP_SIZES: Tuple[Tuple[int, int, float], ...] = (
    (1, 2, 0.55),
    (3, 5, 0.30),
    (6, 9, 0.15),
)


def large_chip(net_scale: float = 1.0, seed: int = 33):
    """The large synthetic chip used by the shard benchmarks.

    A 48x48 tile die on the full 15-layer stack (the layer count of the
    paper's biggest units c4/c7/c8) with 460 tightly clustered,
    mostly-small nets.  Returns ``(graph, netlist)``; ``net_scale`` scales
    the net count like :meth:`ChipSpec.scaled`.
    """
    graph = build_grid_graph(48, 48, 15)
    config = NetlistGeneratorConfig(
        num_nets=max(10, int(round(460 * net_scale))),
        size_distribution=LARGE_CHIP_SIZES,
        cluster_fraction=1.0,
        cluster_radius_small=3,
        cluster_radius_large=5,
    )
    netlist = generate_netlist(graph, config, seed=seed, name="xl")
    return graph, netlist


def chip_table(suite: Optional[Tuple[ChipSpec, ...]] = None) -> List[Dict[str, object]]:
    """Rows of the instance-parameter table (paper Table III)."""
    suite = suite or CHIP_SUITE
    rows: List[Dict[str, object]] = []
    for spec in suite:
        rows.append(
            {
                "chip": spec.name,
                "nets": spec.num_nets,
                "layers": spec.num_layers,
                "grid": f"{spec.grid_x}x{spec.grid_y}",
            }
        )
    return rows
