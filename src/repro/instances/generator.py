"""Random netlist and Steiner-instance generation.

Two generators are provided:

* :func:`generate_netlist` creates a full synthetic netlist for the global
  routing experiments (Tables IV/V): nets with a realistic sink-count
  distribution, pins clustered around their driver, and multi-stage timing
  paths constrained by a clock period chosen so that a few percent of the
  endpoints are critical.
* :func:`generate_steiner_instances` creates standalone cost-distance Steiner
  tree instances "as they appear during timing-constrained global routing":
  congestion cost vectors with hot spots and mostly-small Lagrangean delay
  weights with a few critical sinks.  These drive the apples-to-apples
  comparison of Tables I/II without having to run the full router first
  (the router can also record its real instances via
  ``GlobalRouterConfig.record_instances``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.grid.geometry import GridPoint
from repro.grid.graph import RoutingGraph
from repro.router.netlist import Net, Netlist, Pin, Stage

__all__ = [
    "NetlistGeneratorConfig",
    "generate_netlist",
    "generate_steiner_instances",
]


#: Net-size buckets (min_sinks, max_sinks, probability); loosely modelled on
#: the mix of the paper's industrial units where most nets are small but a
#: long tail of high-fanout nets exists.
DEFAULT_SIZE_DISTRIBUTION: Tuple[Tuple[int, int, float], ...] = (
    (1, 2, 0.48),
    (3, 5, 0.27),
    (6, 14, 0.15),
    (15, 29, 0.06),
    (30, 60, 0.04),
)


@dataclass(frozen=True)
class NetlistGeneratorConfig:
    """Parameters of the synthetic netlist generator."""

    num_nets: int = 100
    size_distribution: Tuple[Tuple[int, int, float], ...] = DEFAULT_SIZE_DISTRIBUTION
    cluster_fraction: float = 0.75
    cluster_radius_small: int = 4
    cluster_radius_large: int = 10
    stage_probability: float = 0.65
    min_cell_delay: float = 4.0
    max_cell_delay: float = 14.0
    clock_period: Optional[float] = None
    period_tightness: float = 0.8

    def __post_init__(self) -> None:
        if self.num_nets < 1:
            raise ValueError("num_nets must be positive")
        total = sum(p for _, _, p in self.size_distribution)
        if abs(total - 1.0) > 1e-6:
            raise ValueError("size distribution probabilities must sum to 1")
        if not 0.0 <= self.stage_probability <= 1.0:
            raise ValueError("stage_probability must lie in [0, 1]")


def _draw_net_size(rng: random.Random, distribution) -> int:
    r = rng.random()
    acc = 0.0
    for lo, hi, p in distribution:
        acc += p
        if r <= acc:
            return rng.randint(lo, hi)
    lo, hi, _ = distribution[-1]
    return rng.randint(lo, hi)


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _place_net_pins(
    rng: random.Random,
    graph: RoutingGraph,
    num_sinks: int,
    config: NetlistGeneratorConfig,
) -> Tuple[GridPoint, List[GridPoint]]:
    """Place a driver and its sinks: clustered around the driver with outliers."""
    nx, ny = graph.nx, graph.ny
    driver = GridPoint(rng.randrange(nx), rng.randrange(ny), 0)
    radius = (
        config.cluster_radius_small
        if num_sinks <= 5
        else config.cluster_radius_large
    )
    sinks: List[GridPoint] = []
    for _ in range(num_sinks):
        if rng.random() < config.cluster_fraction:
            x = _clamp(driver.x + rng.randint(-radius, radius), 0, nx - 1)
            y = _clamp(driver.y + rng.randint(-radius, radius), 0, ny - 1)
        else:
            x = rng.randrange(nx)
            y = rng.randrange(ny)
        sinks.append(GridPoint(x, y, 0))
    return driver, sinks


def generate_netlist(
    graph: RoutingGraph,
    config: Optional[NetlistGeneratorConfig] = None,
    seed: int = 0,
    name: str = "synthetic",
) -> Netlist:
    """Generate a synthetic netlist placed on ``graph``.

    The clock period defaults to ``period_tightness`` times an estimate of
    the longest combinational path delay (HPWL-based), so that the routed
    design has a small amount of negative slack -- the regime the paper's
    Tables IV/V operate in.
    """
    config = config or NetlistGeneratorConfig()
    rng = random.Random(seed)

    nets: List[Net] = []
    for i in range(config.num_nets):
        num_sinks = _draw_net_size(rng, config.size_distribution)
        driver, sinks = _place_net_pins(rng, graph, num_sinks, config)
        nets.append(
            Net(
                name=f"n{i}",
                driver=Pin(f"n{i}:drv", driver),
                sinks=[Pin(f"n{i}:s{k}", p) for k, p in enumerate(sinks)],
            )
        )

    # Combinational stages: each net may drive a later net through a cell,
    # forming chains (a DAG because edges only go to higher indices).
    stages: List[Stage] = []
    for i in range(config.num_nets - 1):
        if rng.random() < config.stage_probability:
            target = rng.randrange(i + 1, config.num_nets)
            cell_delay = rng.uniform(config.min_cell_delay, config.max_cell_delay)
            sink_index = rng.randrange(nets[i].num_sinks)
            stages.append(Stage(i, sink_index, target, cell_delay))

    clock_period = config.clock_period
    if clock_period is None:
        clock_period = config.period_tightness * _estimate_longest_path(
            graph, nets, stages
        )

    return Netlist(name=name, nets=nets, stages=stages, clock_period=clock_period)


def _estimate_longest_path(
    graph: RoutingGraph, nets: Sequence[Net], stages: Sequence[Stage]
) -> float:
    """HPWL-based estimate of the longest combinational path delay (ps)."""
    delay_rate = graph.delay_model.fastest_delay_per_tile() * 1.3
    incoming: Dict[int, List[Stage]] = {}
    for stage in stages:
        incoming.setdefault(stage.to_net, []).append(stage)
    # Nets are already topologically ordered (stages go to higher indices).
    arrival = [0.0] * len(nets)
    longest = 0.0
    for i, net in enumerate(nets):
        start = 0.0
        for stage in incoming.get(i, []):
            upstream = arrival[stage.from_net] + stage.cell_delay
            start = max(start, upstream)
        net_delay = net.half_perimeter() * delay_rate
        arrival[i] = start + net_delay
        longest = max(longest, arrival[i])
    return max(longest, 1.0)


# --------------------------------------------------------------------------
# Standalone cost-distance Steiner instances (Tables I / II)
# --------------------------------------------------------------------------


def _congested_cost_vector(
    graph: RoutingGraph, rng: random.Random, num_hotspots: int = 3
) -> np.ndarray:
    """Base costs with a few congestion hot spots, mimicking router prices."""
    costs = graph.base_cost_array()
    rest = np.asarray(graph.edge_u, dtype=np.int64) % (graph.nx * graph.ny)
    edge_y = rest // graph.nx
    edge_x = rest % graph.nx
    for _ in range(num_hotspots):
        cx = rng.randrange(graph.nx)
        cy = rng.randrange(graph.ny)
        radius = rng.randint(2, max(3, graph.nx // 4))
        strength = rng.uniform(1.5, 5.0)
        mask = (np.abs(edge_x - cx) + np.abs(edge_y - cy)) <= radius
        costs[mask] *= strength
    return costs


def _lagrangean_weights(rng: random.Random, num_sinks: int) -> List[float]:
    """Delay weights as produced by the Lagrangean relaxation: mostly small,
    a few critical sinks with substantial weight."""
    weights = []
    for _ in range(num_sinks):
        if rng.random() < 0.2:
            weights.append(rng.uniform(0.3, 1.5))
        else:
            weights.append(rng.uniform(0.01, 0.15))
    return weights


def generate_steiner_instances(
    graph: RoutingGraph,
    num_instances: int,
    dbif: float = 0.0,
    eta: float = 0.25,
    seed: int = 0,
    size_distribution: Tuple[Tuple[int, int, float], ...] = (
        (3, 5, 0.55),
        (6, 14, 0.25),
        (15, 29, 0.12),
        (30, 60, 0.08),
    ),
    cluster_fraction: float = 0.7,
) -> List[SteinerInstance]:
    """Generate standalone cost-distance Steiner tree instances.

    The size distribution defaults to the buckets of paper Tables I/II
    (instances with at least 3 sinks).  Every instance gets its own
    congestion-priced cost vector and Lagrangean-style delay weights.
    """
    rng = random.Random(seed)
    config = NetlistGeneratorConfig(cluster_fraction=cluster_fraction)
    instances: List[SteinerInstance] = []
    delay = graph.delay_array()
    bifurcation = BifurcationModel(dbif=dbif, eta=eta)
    for index in range(num_instances):
        costs = _congested_cost_vector(graph, rng)
        num_sinks = _draw_net_size(rng, size_distribution)
        driver, sink_points = _place_net_pins(rng, graph, num_sinks, config)
        root = graph.point_index(driver)
        sinks = [graph.point_index(p) for p in sink_points]
        weights = _lagrangean_weights(rng, num_sinks)
        instances.append(
            SteinerInstance(
                graph=graph,
                root=root,
                sinks=sinks,
                weights=weights,
                cost=costs,
                delay=delay,
                bifurcation=bifurcation,
                name=f"inst{index}",
            )
        )
    return instances
