"""ECO (engineering change order) deltas on a netlist.

Late design changes arrive as small edits -- a pin moves, a sink is added,
a net appears or disappears, a sink's timing weight changes -- and a serving
deployment must absorb them without restarting the whole routing flow.  This
module defines the delta vocabulary: small declarative :class:`EcoOp`
records (JSON-friendly, so the serve daemon can accept them over the wire)
and :func:`apply_eco`, which applies a list of them to a :class:`Netlist`
and reports what changed.

``apply_eco`` never mutates its input; it returns a fresh netlist plus an
:class:`EcoResult` describing the directly touched nets, the old-index to
new-index mapping (indices shift when nets are removed), and any sink
delay-weight overrides.  Deciding which *other* nets must be re-routed --
the dirty-net closure -- is the job of the replay machinery in
:mod:`repro.serve.session`, driven by instance signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.grid.geometry import GridPoint
from repro.router.netlist import Net, Netlist, Pin, Stage

__all__ = [
    "EcoOp",
    "MovePin",
    "AddSink",
    "RemoveSink",
    "AddNet",
    "RemoveNet",
    "ReweightSink",
    "EcoResult",
    "apply_eco",
    "parse_ops",
]


@dataclass(frozen=True)
class EcoOp:
    """Base class of all ECO operations."""

    #: Wire-format tag; set by each concrete op.
    op = "?"

    def as_dict(self) -> Dict[str, object]:
        raise NotImplementedError


@dataclass(frozen=True)
class MovePin(EcoOp):
    """Move one pin (driver or sink) of an existing net to a new position."""

    op = "move_pin"
    net: str
    pin: str
    x: int
    y: int
    layer: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "net": self.net,
            "pin": self.pin,
            "x": self.x,
            "y": self.y,
            "layer": self.layer,
        }


@dataclass(frozen=True)
class AddSink(EcoOp):
    """Append a new sink pin to an existing net."""

    op = "add_sink"
    net: str
    pin: str
    x: int
    y: int
    layer: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "net": self.net,
            "pin": self.pin,
            "x": self.x,
            "y": self.y,
            "layer": self.layer,
        }


@dataclass(frozen=True)
class RemoveSink(EcoOp):
    """Remove one sink pin from an existing net (at least one must remain)."""

    op = "remove_sink"
    net: str
    pin: str

    def as_dict(self) -> Dict[str, object]:
        return {"op": self.op, "net": self.net, "pin": self.pin}


@dataclass(frozen=True)
class AddNet(EcoOp):
    """Add a whole new net.  Pins are ``(name, x, y, layer)`` tuples."""

    op = "add_net"
    net: str
    driver: Tuple[str, int, int, int]
    sinks: Tuple[Tuple[str, int, int, int], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "net": self.net,
            "driver": list(self.driver),
            "sinks": [list(s) for s in self.sinks],
        }


@dataclass(frozen=True)
class RemoveNet(EcoOp):
    """Remove an existing net.

    The net must not participate in any combinational stage; its removal
    shifts the indices of all later nets, which drops their replay memos
    (an honest, if larger, re-route)."""

    op = "remove_net"
    net: str

    def as_dict(self) -> Dict[str, object]:
        return {"op": self.op, "net": self.net}


@dataclass(frozen=True)
class ReweightSink(EcoOp):
    """Override the initial delay weight of one sink pin."""

    op = "reweight_sink"
    net: str
    pin: str
    weight: float

    def as_dict(self) -> Dict[str, object]:
        return {"op": self.op, "net": self.net, "pin": self.pin, "weight": self.weight}


_OP_TYPES = {
    MovePin.op: MovePin,
    AddSink.op: AddSink,
    RemoveSink.op: RemoveSink,
    AddNet.op: AddNet,
    RemoveNet.op: RemoveNet,
    ReweightSink.op: ReweightSink,
}


def parse_ops(records: Sequence[Dict[str, object]]) -> List[EcoOp]:
    """Build :class:`EcoOp` objects from their wire-format dicts."""
    ops: List[EcoOp] = []
    for record in records:
        kind = record.get("op")
        if kind not in _OP_TYPES:
            raise ValueError(f"unknown ECO op {kind!r}; available: {sorted(_OP_TYPES)}")
        if kind == MovePin.op or kind == AddSink.op:
            ops.append(
                _OP_TYPES[kind](
                    net=str(record["net"]),
                    pin=str(record["pin"]),
                    x=int(record["x"]),  # type: ignore[arg-type]
                    y=int(record["y"]),  # type: ignore[arg-type]
                    layer=int(record.get("layer", 0)),  # type: ignore[arg-type]
                )
            )
        elif kind == RemoveSink.op:
            ops.append(RemoveSink(net=str(record["net"]), pin=str(record["pin"])))
        elif kind == AddNet.op:
            driver = record["driver"]
            sinks = record["sinks"]
            ops.append(
                AddNet(
                    net=str(record["net"]),
                    driver=tuple(driver),  # type: ignore[arg-type]
                    sinks=tuple(tuple(s) for s in sinks),  # type: ignore[union-attr]
                )
            )
        elif kind == RemoveNet.op:
            ops.append(RemoveNet(net=str(record["net"])))
        else:  # reweight_sink
            ops.append(
                ReweightSink(
                    net=str(record["net"]),
                    pin=str(record["pin"]),
                    weight=float(record["weight"]),  # type: ignore[arg-type]
                )
            )
    return ops


@dataclass
class EcoResult:
    """Outcome of applying an ECO delta.

    Attributes
    ----------
    netlist:
        The edited netlist (the input is never mutated).
    touched:
        Names of nets whose own definition changed (moved/added/removed
        pins, added nets, reweighted sinks).  Ripple effects through
        congestion are *not* included -- those are found by signature
        comparison during the replay.
    index_map:
        Mapping from old net index to new net index for every surviving
        net.  The identity map unless nets were removed.
    weight_overrides:
        ``{net_name: {sink_index: weight}}`` initial delay-weight overrides
        accumulated from :class:`ReweightSink` ops, with sink indices
        resolved against the edited netlist.
    """

    netlist: Netlist
    touched: List[str] = field(default_factory=list)
    index_map: Dict[int, int] = field(default_factory=dict)
    weight_overrides: Dict[str, Dict[int, float]] = field(default_factory=dict)


def _copy_net(net: Net) -> Net:
    return Net(net.name, net.driver, list(net.sinks))


def _find_net(nets: List[Net], name: str) -> int:
    for index, net in enumerate(nets):
        if net.name == name:
            return index
    raise ValueError(f"ECO references unknown net {name!r}")


def _find_sink(net: Net, pin_name: str) -> int:
    for index, pin in enumerate(net.sinks):
        if pin.name == pin_name:
            return index
    raise ValueError(f"ECO references unknown sink {pin_name!r} of net {net.name!r}")


def apply_eco(netlist: Netlist, ops: Sequence[EcoOp]) -> EcoResult:
    """Apply a list of ECO ops and return the edited netlist plus impact."""
    nets = [_copy_net(net) for net in netlist.nets]
    stages = list(netlist.stages)
    original_names = [net.name for net in netlist.nets]
    touched: List[str] = []
    reweights: List[ReweightSink] = []

    def touch(name: str) -> None:
        if name not in touched:
            touched.append(name)

    for op in ops:
        if isinstance(op, MovePin):
            index = _find_net(nets, op.net)
            net = nets[index]
            position = GridPoint(op.x, op.y, op.layer)
            if net.driver.name == op.pin:
                nets[index] = Net(net.name, Pin(op.pin, position), list(net.sinks))
            else:
                sink_index = _find_sink(net, op.pin)
                sinks = list(net.sinks)
                sinks[sink_index] = Pin(op.pin, position)
                nets[index] = Net(net.name, net.driver, sinks)
            touch(op.net)
        elif isinstance(op, AddSink):
            index = _find_net(nets, op.net)
            net = nets[index]
            if any(pin.name == op.pin for pin in net.sinks):
                raise ValueError(f"net {op.net!r} already has a sink {op.pin!r}")
            sinks = list(net.sinks) + [Pin(op.pin, GridPoint(op.x, op.y, op.layer))]
            nets[index] = Net(net.name, net.driver, sinks)
            touch(op.net)
        elif isinstance(op, RemoveSink):
            index = _find_net(nets, op.net)
            net = nets[index]
            sink_index = _find_sink(net, op.pin)
            if net.num_sinks == 1:
                raise ValueError(
                    f"cannot remove the last sink of net {op.net!r}; remove the net"
                )
            for stage in stages:
                if stage.from_net == index and stage.from_sink == sink_index:
                    raise ValueError(
                        f"sink {op.pin!r} of net {op.net!r} drives a stage; "
                        "remove the stage first"
                    )
            stages = [
                Stage(
                    s.from_net,
                    s.from_sink - 1
                    if s.from_net == index and s.from_sink > sink_index
                    else s.from_sink,
                    s.to_net,
                    s.cell_delay,
                )
                for s in stages
            ]
            sinks = [pin for i, pin in enumerate(net.sinks) if i != sink_index]
            nets[index] = Net(net.name, net.driver, sinks)
            touch(op.net)
        elif isinstance(op, AddNet):
            if any(net.name == op.net for net in nets):
                raise ValueError(f"net {op.net!r} already exists")
            driver_name, dx, dy, dl = op.driver
            sinks = [
                Pin(str(name), GridPoint(int(x), int(y), int(layer)))
                for name, x, y, layer in op.sinks
            ]
            nets.append(
                Net(op.net, Pin(str(driver_name), GridPoint(int(dx), int(dy), int(dl))), sinks)
            )
            touch(op.net)
        elif isinstance(op, RemoveNet):
            index = _find_net(nets, op.net)
            for stage in stages:
                if stage.from_net == index or stage.to_net == index:
                    raise ValueError(
                        f"net {op.net!r} participates in a stage; remove the stage first"
                    )
            stages = [
                Stage(
                    s.from_net - 1 if s.from_net > index else s.from_net,
                    s.from_sink,
                    s.to_net - 1 if s.to_net > index else s.to_net,
                    s.cell_delay,
                )
                for s in stages
            ]
            del nets[index]
        elif isinstance(op, ReweightSink):
            _find_net(nets, op.net)  # existence check at op time
            if op.weight < 0:
                raise ValueError("sink delay weights must be non-negative")
            reweights.append(op)
            touch(op.net)
        else:
            raise ValueError(f"unknown ECO op type {type(op).__name__}")

    edited = Netlist(netlist.name, nets, stages, clock_period=netlist.clock_period)

    new_index_by_name = {net.name: i for i, net in enumerate(nets)}
    index_map = {
        old: new_index_by_name[name]
        for old, name in enumerate(original_names)
        if name in new_index_by_name
    }

    overrides: Dict[str, Dict[int, float]] = {}
    for op in reweights:
        net = nets[_find_net(nets, op.net)]
        sink_index = _find_sink(net, op.pin)
        overrides.setdefault(op.net, {})[sink_index] = float(op.weight)

    return EcoResult(
        netlist=edited,
        touched=touched,
        index_map=index_map,
        weight_overrides=overrides,
    )
