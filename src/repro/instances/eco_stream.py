"""Seeded generator of long, always-valid ECO op streams.

The endurance ("soak") harness needs hundreds of ECO operations that stay
legal against a netlist as it evolves: pins only move inside the grid,
sinks are only removed where one remains and no stage hangs off them, nets
are only removed when no stage references them.  Tracking that by blindly
sampling ops and retrying on rejection would couple the stream to
``apply_eco``'s error behaviour; instead this module keeps a tiny live
model of the evolving netlist (net -> pin names, which nets and sinks the
stream itself added) and only ever emits ops the model proves valid.

The conservative rules -- ``remove_sink``/``remove_net`` target only
stream-added sinks/nets, which are stage-free by construction -- keep the
generator independent of the stage topology while still exercising every
op kind, including index-shifting net removals.

Streams are pure functions of ``(netlist, graph bounds, seed, ops)``: the
soak harness replays the *same* stream against a clean serial session and
a fault-injected sharded session and compares terminal states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.grid.graph import RoutingGraph
from repro.router.netlist import Netlist

__all__ = ["EcoStreamConfig", "generate_eco_stream"]


@dataclass(frozen=True)
class EcoStreamConfig:
    """Shape of a generated ECO stream.

    ``ops`` operations are grouped into batches of ``batch_size`` (the last
    batch may be short); each batch is one ECO request.  ``max_new_sinks``
    bounds the fan-out of stream-added nets.
    """

    ops: int = 200
    batch_size: int = 5
    seed: int = 0
    max_new_sinks: int = 3

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ValueError("ops must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.max_new_sinks < 1:
            raise ValueError("max_new_sinks must be positive")


@dataclass
class _NetModel:
    """What the generator must remember about one live net."""

    driver: str
    sinks: List[str]
    added: bool = False
    #: Sinks appended by the stream itself (stage-free, hence removable).
    added_sinks: List[str] = field(default_factory=list)


def _live_model(netlist: Netlist) -> Dict[str, _NetModel]:
    return {
        net.name: _NetModel(driver=net.driver.name, sinks=[p.name for p in net.sinks])
        for net in netlist.nets
    }


def generate_eco_stream(
    netlist: Netlist,
    graph: RoutingGraph,
    config: EcoStreamConfig = EcoStreamConfig(),
) -> List[List[Dict[str, object]]]:
    """Generate batches of wire-format ECO ops, always-valid in sequence.

    The return value is a list of batches; each batch is a list of op
    dicts ready for :func:`repro.instances.eco.parse_ops`, a session's
    :meth:`~repro.serve.session.RoutingSession.apply_eco`, or a daemon
    ``eco`` job.  Applying the batches in order never raises.
    """
    rng = random.Random(config.seed)
    model = _live_model(netlist)
    counter = 0  # one namespace for all stream-created net/pin names

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"eco:{prefix}{counter}"

    def point() -> Dict[str, int]:
        # Layer 0 like the netlist generator's pins; interior of the grid.
        return {"x": rng.randrange(graph.nx), "y": rng.randrange(graph.ny), "layer": 0}

    def op_move_pin() -> Dict[str, object]:
        name = rng.choice(sorted(model))
        net = model[name]
        pin = rng.choice([net.driver] + net.sinks)
        return {"op": "move_pin", "net": name, "pin": pin, **point()}

    def op_add_sink() -> Dict[str, object]:
        name = rng.choice(sorted(model))
        pin = fresh("s")
        model[name].sinks.append(pin)
        model[name].added_sinks.append(pin)
        return {"op": "add_sink", "net": name, "pin": pin, **point()}

    def op_remove_sink() -> Dict[str, object]:
        # Only stream-added sinks (stage-free) of nets keeping >= 2 sinks,
        # and never a sink this batch reweighted: ``apply_eco`` resolves
        # reweights after all ops of a request, so the sink must survive it.
        candidates = sorted(
            name
            for name, net in model.items()
            if len(net.sinks) >= 2 and any(pin not in batch_reweighted for pin in net.added_sinks)
        )
        if not candidates:
            return op_add_sink()
        name = rng.choice(candidates)
        net = model[name]
        pin = next(p for p in reversed(net.added_sinks) if p not in batch_reweighted)
        net.added_sinks.remove(pin)
        net.sinks.remove(pin)
        return {"op": "remove_sink", "net": name, "pin": pin}

    def op_add_net() -> Dict[str, object]:
        name = fresh("n")
        driver = fresh("drv")
        sinks = [fresh("s") for _ in range(rng.randint(1, config.max_new_sinks))]
        model[name] = _NetModel(driver=driver, sinks=list(sinks), added=True)
        pt = point()
        return {
            "op": "add_net",
            "net": name,
            "driver": [driver, pt["x"], pt["y"], pt["layer"]],
            "sinks": [[s, *(point()[k] for k in ("x", "y", "layer"))] for s in sinks],
        }

    def op_remove_net() -> Dict[str, object]:
        # Stream-added nets only (stage-free), minus this batch's reweight
        # targets (see op_remove_sink for why).
        candidates = sorted(
            name
            for name, net in model.items()
            if net.added and not any(pin in batch_reweighted for pin in net.sinks)
        )
        if not candidates:
            return op_add_net()
        name = rng.choice(candidates)
        del model[name]
        return {"op": "remove_net", "net": name}

    def op_reweight_sink() -> Dict[str, object]:
        name = rng.choice(sorted(model))
        net = model[name]
        pin = rng.choice(net.sinks)
        batch_reweighted.add(pin)
        weight = round(rng.uniform(0.25, 4.0), 3)
        return {"op": "reweight_sink", "net": name, "pin": pin, "weight": weight}

    makers = [
        (op_move_pin, 0.30),
        (op_add_sink, 0.20),
        (op_remove_sink, 0.10),
        (op_add_net, 0.15),
        (op_remove_net, 0.10),
        (op_reweight_sink, 0.15),
    ]
    weights = [w for _, w in makers]

    batches: List[List[Dict[str, object]]] = []
    remaining = config.ops
    while remaining > 0:
        batch_reweighted: set = set()
        batch: List[Dict[str, object]] = []
        for _ in range(min(config.batch_size, remaining)):
            (maker,) = rng.choices([m for m, _ in makers], weights=weights)
            batch.append(maker())
        remaining -= len(batch)
        batches.append(batch)
    return batches
