"""Incremental re-route caching for rip-up-and-re-route rounds.

Later resource-sharing rounds re-solve every net from scratch even though
most prices have settled: a net whose terminals, delay weights, and nearby
congestion costs did not change since its last routing would get the exact
same tree from the (deterministically seeded) oracle.  The
:class:`RerouteCache` detects such nets by signature comparison and lets the
engine skip the oracle call -- the previous tree is kept, and because it is
unchanged the congestion usage does not need to be touched either.

The signature (see :func:`repro.core.instance.instance_signature`) covers

* the net's terminals and sink delay weights,
* the bifurcation model parameters,
* the congestion cost vector restricted to the net's *bounding region* --
  the halo-expanded planar bounding box of its pins, plus every edge of the
  net's current tree (routes may detour outside the pin box), and
* the global minimum routing-edge cost, which feeds the oracle's A*
  potentials and must therefore be part of the cache key even though it is
  not a "local" quantity.

``scope="global"`` digests the full cost vector instead of the bounding
region; it is slower to hash but makes a cache hit a *proof* that re-solving
would reproduce the tree (the region scope is a very good heuristic).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import instance_signature
from repro.engine.scheduler import BoundingBox
from repro.grid.graph import RoutingGraph

if TYPE_CHECKING:  # circular at runtime: tree.py does not import the engine
    from repro.core.tree import EmbeddedTree

__all__ = ["CacheStats", "RerouteCache", "RoundMemo"]


@dataclass
class RoundMemo:
    """What one rip-up-and-re-route round memoises for later replay.

    ``signatures`` holds every net's *lookup* signature -- the digest
    computed before the round's oracle call, under the tree the net carried
    into the round -- and ``trees`` the embedded tree each net held after
    the round.  A later run over an edited netlist can replay the flow
    against this memo: a net whose lookup signature at round ``r`` equals
    the memoised one would receive the exact same tree from the
    deterministic oracle, so the memoised tree is installed without an
    oracle call.  This is how :class:`repro.serve.session.RoutingSession`
    turns an ECO delta into an incremental re-route whose outcome is
    bit-identical to a cold run of the edited netlist.

    Sharded flows carry one memo per *round* too, but each scope of the
    round (region interiors, seam super-region scopes, the global seam
    engine) computes its lookup signatures against its own (sub)graph, so
    the bytes are only comparable between identical scopes.  The shard
    coordinator localises the global memo per scope before replaying and
    merges the per-scope log signatures back in fixed region order; a net
    whose scope changed across an ECO simply misses its memo and is
    re-routed -- conservative, never wrong.
    """

    signatures: Dict[int, bytes] = field(default_factory=dict)
    trees: Dict[int, "EmbeddedTree"] = field(default_factory=dict)

    def restrict_to(self, keep: Sequence[int]) -> "RoundMemo":
        """A copy containing only the nets in ``keep`` (indices unchanged)."""
        wanted = set(keep)
        return RoundMemo(
            signatures={i: s for i, s in self.signatures.items() if i in wanted},
            trees={i: t for i, t in self.trees.items() if i in wanted},
        )

    def remapped(self, index_map: Dict[int, int]) -> "RoundMemo":
        """A copy with net indices translated through ``index_map``.

        Nets absent from the map (removed by an ECO) are dropped; every
        surviving net's memo moves to its new index.  Sound because RNG
        streams and signatures are keyed by net *name*, not index (see
        :mod:`repro.engine.rng`): the deterministic oracle reproduces the
        memoised tree at the shifted index as long as the lookup signature
        still matches.
        """
        return RoundMemo(
            signatures={
                index_map[i]: s for i, s in self.signatures.items() if i in index_map
            },
            trees={index_map[i]: t for i, t in self.trees.items() if i in index_map},
        )


@dataclass
class CacheStats:
    """Hit/miss counters of one routing run."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class RerouteCache:
    """Skips re-solving nets whose instance signature is unchanged.

    Parameters
    ----------
    graph:
        The routing graph (edge geometry for the bounding regions).
    boxes:
        Per-net halo-expanded planar bounding boxes, typically from
        :meth:`repro.engine.scheduler.NetScheduler.net_box`.
    scope:
        ``"bbox"`` digests costs over the net's bounding region,
        ``"global"`` digests the full cost vector.
    """

    #: Chunk size (edges) of the Merkle-style incremental global digest.
    DIGEST_CHUNK = 4096

    #: Class-level switch for the incremental digest fast paths; the
    #: reference-kernel benchmark harness (:mod:`repro.grid.reference`)
    #: flips it off to restore the historical full-scan hashing.
    incremental_digests = True

    def __init__(
        self,
        graph: RoutingGraph,
        boxes: Sequence[BoundingBox],
        scope: str = "bbox",
    ) -> None:
        if scope not in ("bbox", "global"):
            raise ValueError(f"unknown cache scope {scope!r}")
        self.graph = graph
        self.boxes = list(boxes)
        self.scope = scope
        self.stats = CacheStats()
        self._signatures: Dict[int, bytes] = {}
        self._region_cache: Dict[int, np.ndarray] = {}
        # Planar coordinates of both endpoints of every edge, for vectorised
        # region membership tests.
        nx, ny = graph.nx, graph.ny
        rest_u = np.asarray(graph.edge_u, dtype=np.int64) % (nx * ny)
        rest_v = np.asarray(graph.edge_v, dtype=np.int64) % (nx * ny)
        self._ux, self._uy = rest_u % nx, rest_u // nx
        self._vx, self._vy = rest_v % nx, rest_v // nx
        self._routing_mask = ~graph.edge_is_via
        # Incremental digest state: a retained copy of the last observed
        # cost vector, a per-edge "epoch of last change" counter, memoised
        # per-chunk digests of the global Merkle digest, and per-net cached
        # region digests (see _observe / _region_digest).
        self._observed_costs: Optional[np.ndarray] = None
        self._last_costs: Optional[np.ndarray] = None
        self._edge_epoch = np.zeros(graph.num_edges, dtype=np.int64)
        self._epoch = 0
        self._chunk_digests: Optional[List[bytes]] = None
        self._global_digest: Optional[bytes] = None
        self._region_digests: Dict[int, tuple] = {}

    # ------------------------------------------------------------- regions
    def region_edges(self, net_index: int) -> np.ndarray:
        """Edge indices inside the net's bounding region (memoised)."""
        cached = self._region_cache.get(net_index)
        if cached is None:
            box = self.boxes[net_index]
            inside = (
                (self._ux >= box.xlo)
                & (self._ux <= box.xhi)
                & (self._uy >= box.ylo)
                & (self._uy <= box.yhi)
                & (self._vx >= box.xlo)
                & (self._vx <= box.xhi)
                & (self._vy >= box.ylo)
                & (self._vy <= box.yhi)
            )
            cached = np.flatnonzero(inside)
            self._region_cache[net_index] = cached
        return cached

    # --------------------------------------------------- incremental digests
    def _observe(self, costs: np.ndarray) -> None:
        """Fold a batch cost vector into the incremental digest state.

        Exactly-equal edges keep their epoch; every changed edge is stamped
        with a fresh epoch and its Merkle chunk digest is dropped.  The
        observation is memoised by array identity, so one batch (whose nets
        all share one vector object) pays a single O(edges) compare.
        """
        if costs is self._observed_costs:
            return
        contiguous = np.ascontiguousarray(costs, dtype=np.float64)
        if self._last_costs is None or self._last_costs.shape != contiguous.shape:
            self._last_costs = contiguous.copy()
            self._edge_epoch = np.zeros(contiguous.shape, dtype=np.int64)
            self._epoch = 0
            self._chunk_digests = None
            self._global_digest = None
            self._region_digests.clear()
        else:
            changed = np.flatnonzero(self._last_costs != contiguous)
            if changed.size:
                self._epoch += 1
                self._edge_epoch[changed] = self._epoch
                self._last_costs[changed] = contiguous[changed]
                if self._chunk_digests is not None:
                    for chunk in np.unique(changed // self.DIGEST_CHUNK):
                        self._chunk_digests[int(chunk)] = self._chunk_digest(int(chunk))
                self._global_digest = None
        self._observed_costs = costs

    def _chunk_digest(self, chunk: int) -> bytes:
        start = chunk * self.DIGEST_CHUNK
        return hashlib.sha1(
            self._last_costs[start : start + self.DIGEST_CHUNK].tobytes()
        ).digest()

    def _region_digest(self, net_index: int, tree_edges: Sequence[int]) -> bytes:
        """Digest of the net's region costs, recomputed only when stale.

        The cached digest is valid while (a) the net's tree -- and with it
        the region/tree edge union -- is unchanged and (b) no edge of that
        union changed cost since the digest was taken (per-edge epochs).
        The digest is a pure function of the current cost vector over the
        region, never a chain over history, so replay/memo flows that
        revisit an earlier cost state reproduce the earlier bytes exactly.
        """
        tree_key = tuple(tree_edges)
        entry = self._region_digests.get(net_index)
        if entry is not None and entry[0] == tree_key:
            _, epoch, region_all, digest = entry
            stale = region_all.size and int(self._edge_epoch[region_all].max()) > epoch
            if not stale:
                return digest
        else:
            region_all = self.region_edges(net_index)
            if tree_key:
                region_all = np.union1d(
                    region_all, np.asarray(tree_key, dtype=np.int64)
                )
        digest = hashlib.sha1(
            np.ascontiguousarray(self._last_costs[region_all]).tobytes()
        ).digest()
        self._region_digests[net_index] = (tree_key, self._epoch, region_all, digest)
        return digest

    # ----------------------------------------------------------- signature
    def global_cost_digest(self, costs: np.ndarray) -> bytes:
        """Digest of the full cost vector (for ``global``-scope signatures).

        Incremental: the vector is split into fixed chunks whose SHA1
        digests are memoised and recomputed only for chunks containing a
        changed edge; the returned digest hashes the chunk digests.  A pure
        function of the vector's contents (chunking is fixed), so equal
        vectors always produce equal digests regardless of history.
        """
        if not self.incremental_digests:
            return hashlib.sha1(
                np.ascontiguousarray(costs, dtype=np.float64).tobytes()
            ).digest()
        self._observe(costs)
        if self._global_digest is None:
            if self._chunk_digests is None:
                num_chunks = -(-self._last_costs.size // self.DIGEST_CHUNK) or 1
                self._chunk_digests = [
                    self._chunk_digest(chunk) for chunk in range(num_chunks)
                ]
            self._global_digest = hashlib.sha1(b"".join(self._chunk_digests)).digest()
        return self._global_digest

    def global_cost_floor(self, costs: np.ndarray) -> float:
        """The cheapest routing-edge cost anywhere under ``costs``.

        The oracle's A* potentials scale with this value, so it is part of
        every bbox-scope signature; it is constant for one cost vector, so
        callers digesting a whole batch should compute it once and pass it
        to :meth:`signature` instead of paying the O(edges) scan per net.
        """
        routing_costs = costs[self._routing_mask]
        return float(routing_costs.min()) if routing_costs.size else 0.0

    def signature(
        self,
        net_index: int,
        root: int,
        sinks: Sequence[int],
        weights: Sequence[float],
        costs: np.ndarray,
        bifurcation: BifurcationModel,
        tree_edges: Sequence[int] = (),
        cost_floor: Optional[float] = None,
        cost_digest: Optional[bytes] = None,
    ) -> bytes:
        """Compute the cache signature of one net under ``costs``.

        ``cost_floor`` / ``cost_digest`` are the batch-constant
        :meth:`global_cost_floor` / :meth:`global_cost_digest` of ``costs``;
        each is computed on demand when omitted, so callers digesting a
        whole batch should pass them in.
        """
        if self.scope == "global":
            region: Optional[np.ndarray] = None
            extras: List[float] = []
            if cost_digest is None:
                cost_digest = self.global_cost_digest(costs)
        else:
            if cost_floor is None:
                cost_floor = self.global_cost_floor(costs)
            extras = [cost_floor]
            if self.incremental_digests:
                # Incremental path: hash the (cached) digest of the region
                # cost slice instead of re-slicing and re-hashing per call.
                self._observe(costs)
                region = None
                cost_digest = self._region_digest(net_index, tree_edges)
            else:
                region = self.region_edges(net_index)
                if len(tree_edges):
                    region = np.union1d(region, np.asarray(tree_edges, dtype=np.int64))
                cost_digest = None
        return instance_signature(
            root,
            sinks,
            weights,
            costs,
            bifurcation,
            region_edges=region,
            extras=extras,
            cost_digest=cost_digest,
        )

    # -------------------------------------------------------------- lookup
    def is_fresh(self, net_index: int, signature: bytes) -> bool:
        """Whether the net's last routing used an identical signature."""
        hit = self._signatures.get(net_index) == signature
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    def store(self, net_index: int, signature: bytes) -> None:
        """Record the signature the net was (or would have been) routed with."""
        self._signatures[net_index] = signature

    def invalidate(self, net_index: Optional[int] = None) -> None:
        """Drop one net's entry, or all entries when ``net_index`` is None."""
        if net_index is None:
            self._signatures.clear()
        else:
            self._signatures.pop(net_index, None)

    # --------------------------------------------------------- persistence
    def export_signatures(self) -> Dict[int, bytes]:
        """Copy of the stored per-net signatures (for checkpointing)."""
        return dict(self._signatures)

    def load_signatures(self, signatures: Dict[int, bytes]) -> None:
        """Replace the stored signatures (the checkpoint-restore inverse of
        :meth:`export_signatures`); hit/miss statistics are left untouched."""
        self._signatures = dict(signatures)

    def __len__(self) -> int:
        return len(self._signatures)
