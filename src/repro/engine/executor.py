"""Batch executors: pluggable backends that route one batch of nets.

A batch (see :mod:`repro.engine.scheduler`) is a set of nets that share one
frozen congestion cost vector.  Given that vector and one lightweight
:class:`NetTask` per net, an executor returns the embedded tree of every net.
Because each net carries its own deterministically derived RNG stream
(:mod:`repro.engine.rng`), every backend produces bit-identical trees; the
backends differ only in *where* the Steiner oracle runs:

* :class:`SerialExecutor` routes the batch in-process, net by net -- the
  default, equivalent to the historical router loop.
* :class:`ProcessExecutor` fans the batch out over a ``multiprocessing``
  pool.  Each worker is primed once with a pickled read-only payload (the
  routing graph, the oracle, and the bifurcation model); per batch, the cost
  vector is pickled once per worker shard rather than once per net, and the
  workers return plain ``(net_index, sinks, edges, method)`` tuples so the
  (large) graph object never travels back over the pipe.

Use :func:`make_executor` to construct a backend by name.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.core.bifurcation import BifurcationModel
from repro.core.costctx import OracleCostContext
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.engine.rng import derive_net_rng_for_name
from repro.grid.graph import RoutingGraph

__all__ = [
    "NetTask",
    "BatchExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "create_worker_pool",
    "validate_start_method",
    "run_tasks_with_recovery",
    "EXECUTOR_BACKENDS",
]


def validate_start_method(start_method: Optional[str]) -> Optional[str]:
    """Pass ``start_method`` through, raising for unknown/unavailable ones.

    Pinning a start method is an explicit request; a typo (or ``"fork"``
    on a platform without it) must fail loudly rather than silently
    degrade the run to a slower path.
    """
    if start_method is not None:
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        if start_method not in available:
            raise ValueError(
                f"unknown or unavailable start method {start_method!r}; "
                f"available: {sorted(available)}"
            )
    return start_method


def create_worker_pool(
    processes: int,
    start_method: Optional[str] = None,
    initializer=None,
    initargs: Tuple = (),
    prefer: Tuple[str, ...] = ("fork",),
    degrade_message: str = "degrading to in-process execution",
    backend: str = "process",
):
    """Start a ``multiprocessing`` pool, or return ``None`` when this
    environment cannot provide one.

    The single pool-bootstrap-with-degradation path shared by every
    process backend in the repo (the engine's :class:`ProcessExecutor`,
    the shard layer's region pool, the serve daemon's shard fan-out), so
    their degradation contracts cannot drift apart:

    * ``start_method``, when given, is *validated*
      (:func:`validate_start_method`) -- pinning an unknown method raises
      :class:`ValueError` instead of silently falling back.
    * Otherwise the methods in ``prefer`` are tried in order, then the
      platform default.  ``fork`` is the usual preference (workers inherit
      ``sys.path``); callers embedded in multi-threaded processes should
      prefer ``("forkserver", "spawn")``, where ``fork`` is deadlock-prone.
    * When no pool can be started -- sandboxes routinely forbid
      ``fork``/semaphores -- a structured WARNING log record (and trace
      event) carries ``backend``, ``start_method``, and the failure, plus
      ``degrade_message``, and ``None`` is returned: degradation costs
      parallelism, never correctness.
    """
    import multiprocessing

    validate_start_method(start_method)
    try:
        if start_method is not None:
            context = multiprocessing.get_context(start_method)
        else:
            context = None
            for method in prefer:
                try:
                    context = multiprocessing.get_context(method)
                    break
                except ValueError:  # pragma: no cover - platform-dependent
                    continue
            if context is None:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
        return context.Pool(
            processes=processes, initializer=initializer, initargs=initargs
        )
    except (ImportError, OSError, PermissionError, RuntimeError, AssertionError) as exc:
        # AssertionError is what the stdlib raises for daemonic nesting
        # ("daemonic processes are not allowed to have children") -- e.g. a
        # shard child running inside the serve daemon's region pool trying
        # to start its own engine pool.  Degrading is exactly right there.
        obs.log_pool_degradation(backend, start_method, exc, degrade_message)
        obs.inc(f"pool.degraded.{backend}")
        return None


def run_tasks_with_recovery(
    pool,
    fn,
    tasks,
    retry,
    backend: str,
    sabotage=None,
    stall_timeout: float = 5.0,
) -> Tuple[list, bool]:
    """Run ``fn`` over ``tasks`` on ``pool``, surviving dead workers.

    ``multiprocessing.Pool`` replaces a worker that dies (OOM-killed,
    segfaulted, chaos-injected SIGKILL) but silently *loses the task the
    worker was executing* -- a plain ``pool.map`` then blocks forever on a
    result that will never arrive.  This collector submits each task as
    its own ``apply_async``, watches the pool's worker processes for
    deaths, and -- once every still-pending task can only be explained by
    a lost worker -- re-executes the pending tasks in the parent via
    ``retry``.  Tasks are pure functions of their inputs (the engine's
    determinism contract), so a re-execution, wherever it runs, is
    bit-identical to the result the dead worker would have produced.

    A death can also wedge the pool outright: a worker SIGKILLed while
    holding the shared task-queue lock starves every other worker.  When
    deaths were observed but completions stop for ``stall_timeout``
    seconds, the collector gives up on the pool and recovers *all*
    pending tasks in-process.  And because a wedge can surface only on
    the *next* dispatch (the victim died after this call's results were
    in), **any** observed death marks the pool broken: the caller
    discards it and rebuilds from the initializer payload -- cheap, and
    it closes the hang window for good.

    ``sabotage``, when given, is called with the pool right after the
    tasks are dispatched -- the hook chaos faults use to kill a worker at
    the moment it is most likely mid-task.

    Returns ``(results, pool_broken)`` with results aligned with
    ``tasks``.  Worker exceptions (as opposed to worker *deaths*)
    propagate unchanged.
    """
    pending = {index: pool.apply_async(fn, (task,)) for index, task in enumerate(tasks)}
    if sabotage is not None:
        # Give the workers a moment to pick the tasks up: killing a busy
        # worker loses its task (the case under test); killing an idle one
        # can only wedge the queue (the stall path below).
        time.sleep(0.05)
        sabotage(pool)
    results: list = [None] * len(tasks)
    seen_workers: set = set()
    last_progress = time.monotonic()

    def recover(reason: str) -> None:
        lost = sorted(pending)
        pending.clear()
        obs.get_logger("engine").warning(
            "%s; re-executing %d in-flight task(s) in-process",
            reason,
            len(lost),
            extra={"backend": backend, "lost": len(lost)},
        )
        for index in lost:
            results[index] = retry(tasks[index])
            obs.inc("recovery.tasks_retried")
            obs.inc(f"recovery.tasks_retried.{backend}")
        obs.publish("recovery", backend=backend, retried=len(lost), reason=reason)

    def count_deaths() -> int:
        # Track every worker process the pool has had during this call;
        # the pool prunes dead ones from ``_pool`` when it replaces them,
        # but a reaped Process object keeps its exitcode.
        seen_workers.update(getattr(pool, "_pool", None) or [])
        return sum(1 for worker in seen_workers if worker.exitcode is not None)

    while pending:
        deaths = count_deaths()
        ready = [index for index, result in pending.items() if result.ready()]
        if ready:
            last_progress = time.monotonic()
        for index in ready:
            results[index] = pending.pop(index).get()
        if not pending:
            break
        if deaths:
            if len(pending) <= deaths:
                # A death loses at most the one task its worker was
                # running, so every remaining result is unreachable.
                recover(f"{deaths} pool worker death(s) lost the remaining tasks")
                break
            if time.monotonic() - last_progress > stall_timeout:
                recover(
                    f"pool stalled {stall_timeout:.1f}s after {deaths} worker "
                    "death(s) (task queue presumed wedged)"
                )
                break
        next(iter(pending.values())).wait(0.05)
    return results, count_deaths() > 0


def discard_broken_pool(pool) -> None:
    """Tear a wedged pool down on a background thread.

    Terminating a pool whose task queue died with a lock held can itself
    block (the handler threads join the queue); a daemon thread keeps
    that out of the routing flow's way.
    """
    import threading

    def _terminate() -> None:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown of a broken pool
            pass

    threading.Thread(target=_terminate, name="discard-broken-pool", daemon=True).start()
    obs.inc("recovery.pools_discarded")


@dataclass(frozen=True)
class NetTask:
    """Everything a worker needs to route one net (cheap to pickle).

    ``net_name`` is the net's own (netlist-unique) name; it keys the net's
    private RNG stream, so a net keeps its stream when routed at a shifted
    index or inside a sub-netlist.  ``name`` is the fully qualified
    ``design/net`` label used for instance reporting only.
    """

    net_index: int
    root: int
    sinks: Tuple[int, ...]
    weights: Tuple[float, ...]
    name: str = ""
    net_name: str = ""

    @property
    def rng_name(self) -> str:
        """The key of this net's RNG stream (falls back to the full label)."""
        return self.net_name or self.name

    def payload(self, costs: np.ndarray, bifurcation: BifurcationModel) -> dict:
        """The :meth:`SteinerInstance.from_payload` dict of this task under a
        batch cost vector (graph and delay are supplied by the executor)."""
        return {
            "root": self.root,
            "sinks": self.sinks,
            "weights": self.weights,
            "cost": costs,
            "bifurcation": bifurcation,
            "name": self.name,
        }


class BatchExecutor:
    """Common state and interface of all executor backends."""

    #: Backend name used in configuration and result reporting.
    backend = "?"

    def __init__(
        self,
        graph: RoutingGraph,
        oracle: SteinerOracle,
        bifurcation: BifurcationModel,
        seed: int,
    ) -> None:
        self.graph = graph
        self.oracle = oracle
        self.bifurcation = bifurcation
        self.seed = seed
        #: Flips to ``True`` on :meth:`close`; lifecycle tests (and the
        #: shard coordinator's teardown guarantees) assert on it.
        self.closed = False
        self._delay = graph.delay_array()
        self._last_context: Optional[OracleCostContext] = None

    # ------------------------------------------------------------------ API
    def route_batch(
        self,
        costs: np.ndarray,
        tasks: Sequence[NetTask],
        context: Optional[OracleCostContext] = None,
    ) -> Dict[int, EmbeddedTree]:
        """Route every task against ``costs``; returns trees by net index.

        ``context``, when given, shares the batch-level cost artefacts
        (list conversions, future-cost estimator, validation) across the
        batch's nets; backends build their own when omitted.
        """
        raise NotImplementedError

    def make_context(self, costs: np.ndarray) -> Optional[OracleCostContext]:
        """One :class:`OracleCostContext` for a batch routed against
        ``costs``.  Consecutive contexts inherit each other's memoised
        list materialisations (see :meth:`OracleCostContext.inherit`).
        The reference-kernel benchmark harness patches this to return
        ``None``, which reverts every consumer to the per-net slow paths."""
        context = OracleCostContext(self.graph, costs, delay=self._delay)
        if self._last_context is not None:
            context.inherit(self._last_context)
        self._last_context = context
        return context

    def close(self) -> None:
        """Release backend resources (worker pools).  Idempotent."""
        self.closed = True

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- shared
    def _route_one(
        self,
        costs: np.ndarray,
        task: NetTask,
        context: Optional[OracleCostContext] = None,
    ) -> EmbeddedTree:
        if context is not None:
            # The context's (contiguous) array is the canonical batch vector:
            # routing against it keeps the instance/context identity check hot.
            costs = context.cost
        instance = SteinerInstance.from_payload(
            self.graph,
            task.payload(costs, self.bifurcation),
            delay=self._delay,
            context=context,
        )
        rng = derive_net_rng_for_name(self.seed, task.rng_name)
        plan = faults.get_plan()
        if plan is not None:
            plan.sleep("slow-oracle")
        if obs.get_tracer() is None:
            return self.oracle.build(instance, rng)
        # Per-net events exist only under an active tracer; the timing calls
        # and record writes would otherwise tax the innermost loop for nothing.
        started = time.monotonic()
        tree = self.oracle.build(instance, rng)
        obs.event(
            "net",
            net=task.name or task.rng_name,
            sinks=len(task.sinks),
            method=tree.method,
            seconds=time.monotonic() - started,
        )
        return tree


class SerialExecutor(BatchExecutor):
    """Routes a batch in-process, one net after the other."""

    backend = "serial"

    def route_batch(
        self,
        costs: np.ndarray,
        tasks: Sequence[NetTask],
        context: Optional[OracleCostContext] = None,
    ) -> Dict[int, EmbeddedTree]:
        if context is None and tasks:
            context = self.make_context(costs)
        return {task.net_index: self._route_one(costs, task, context) for task in tasks}


# --------------------------------------------------------------------------
# Process backend.  The worker functions live at module level so they can be
# located by child processes under every multiprocessing start method.
# --------------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(payload_bytes: bytes) -> None:
    """Pool initializer: unpack the shared read-only routing payload."""
    state = pickle.loads(payload_bytes)
    state["delay"] = state["graph"].delay_array()
    _WORKER_STATE.clear()
    _WORKER_STATE.update(state)


def _route_shard(
    shard: Tuple[np.ndarray, List[NetTask]]
) -> Tuple[List[Tuple[int, Tuple[int, ...], Tuple[int, ...], str]], Dict[str, object]]:
    """Route one shard of a batch inside a worker process.

    Returns the routed-tree tuples plus the worker's local metrics
    snapshot (A* pops etc. accumulated by the oracle while routing this
    shard); the parent merges snapshots in fixed shard order so pooled
    runs report the same counters as serial ones.
    """
    costs, tasks = shard
    graph: RoutingGraph = _WORKER_STATE["graph"]
    oracle: SteinerOracle = _WORKER_STATE["oracle"]
    bifurcation: BifurcationModel = _WORKER_STATE["bifurcation"]
    seed: int = _WORKER_STATE["seed"]
    delay: np.ndarray = _WORKER_STATE["delay"]
    # One context per shard: the whole shard shares one cost vector, so the
    # per-net list conversions / estimator / validation amortise worker-side.
    context = OracleCostContext(graph, costs, delay=delay)
    costs = context.cost
    results = []
    local = obs.MetricsRegistry()
    previous = obs.swap_registry(local)
    plan = faults.get_plan()
    try:
        for task in tasks:
            if plan is not None:
                plan.sleep("slow-oracle")
            instance = SteinerInstance.from_payload(
                graph, task.payload(costs, bifurcation), delay=delay, context=context
            )
            tree = oracle.build(instance, derive_net_rng_for_name(seed, task.rng_name))
            results.append(
                (task.net_index, tuple(tree.sinks), tuple(tree.edges), tree.method)
            )
    finally:
        obs.swap_registry(previous)
    return results, local.snapshot()


class ProcessExecutor(BatchExecutor):
    """Routes batches on a ``multiprocessing`` pool of worker processes.

    When the pool cannot be created at all -- sandboxed and containerised
    environments routinely forbid ``fork``/semaphores -- the executor
    degrades to in-process serial routing with a warning instead of
    crashing the job: every backend produces bit-identical trees, so the
    fallback only costs parallelism, never correctness.

    Parameters
    ----------
    num_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (pure-Python
        workloads stop scaling long before the core count on big machines).
    """

    backend = "process"

    def __init__(
        self,
        graph: RoutingGraph,
        oracle: SteinerOracle,
        bifurcation: BifurcationModel,
        seed: int,
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__(graph, oracle, bifurcation, seed)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers or min(os.cpu_count() or 2, 8)
        self._pool = None
        self._pool_unavailable = False

    # ----------------------------------------------------------- lifecycle
    def _ensure_pool(self):
        """The worker pool, or ``None`` when this environment cannot start
        one (the degradation is remembered and warned about only once)."""
        if self._pool is None and not self._pool_unavailable:
            # Prefer fork: workers inherit sys.path (the repo uses a src/
            # layout that may only exist on the parent's sys.path) and the
            # initializer payload is then merely a consistency guarantee.
            payload = pickle.dumps(
                {
                    "graph": self.graph,
                    "oracle": self.oracle,
                    "bifurcation": self.bifurcation,
                    "seed": self.seed,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._pool = create_worker_pool(
                self.num_workers,
                initializer=_worker_init,
                initargs=(payload,),
                degrade_message=(
                    "the process backend degrades to in-process serial routing"
                ),
                backend=self.backend,
            )
            if self._pool is None:
                self._pool_unavailable = True
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        super().close()

    def _discard_pool(self) -> None:
        """Drop a wedged pool without blocking on it; the next batch
        starts a fresh one (same initializer payload)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            discard_broken_pool(pool)

    # ------------------------------------------------------------------ API
    def route_batch(
        self,
        costs: np.ndarray,
        tasks: Sequence[NetTask],
        context: Optional[OracleCostContext] = None,
    ) -> Dict[int, EmbeddedTree]:
        if len(tasks) <= 1:
            # IPC overhead cannot pay off for a single net.
            if context is None and tasks:
                context = self.make_context(costs)
            return {task.net_index: self._route_one(costs, task, context) for task in tasks}
        pool = self._ensure_pool()
        if pool is None:
            # Degraded mode: no pool could be started in this environment.
            if context is None:
                context = self.make_context(costs)
            return {task.net_index: self._route_one(costs, task, context) for task in tasks}
        plan = faults.get_plan()
        sabotage = None
        if plan is not None and plan.should("kill-pool-worker", faults.current_round()):
            sabotage = faults.kill_pool_worker
        shards = self._shard(list(tasks))
        roots = {task.net_index: task.root for task in tasks}
        trees: Dict[int, EmbeddedTree] = {}
        outcomes, pool_broken = run_tasks_with_recovery(
            pool,
            _route_shard,
            [(costs, shard) for shard in shards],
            retry=self._route_shard_inline,
            backend=self.backend,
            sabotage=sabotage,
        )
        if pool_broken or sabotage is not None:
            # A sabotaged pool is discarded even when no death was observed
            # during the call: a worker killed *after* its last task leaves
            # no pending work to recover, but it may die holding the shared
            # task-queue lock and wedge the next dispatch with no
            # observable deaths (the pool respawns its _pool entry).
            self._discard_pool()
        for shard_result, worker_metrics in outcomes:
            for net_index, sinks, edges, method in shard_result:
                trees[net_index] = EmbeddedTree(self.graph, roots[net_index], sinks, edges, method)
            # Fixed shard order keeps the merged counters deterministic.
            obs.merge_snapshot(worker_metrics)
        return trees

    def _route_shard_inline(self, shard: Tuple[np.ndarray, List[NetTask]]):
        """Route one worker shard in the parent (the dead-worker recovery
        path).  Every net carries its own derived RNG stream, so the trees
        are bit-identical to what the lost worker would have returned; the
        oracle's counters land in the parent registry directly (no snapshot
        to ship)."""
        costs, tasks = shard
        context = self.make_context(costs) if tasks else None
        results = []
        for task in tasks:
            tree = self._route_one(costs, task, context)
            results.append(
                (task.net_index, tuple(tree.sinks), tuple(tree.edges), tree.method)
            )
        return results, {}

    def _shard(self, tasks: List[NetTask]) -> List[List[NetTask]]:
        """Split a batch into one contiguous shard per worker."""
        num_shards = min(self.num_workers, len(tasks))
        size, extra = divmod(len(tasks), num_shards)
        shards: List[List[NetTask]] = []
        start = 0
        for i in range(num_shards):
            end = start + size + (1 if i < extra else 0)
            shards.append(tasks[start:end])
            start = end
        return shards


EXECUTOR_BACKENDS = {
    SerialExecutor.backend: SerialExecutor,
    ProcessExecutor.backend: ProcessExecutor,
}


def make_executor(
    backend: str,
    graph: RoutingGraph,
    oracle: SteinerOracle,
    bifurcation: BifurcationModel,
    seed: int,
    num_workers: Optional[int] = None,
) -> BatchExecutor:
    """Construct an executor backend by name (``serial`` or ``process``)."""
    if backend == SerialExecutor.backend:
        return SerialExecutor(graph, oracle, bifurcation, seed)
    if backend == ProcessExecutor.backend:
        return ProcessExecutor(graph, oracle, bifurcation, seed, num_workers=num_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; available: {sorted(EXECUTOR_BACKENDS)}"
    )
