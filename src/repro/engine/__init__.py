"""Parallel batch-routing engine.

The execution layer between the resource-sharing router and the Steiner
oracles:

* :mod:`repro.engine.scheduler` -- partitions each rip-up-and-re-route round
  into batches of nets that share one congestion snapshot (cost-refresh
  windows, or conflict-free bounding-box batches).
* :mod:`repro.engine.executor` -- pluggable batch backends: in-process
  ``serial`` and ``multiprocessing``-based ``process``, producing
  bit-identical trees thanks to per-net RNG streams.
* :mod:`repro.engine.cache` -- the incremental re-route cache that skips
  nets whose instance signature did not change since their last routing.
* :mod:`repro.engine.engine` -- the :class:`RoutingEngine` façade the
  :class:`repro.router.router.GlobalRouter` delegates to, configured by
  :class:`EngineConfig`.
* :mod:`repro.engine.rng` -- the stable per-net RNG derivation shared by all
  backends.
"""

from repro.engine.cache import CacheStats, RerouteCache
from repro.engine.engine import EngineConfig, RoundReport, RoutingEngine
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    BatchExecutor,
    NetTask,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.rng import (
    NET_STREAM_STRIDE,
    derive_net_rng,
    derive_net_rng_for_name,
    net_name_key,
    net_stream_seed,
    net_stream_seed_for_name,
)
from repro.engine.scheduler import BoundingBox, NetBatch, NetScheduler

__all__ = [
    "BoundingBox",
    "NetBatch",
    "NetScheduler",
    "NetTask",
    "BatchExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "EXECUTOR_BACKENDS",
    "make_executor",
    "CacheStats",
    "RerouteCache",
    "EngineConfig",
    "RoundReport",
    "RoutingEngine",
    "NET_STREAM_STRIDE",
    "net_stream_seed",
    "derive_net_rng",
    "net_name_key",
    "net_stream_seed_for_name",
    "derive_net_rng_for_name",
]
